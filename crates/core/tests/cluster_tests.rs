//! End-to-end tests of the distributed transaction layer: a full cluster
//! (CAS bootstrap, counter protection group, 3 nodes), clients, the secure
//! 2PC, failures and the §III adversary.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use treaty_core::{
    check_list_append, Cluster, ClusterOptions, HistoryError, TreatyError, TxnObservation,
};
use treaty_sched::block_on;
use treaty_sim::runtime::{join, sleep, spawn};
use treaty_sim::SecurityProfile;
use treaty_store::GlobalTxId;

fn options(profile: SecurityProfile, dir: &std::path::Path) -> ClusterOptions {
    let mut o = ClusterOptions::new(profile, dir.to_path_buf());
    o.engine_config = treaty_store::EngineConfig::tiny();
    o
}

/// Keys guaranteed to live on different nodes.
fn keys_on_different_nodes(cluster: &Cluster) -> Vec<Vec<u8>> {
    let mut found: HashMap<u32, Vec<u8>> = HashMap::new();
    for i in 0..10_000u32 {
        let k = format!("spread-{i}").into_bytes();
        let owner = cluster.shard_map().owner(&k);
        found.entry(owner).or_insert(k);
        if found.len() == cluster.node_endpoints().len() {
            break;
        }
    }
    found.into_values().collect()
}

#[test]
fn distributed_txn_commits_across_shards() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let keys = keys_on_different_nodes(&cluster);
        assert!(keys.len() >= 3);
        let client = cluster.client();

        let mut tx = client.begin(1);
        for (i, k) in keys.iter().enumerate() {
            tx.put(k, format!("value-{i}").as_bytes()).unwrap();
        }
        tx.commit().unwrap();

        let mut tx = client.begin(1);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(tx.get(k).unwrap(), Some(format!("value-{i}").into_bytes()));
        }
        tx.commit().unwrap();
        assert_eq!(cluster.totals().0, 2);
    });
}

#[test]
fn all_profiles_run_distributed_txns() {
    for profile in SecurityProfile::distributed_lineup() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().to_path_buf();
        block_on(move || {
            let cluster = Cluster::start(options(profile, &path)).unwrap();
            let client = cluster.client();
            let mut tx = client.begin(2);
            tx.put(b"k1", b"v1").unwrap();
            tx.put(b"k2", b"v2").unwrap();
            tx.commit().unwrap();
            let mut tx = client.begin(3);
            assert_eq!(tx.get(b"k1").unwrap(), Some(b"v1".to_vec()), "{profile:?}");
            tx.commit().unwrap();
        });
    }
}

#[test]
fn rollback_leaves_no_trace() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let keys = keys_on_different_nodes(&cluster);

        let mut tx = client.begin(1);
        for k in &keys {
            tx.put(k, b"doomed").unwrap();
        }
        tx.rollback().unwrap();

        let mut tx = client.begin(1);
        for k in &keys {
            assert_eq!(tx.get(k).unwrap(), None);
        }
        tx.commit().unwrap();
    });
}

#[test]
fn atomicity_under_write_conflicts() {
    // Two clients transfer between the same two cross-shard accounts;
    // conservation must hold whatever interleaving happens.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster =
            Arc::new(Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap());
        let keys = keys_on_different_nodes(&cluster);
        let (a, b) = (keys[0].clone(), keys[1].clone());

        // Seed balances.
        let seeder = cluster.client();
        let mut tx = seeder.begin(1);
        tx.put(&a, b"100").unwrap();
        tx.put(&b, b"100").unwrap();
        tx.commit().unwrap();

        let mut handles = Vec::new();
        for c in 0..4 {
            let cluster = Arc::clone(&cluster);
            let (a, b) = (a.clone(), b.clone());
            handles.push(spawn(move || {
                let client = cluster.client();
                let coordinator = 1 + (c % 3) as u32;
                for _ in 0..5 {
                    let mut tx = client.begin(coordinator);
                    let result = (|| -> Result<(), TreatyError> {
                        let va: i64 = String::from_utf8(tx.get(&a)?.unwrap())
                            .unwrap()
                            .parse()
                            .unwrap();
                        let vb: i64 = String::from_utf8(tx.get(&b)?.unwrap())
                            .unwrap()
                            .parse()
                            .unwrap();
                        tx.put(&a, (va - 10).to_string().as_bytes())?;
                        tx.put(&b, (vb + 10).to_string().as_bytes())?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {
                            let _ = tx.commit();
                        }
                        Err(_) => { /* aborted inside an op */ }
                    }
                }
            }));
        }
        for h in handles {
            join(h);
        }

        let checker = cluster.client();
        let mut tx = checker.begin(1);
        let va: i64 = String::from_utf8(tx.get(&a).unwrap().unwrap())
            .unwrap()
            .parse()
            .unwrap();
        let vb: i64 = String::from_utf8(tx.get(&b).unwrap().unwrap())
            .unwrap()
            .parse()
            .unwrap();
        tx.commit().unwrap();
        assert_eq!(va + vb, 200, "conservation violated: {va} + {vb}");
    });
}

/// Runs a list-append workload and checks serializability.
fn run_list_append(
    profile: SecurityProfile,
    path: std::path::PathBuf,
    clients: usize,
    txns_per_client: usize,
    adversary: impl FnOnce(&Cluster) + Send + 'static,
) {
    block_on(move || {
        let cluster = Arc::new(Cluster::start(options(profile, &path)).unwrap());
        adversary(&cluster);
        let observations = Arc::new(Mutex::new(Vec::new()));
        let keyspace: Vec<Vec<u8>> = (0..6).map(|i| format!("list-{i}").into_bytes()).collect();

        let mut handles = Vec::new();
        for c in 0..clients {
            let cluster = Arc::clone(&cluster);
            let observations = Arc::clone(&observations);
            let keyspace = keyspace.clone();
            handles.push(spawn(move || {
                let client = cluster.client();
                let coordinator = 1 + (c % 3) as u32;
                for t in 0..txns_per_client {
                    let mut tx = client.begin(coordinator);
                    let gtx = tx.gtx();
                    let k1 = &keyspace[(c + t) % keyspace.len()];
                    let k2 = &keyspace[(c + t * 3 + 1) % keyspace.len()];
                    let mut obs = TxnObservation {
                        id: gtx,
                        reads: Vec::new(),
                        appends: Vec::new(),
                    };
                    let result = (|| -> Result<(), TreatyError> {
                        for k in [k1, k2] {
                            if obs.appends.contains(k) {
                                continue;
                            }
                            let cur = tx.get(k)?;
                            let mut list: Vec<GlobalTxId> = cur
                                .map(|b| serde_json::from_slice(&b).unwrap())
                                .unwrap_or_default();
                            obs.reads.push((k.clone(), list.clone()));
                            list.push(gtx);
                            tx.put(k, &serde_json::to_vec(&list).unwrap())?;
                            obs.appends.push(k.clone());
                        }
                        Ok(())
                    })();
                    if result.is_ok() && tx.commit().is_ok() {
                        observations.lock().push(obs);
                    }
                }
            }));
        }
        for h in handles {
            join(h);
        }

        // Read final lists (retrying: under a lossy network a read txn can
        // itself abort on residual lock waits).
        let reader = cluster.client();
        let mut finals = HashMap::new();
        'read: for attempt in 0..10 {
            finals.clear();
            let mut tx = reader.begin(1);
            let mut ok = true;
            for k in &keyspace {
                match tx.get(k) {
                    Ok(Some(bytes)) => {
                        let list: Vec<GlobalTxId> = serde_json::from_slice(&bytes).unwrap();
                        finals.insert(k.clone(), list);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && tx.commit().is_ok() {
                break 'read;
            }
            assert!(attempt < 9, "final read never succeeded");
            sleep(100 * treaty_sim::MILLIS);
        }

        let txns = observations.lock().clone();
        assert!(!txns.is_empty(), "no transaction committed");
        if let Err(e) = check_list_append(&txns, &finals) {
            match e {
                HistoryError::Cycle(_)
                | HistoryError::LostAppend { .. }
                | HistoryError::NonPrefixRead { .. } => {
                    panic!("serializability violated: {e}")
                }
            }
        }
    });
}

#[test]
fn serializable_under_concurrency() {
    let dir = tempfile::tempdir().unwrap();
    run_list_append(
        SecurityProfile::treaty_full(),
        dir.path().to_path_buf(),
        6,
        6,
        |_| {},
    );
}

#[test]
fn serializable_under_duplicating_adversary() {
    let dir = tempfile::tempdir().unwrap();
    run_list_append(
        SecurityProfile::treaty_full(),
        dir.path().to_path_buf(),
        4,
        4,
        |cluster| {
            cluster.fabric().with_adversary(|a| a.dup_prob = 0.3);
        },
    );
}

#[test]
fn serializable_under_lossy_network() {
    let dir = tempfile::tempdir().unwrap();
    run_list_append(
        SecurityProfile::treaty_full(),
        dir.path().to_path_buf(),
        4,
        4,
        |cluster| {
            cluster.fabric().with_adversary(|a| a.drop_prob = 0.02);
        },
    );
}

#[test]
fn wire_confidentiality_end_to_end() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        cluster.fabric().start_capture();
        let client = cluster.client();
        let secret = b"super-secret-balance-847251";
        let mut tx = client.begin(1);
        tx.put(b"account", secret).unwrap();
        tx.commit().unwrap();
        let sniffed = cluster.fabric().captured_bytes();
        assert!(!sniffed.is_empty());
        // Payloads are JSON, so the plaintext appears as a JSON byte array
        // when unprotected; check both renderings.
        let json_rendering = serde_json::to_vec(&secret.to_vec()).unwrap();
        assert!(
            !sniffed.windows(secret.len()).any(|w| w == secret),
            "value plaintext visible on the wire"
        );
        assert!(
            !sniffed
                .windows(json_rendering.len())
                .any(|w| w == json_rendering.as_slice()),
            "value plaintext (JSON rendering) visible on the wire"
        );
    });
}

#[test]
fn baseline_leaks_on_the_wire() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::rocksdb(), &path)).unwrap();
        cluster.fabric().start_capture();
        let client = cluster.client();
        let secret = b"super-secret-balance-847251";
        let mut tx = client.begin(1);
        tx.put(b"account", secret).unwrap();
        tx.commit().unwrap();
        let sniffed = cluster.fabric().captured_bytes();
        let json_rendering = serde_json::to_vec(&secret.to_vec()).unwrap();
        assert!(
            sniffed
                .windows(json_rendering.len())
                .any(|w| w == json_rendering.as_slice()),
            "baseline was expected to leak (it has no encryption)"
        );
    });
}

#[test]
fn participant_crash_after_prepare_commits_after_restart() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let keys = keys_on_different_nodes(&cluster);
        let client = cluster.client();

        // Commit a cross-shard transaction normally first.
        let mut tx = client.begin(1);
        for k in &keys {
            tx.put(k, b"committed").unwrap();
        }
        tx.commit().unwrap();

        // Crash a participant node (not the coordinator).
        cluster.crash_node(1);

        // A transaction touching the dead node aborts cleanly.
        let mut tx = client.begin(1);
        let mut failed = false;
        for k in &keys {
            if tx.put(k, b"during-crash").is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            failed = tx.commit().is_err();
        }
        assert!(failed, "txn touching a crashed node must abort");

        // Restart; recovery must restore the earlier committed data.
        cluster.restart_node(1).unwrap();
        cluster.resolve_recovered();
        let mut tx = client.begin(1);
        for k in &keys {
            assert_eq!(tx.get(k).unwrap(), Some(b"committed".to_vec()));
        }
        tx.commit().unwrap();
    });
}

#[test]
fn coordinator_crash_between_phases_resolved_at_recovery() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let keys = keys_on_different_nodes(&cluster);
        let client = cluster.client();

        // Run a committed transaction so there is decided Clog state too.
        let mut tx = client.begin(1);
        for k in &keys {
            tx.put(k, b"v0").unwrap();
        }
        tx.commit().unwrap();

        // Simulate a coordinator crash mid-2PC: prepare participants by
        // hand through the engine interface, with the Clog Start entry
        // logged but no decision.
        use treaty_store::{EngineTxn as _, GlobalTxId, TxnEngine as _, TxnMode};
        let gtx = GlobalTxId {
            node: 1,
            seq: (9999u64 << 32) | 1,
        };
        let store1 = cluster.store(1).unwrap().clone();
        let mut part_txn = store1.begin_mode(TxnMode::Pessimistic);
        let key_on_node1 = keys
            .iter()
            .find(|k| cluster.shard_map().owner(k) == 2)
            .unwrap()
            .clone();
        part_txn.put(&key_on_node1, b"in-flight").unwrap();
        part_txn.prepare(gtx).unwrap();
        cluster
            .node(0)
            .clog()
            .unwrap()
            .log_start(gtx, vec![1, 2])
            .unwrap();

        // Coordinator crashes and restarts.
        cluster.crash_node(0);
        cluster.restart_node(0).unwrap();
        let outcome = cluster.resolve_recovered();
        assert!(outcome.re_decided >= 1, "undecided txn must be re-driven");
        assert_eq!(outcome.failed, 0, "re-drive must succeed with counters up");

        // The in-flight transaction got a decision: the participant's
        // prepared state is resolved either way, and its lock is free.
        assert!(
            store1.prepared_txns().is_empty(),
            "prepared txn left dangling"
        );
        let client2 = cluster.client();
        let mut tx = client2.begin(2);
        tx.put(&key_on_node1, b"after-recovery").unwrap();
        tx.commit().unwrap();
    });
}

#[test]
fn committed_data_survives_full_cluster_restart() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let keys = keys_on_different_nodes(&cluster);
        {
            let client = cluster.client();
            let mut tx = client.begin(1);
            for (i, k) in keys.iter().enumerate() {
                tx.put(k, format!("persistent-{i}").as_bytes()).unwrap();
            }
            tx.commit().unwrap();
        }
        for i in 0..3 {
            cluster.crash_node(i);
        }
        for i in 0..3 {
            cluster.restart_node(i).unwrap();
        }
        cluster.resolve_recovered();
        let client = cluster.client();
        let mut tx = client.begin(2);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                tx.get(k).unwrap(),
                Some(format!("persistent-{i}").into_bytes()),
                "lost after full restart"
            );
        }
        tx.commit().unwrap();
    });
}

#[test]
fn replayed_client_commit_is_not_double_executed() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        cluster.fabric().start_capture();
        let client = cluster.client();
        let mut tx = client.begin(1);
        tx.put(b"ctr", b"1").unwrap();
        tx.commit().unwrap();

        // Replay every captured client->coordinator request.
        let captured = cluster.fabric().captured();
        for dg in captured.iter().filter(|d| !d.is_response && d.dst == 1) {
            cluster.fabric().inject(dg.clone());
        }
        sleep(10 * treaty_sim::MILLIS);

        // Exactly one commit happened.
        assert_eq!(cluster.totals().0, 1, "replayed commit must be suppressed");
    });
}

#[test]
fn protocol_only_cluster_runs_without_storage() {
    // The §VIII-B configuration: NullEngine, no Clog, pure 2PC.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut o = options(SecurityProfile::treaty_full(), &path);
        o.durable = false;
        let cluster = Cluster::start(o).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        tx.put(b"a", b"1").unwrap();
        tx.put(b"b", b"2").unwrap();
        tx.commit().unwrap();
        let mut tx = client.begin(1);
        assert_eq!(tx.get(b"a").unwrap(), Some(b"1".to_vec()));
        tx.commit().unwrap();
        // No files were created.
        let entries = std::fs::read_dir(&path).map(|d| d.count()).unwrap_or(0);
        assert_eq!(entries, 0, "protocol-only mode must not persist anything");
    });
}

// ---- authenticated range scans across shards (DESIGN.md §15) ----------------

#[test]
fn range_scan_merges_all_shards_in_order() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        // Hash partitioning spreads consecutive keys across every node, so
        // a contiguous scan exercises the full fan-out + merge.
        let mut tx = client.begin(1);
        for i in 0..40u32 {
            tx.put(format!("scan-{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        tx.commit().unwrap();

        let mut tx = client.begin(2);
        let rows = tx.scan(b"scan-", b"scan-~", 0).unwrap();
        assert_eq!(rows.len(), 40, "every shard's slice merged");
        for (i, (k, v)) in rows.iter().enumerate() {
            assert_eq!(k, format!("scan-{i:03}").as_bytes(), "global key order");
            assert_eq!(v, format!("v{i}").as_bytes());
        }
        // Limit is applied after the merge, not per shard.
        let capped = tx.scan(b"scan-", b"scan-~", 7).unwrap();
        assert_eq!(capped.len(), 7);
        assert_eq!(capped, rows[..7].to_vec());
        tx.commit().unwrap();
    });
}

#[test]
fn range_delete_spans_every_shard_atomically() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        for i in 0..30u32 {
            tx.put(format!("rd-{i:03}").as_bytes(), b"doomed").unwrap();
        }
        tx.commit().unwrap();

        // One transaction deletes the middle of the keyspace and rewrites
        // one covered key; both effects commit atomically on every shard.
        let mut tx = client.begin(3);
        tx.delete_range(b"rd-010", b"rd-020").unwrap();
        tx.put(b"rd-015", b"survivor").unwrap();
        tx.commit().unwrap();

        let mut tx = client.begin(2);
        let rows = tx.scan(b"rd-", b"rd-~", 0).unwrap();
        assert_eq!(rows.len(), 21, "20 outside the span + 1 rewritten");
        assert_eq!(tx.get(b"rd-012").unwrap(), None);
        assert_eq!(tx.get(b"rd-015").unwrap(), Some(b"survivor".to_vec()));
        tx.commit().unwrap();
    });
}

#[test]
fn rolled_back_range_delete_leaves_no_trace() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        for i in 0..10u32 {
            tx.put(format!("rb-{i}").as_bytes(), b"keep").unwrap();
        }
        tx.commit().unwrap();

        let mut tx = client.begin(1);
        tx.delete_range(b"rb-", b"rb-~").unwrap();
        tx.rollback().unwrap();

        let mut tx = client.begin(2);
        assert_eq!(tx.scan(b"rb-", b"rb-~", 0).unwrap().len(), 10);
        tx.commit().unwrap();
    });
}

#[test]
fn snapshot_scan_sees_committed_prefix_consistently() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        for i in 0..25u32 {
            tx.put(format!("ss-{i:03}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        tx.commit().unwrap();

        let rows = client.snapshot_scan(b"ss-", b"ss-~", 0).unwrap();
        assert_eq!(rows.len(), 25, "lock-free scan sees all committed rows");
        let locked = {
            let mut tx = client.begin(2);
            let r = tx.scan(b"ss-", b"ss-~", 0).unwrap();
            tx.commit().unwrap();
            r
        };
        assert_eq!(rows, locked, "snapshot and locking scans agree at rest");
        let capped = client.snapshot_scan(b"ss-", b"ss-~", 5).unwrap();
        assert_eq!(capped, rows[..5].to_vec());
    });
}

// ---- deferred-write batching (DESIGN.md §16) ---------------------------------

/// `per_node` keys owned by each node, grouped deterministically.
fn keys_per_owner(cluster: &Cluster, per_node: usize) -> HashMap<u32, Vec<Vec<u8>>> {
    let mut found: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    let nodes = cluster.node_endpoints().len();
    for i in 0..100_000u32 {
        let k = format!("batch-{i}").into_bytes();
        let owner = cluster.shard_map().owner(&k);
        let bucket = found.entry(owner).or_default();
        if bucket.len() < per_node {
            bucket.push(k);
        }
        if found.len() == nodes && found.values().all(|b| b.len() == per_node) {
            break;
        }
    }
    found
}

#[test]
fn read_your_writes_from_buffer_without_rpc() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();

        let mut tx = client.begin(1);
        let sent0 = cluster.fabric().stats().sent;
        tx.put(b"ryw-a", b"v1").unwrap();
        tx.put(b"ryw-a", b"v2").unwrap();
        tx.put(b"ryw-b", b"w").unwrap();
        // Reads of buffered keys are served locally: last write wins, and
        // no RPC leaves the client.
        assert_eq!(tx.get(b"ryw-a").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(tx.get(b"ryw-b").unwrap(), Some(b"w".to_vec()));
        assert_eq!(
            cluster.fabric().stats().sent,
            sent0,
            "buffered writes and buffer-hit reads must not touch the network"
        );
        // A read outside the buffer flushes it first.
        assert_eq!(tx.get(b"ryw-missing").unwrap(), None);
        assert!(cluster.fabric().stats().sent > sent0, "miss flushed the buffer");
        tx.commit().unwrap();

        let mut tx = client.begin(2);
        assert_eq!(tx.get(b"ryw-a").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(tx.get(b"ryw-b").unwrap(), Some(b"w".to_vec()));
        tx.commit().unwrap();
    });
}

#[test]
fn scan_flushes_buffered_writes_first() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        tx.put(b"sfl-001", b"a").unwrap();
        tx.put(b"sfl-002", b"b").unwrap();
        // The scan overlaps the buffered span: it must see both writes,
        // which forces a conservative flush before the fan-out.
        let rows = tx.scan(b"sfl-", b"sfl-~", 0).unwrap();
        assert_eq!(
            rows,
            vec![
                (b"sfl-001".to_vec(), b"a".to_vec()),
                (b"sfl-002".to_vec(), b"b".to_vec())
            ]
        );
        tx.commit().unwrap();
    });
}

#[test]
fn delete_then_get_sees_the_buffered_tombstone() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let client = cluster.client();
        let mut tx = client.begin(1);
        tx.put(b"del-k", b"v").unwrap();
        tx.commit().unwrap();

        let mut tx = client.begin(2);
        tx.delete(b"del-k").unwrap();
        assert_eq!(
            tx.get(b"del-k").unwrap(),
            None,
            "buffered delete must shadow the committed value"
        );
        tx.commit().unwrap();

        let mut tx = client.begin(3);
        assert_eq!(tx.get(b"del-k").unwrap(), None);
        tx.commit().unwrap();
    });
}

#[test]
fn buffered_writes_abort_cleanly_on_conflict() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        let keys = keys_on_different_nodes(&cluster);
        let client = cluster.client();

        // Holder writes one of the keys eagerly so it holds the lock while
        // the batched transaction commits.
        let mut holder = client.begin(1);
        holder.set_batching(false);
        holder.put(&keys[0], b"held").unwrap();

        // The buffered transaction never touched the network before commit;
        // its shipped batch hits the held lock and the whole commit aborts.
        let mut tx = client.begin(2);
        for k in &keys {
            tx.put(k, b"doomed").unwrap();
        }
        assert!(tx.commit().is_err(), "conflicting batch must abort");

        holder.rollback().unwrap();

        // All-or-nothing: no key of the aborted batch is visible.
        let mut check = client.begin(3);
        for k in &keys {
            assert_eq!(check.get(k).unwrap(), None, "aborted write leaked");
        }
        check.commit().unwrap();
    });
}

#[test]
fn batched_commit_round_trips_scale_with_shards_not_writes() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut o = options(SecurityProfile::treaty_full(), &path);
        // Inline decision delivery so every 2PC message is on the wire by
        // the time commit() returns and the counters are deterministic.
        o.sync_decisions = true;
        let cluster = Cluster::start(o).unwrap();
        let per_owner = keys_per_owner(&cluster, 2);
        assert_eq!(per_owner.len(), 3);
        let client = cluster.client();

        let run = |keys: &[Vec<u8>], batching: bool| -> u64 {
            let before = cluster.fabric().stats().sent;
            let mut tx = client.begin(1);
            tx.set_batching(batching);
            for k in keys {
                tx.put(k, b"v").unwrap();
            }
            tx.commit().unwrap();
            cluster.fabric().stats().sent - before
        };

        // One write per shard (W = S = 3) vs two per shard (W = 6): the
        // batched wire cost is a function of the shard count only.
        let one_per_shard: Vec<Vec<u8>> =
            per_owner.values().map(|b| b[0].clone()).collect();
        let two_per_shard: Vec<Vec<u8>> =
            per_owner.values().flat_map(|b| b.iter().cloned()).collect();
        let batched_w3 = run(&one_per_shard, true);
        let batched_w6 = run(&two_per_shard, true);
        assert_eq!(
            batched_w3, batched_w6,
            "batched round trips must depend on shards, not writes"
        );

        // The unbatched ablation pays per write: strictly more messages for
        // the same W = 6 transaction.
        let unbatched_w6 = run(&two_per_shard, false);
        assert!(
            batched_w6 < unbatched_w6,
            "batched {batched_w6} vs unbatched {unbatched_w6} messages"
        );
    });
}

#[test]
fn scans_and_range_deletes_survive_cluster_restart() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(SecurityProfile::treaty_full(), &path)).unwrap();
        {
            let client = cluster.client();
            let mut tx = client.begin(1);
            for i in 0..20u32 {
                tx.put(format!("dur-{i:02}").as_bytes(), b"v").unwrap();
            }
            tx.commit().unwrap();
            let mut tx = client.begin(2);
            tx.delete_range(b"dur-05", b"dur-15").unwrap();
            tx.commit().unwrap();
        }
        for i in 0..3 {
            cluster.crash_node(i);
        }
        for i in 0..3 {
            cluster.restart_node(i).unwrap();
        }
        cluster.resolve_recovered();
        let client = cluster.client();
        let mut tx = client.begin(1);
        let rows = tx.scan(b"dur-", b"dur-~", 0).unwrap();
        assert_eq!(rows.len(), 10, "range tombstones must survive restart");
        assert!(rows.iter().all(|(k, _)| {
            k.as_slice() < b"dur-05" as &[u8] || k.as_slice() >= b"dur-15" as &[u8]
        }));
        tx.commit().unwrap();
    });
}
