//! Regression tests for the coordinator bugs found while building the
//! crash-point fault-injection harness (ISSUE 4):
//!
//! 1. a commit request for an already-aborted transaction was acked
//!    `Committed` ("unknown gtx = empty transaction"),
//! 2. a pre-prepare abort ran the full phase-2 retry train against a dead
//!    peer inside the client-op session fiber (~1 s simulated stall),
//! 3. `handle_client_rollback` double-counted aborts when no coordinator
//!    state existed,
//! 4. `resolve_recovered` silently dropped an undecided transaction when
//!    the decision could not be logged during re-drive.
//!
//! The "confused client" is modeled with a raw RPC endpoint so tests can
//! re-send commit/rollback for a transaction the well-behaved client API
//! would consider finished.

use std::collections::BTreeMap;
use std::sync::Arc;

use treaty_core::client::client_net;
use treaty_core::cluster::{wire_crypto, COUNTER_BASE, COUNTER_CLIENT_BASE};
use treaty_core::messages::{decode, encode, req, CommitResult, Op, OpResult};
use treaty_core::{Cluster, ClusterOptions};
use treaty_crypto::{MsgKind, TxMeta};
use treaty_net::{Rpc, RpcConfig};
use treaty_sched::block_on;
use treaty_sim::runtime::now;
use treaty_sim::{Nanos, SecurityProfile, MILLIS, SECONDS};
use treaty_store::GlobalTxId;

fn options(dir: &std::path::Path) -> ClusterOptions {
    let mut o = ClusterOptions::new(SecurityProfile::treaty_full(), dir.to_path_buf());
    o.engine_config = treaty_store::EngineConfig::tiny();
    o
}

/// One key per node, keyed by owner endpoint (ordered for determinism).
fn key_per_node(cluster: &Cluster) -> BTreeMap<u32, Vec<u8>> {
    let mut found: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for i in 0..10_000u32 {
        let k = format!("spread-{i}").into_bytes();
        let owner = cluster.shard_map().owner(&k);
        found.entry(owner).or_insert(k);
        if found.len() == cluster.node_endpoints().len() {
            break;
        }
    }
    found
}

/// A raw RPC endpoint speaking the client protocol without the client
/// library's state machine — the "confused client".
fn raw_client(cluster: &Cluster, id: u32, timeout: Nanos) -> Arc<Rpc> {
    let rpc = Rpc::new(
        cluster.fabric(),
        id,
        RpcConfig {
            endpoint: client_net(),
            crypto: wire_crypto(&SecurityProfile::treaty_full()),
            key: cluster.keys().network,
            cores: None,
            timeout,
        },
    );
    rpc.start();
    rpc
}

fn raw_meta(client_id: u32, tx_seq: u64, op_id: u64, kind: MsgKind) -> TxMeta {
    TxMeta {
        node_id: client_id as u64,
        tx_id: tx_seq,
        op_id,
        kind,
    }
}

/// Bug 1: a transaction rolled back by the client, then committed again by
/// a confused (or retrying) client, was acked `Committed` because the
/// coordinator had no state for it and treated it as an empty transaction.
/// This test FAILS against the pre-fix code.
#[test]
fn commit_after_rollback_is_acked_aborted() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(&path)).unwrap();
        let keys = key_per_node(&cluster);
        let client = cluster.client();

        let mut tx = client.begin(1);
        let seq = tx.gtx().seq;
        for k in keys.values() {
            tx.put(k, b"doomed").unwrap();
        }
        tx.rollback().unwrap();

        // The confused client re-sends the commit for the same transaction.
        let raw = raw_client(&cluster, 9900, treaty_net::DEFAULT_RPC_TIMEOUT);
        let meta = raw_meta(9900, seq, 1, MsgKind::TxnCommit);
        let (_, bytes) = raw.call(1, req::CLIENT_COMMIT, &meta, &[]).unwrap();
        let result: CommitResult = decode(&bytes).unwrap();
        assert!(
            matches!(result, CommitResult::Aborted { .. }),
            "commit of a rolled-back transaction must not be acked Committed, got {result:?}"
        );

        // An actually-empty transaction still commits trivially.
        let empty = client.begin(1);
        empty.commit().unwrap();
    });
}

/// Bug 1, op-error flavor: a transaction auto-aborted because its op hit a
/// dead participant must also answer later commits with `Aborted`.
#[test]
fn commit_after_op_error_abort_is_acked_aborted() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(&path)).unwrap();
        let keys = key_per_node(&cluster);
        let dead_key = keys.get(&2).unwrap().clone();
        cluster.crash_node(1); // endpoint 2

        let client = cluster.client();
        let mut tx = client.begin(1);
        let seq = tx.gtx().seq;
        assert!(
            tx.put(&dead_key, b"x").is_err(),
            "op to a crashed participant must fail"
        );
        // Let the coordinator finish the op handler and its advisory abort.
        treaty_sim::runtime::sleep(2 * SECONDS);

        let raw = raw_client(&cluster, 9901, treaty_net::DEFAULT_RPC_TIMEOUT);
        let meta = raw_meta(9901, seq, 7, MsgKind::TxnCommit);
        let (_, bytes) = raw.call(1, req::CLIENT_COMMIT, &meta, &[]).unwrap();
        let result: CommitResult = decode(&bytes).unwrap();
        assert!(
            matches!(result, CommitResult::Aborted { .. }),
            "commit of an op-error-aborted transaction must be acked Aborted, got {result:?}"
        );
    });
}

/// Bug 2: the pre-prepare abort after an op failure used to run the
/// 6-attempt decision-retry train against the dead peer inside the
/// client-op handler, stalling that session fiber for over a simulated
/// second. The advisory abort replies within the participant RPC timeout.
#[test]
fn pre_prepare_abort_does_not_stall_the_session() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(&path)).unwrap();
        let keys = key_per_node(&cluster);
        let dead_key = keys.get(&2).unwrap().clone();
        cluster.crash_node(1); // endpoint 2

        // A raw call with a generous timeout measures the handler's true
        // duration (the client library would give up at its own timeout).
        let raw = raw_client(&cluster, 9902, 5 * SECONDS);
        let op = Op::Put {
            key: dead_key,
            value: b"x".to_vec(),
        };
        let meta = raw_meta(9902, (9902u64 << 32) | 1, 1, MsgKind::TxnPut);
        let t0 = now();
        let (_, bytes) = raw.call(1, req::CLIENT_OP, &meta, &encode(&op)).unwrap();
        let elapsed = now() - t0;
        let result: OpResult = decode(&bytes).unwrap();
        assert!(
            matches!(result, OpResult::Err { .. }),
            "op on a dead shard must fail, got {result:?}"
        );
        assert!(
            elapsed < 600 * MILLIS,
            "pre-prepare abort stalled the session fiber for {} ms",
            elapsed / MILLIS
        );
    });
}

/// Bug 3: a rollback with no coordinator state (already aborted on the
/// op-error path, or pure duplicate) must not bump the abort counter a
/// second time.
#[test]
fn aborts_are_counted_exactly_once() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let cluster = Cluster::start(options(&path)).unwrap();
        let keys = key_per_node(&cluster);
        let client = cluster.client();

        // One committed transaction.
        let mut tx = client.begin(1);
        for k in keys.values() {
            tx.put(k, b"v").unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(cluster.totals(), (1, 0));

        // One rolled-back transaction.
        let mut tx = client.begin(1);
        let seq = tx.gtx().seq;
        for k in keys.values() {
            tx.put(k, b"doomed").unwrap();
        }
        tx.rollback().unwrap();
        assert_eq!(cluster.totals(), (1, 1));

        // A duplicate rollback (no coordinator state) must not re-count.
        let raw = raw_client(&cluster, 9903, treaty_net::DEFAULT_RPC_TIMEOUT);
        let meta = raw_meta(9903, seq, 11, MsgKind::TxnAbort);
        raw.call(1, req::CLIENT_ROLLBACK, &meta, &[]).unwrap();
        assert_eq!(
            cluster.totals(),
            (1, 1),
            "duplicate rollback double-counted the abort"
        );

        // Nor must a commit attempt for the same aborted transaction.
        let meta = raw_meta(9903, seq, 12, MsgKind::TxnCommit);
        let (_, bytes) = raw.call(1, req::CLIENT_COMMIT, &meta, &[]).unwrap();
        let result: CommitResult = decode(&bytes).unwrap();
        assert!(matches!(result, CommitResult::Aborted { .. }));
        assert_eq!(
            cluster.totals(),
            (1, 1),
            "commit-after-abort re-counted the abort"
        );
    });
}

/// Bug 4: when re-driving an undecided transaction fails to log the
/// decision (counter group unreachable), the failure must be surfaced in
/// the recovery outcome instead of silently dropped — and a later pass
/// (after the fault clears and the node restarts) must finish the job.
#[test]
fn failed_redrive_is_surfaced_and_retryable() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let mut cluster = Cluster::start(options(&path)).unwrap();
        let gtx = GlobalTxId {
            node: 1,
            seq: (9998u64 << 32) | 7,
        };
        // An undecided transaction in node 0's Clog, as left by a
        // coordinator crash between log_start and log_decision.
        cluster
            .node(0)
            .clog()
            .unwrap()
            .log_start(gtx, vec![1, 2])
            .unwrap();

        // Cut node 0's counter client off from every replica: the re-drive
        // can append the decision but cannot stabilize it.
        cluster.fabric().with_adversary(|a| {
            for r in 0..3u32 {
                a.partitions.insert((COUNTER_CLIENT_BASE, COUNTER_BASE + r));
            }
        });
        let outcome = cluster.resolve_recovered();
        assert_eq!(
            outcome.failed, 1,
            "failed re-drive must be surfaced, got {outcome:?}"
        );
        assert_eq!(outcome.re_decided, 0);

        // Heal the network and restart the node (its counter client latched
        // the quorum failure); recovery must now reach a durable decision.
        cluster.fabric().with_adversary(|a| a.partitions.clear());
        cluster.crash_node(0);
        cluster.restart_node(0).unwrap();
        let outcome = cluster.resolve_recovered();
        assert_eq!(
            outcome.failed, 0,
            "healed re-drive still failing: {outcome:?}"
        );
        assert_eq!(
            cluster.node(0).clog().unwrap().decision(gtx),
            Some(false),
            "the undecided transaction must end with a durable abort decision"
        );
    });
}
