//! Wire payloads of the transaction protocol (carried inside the secure
//! message envelope of §VII-A).

use serde::{Deserialize, Serialize};

use treaty_store::GlobalTxId;

/// Request types on the fabric.
pub mod req {
    /// Client → coordinator: one transactional operation.
    pub const CLIENT_OP: u8 = 1;
    /// Client → coordinator: commit.
    pub const CLIENT_COMMIT: u8 = 2;
    /// Client → coordinator: rollback.
    pub const CLIENT_ROLLBACK: u8 = 3;
    /// Client → coordinator: flush of the client's deferred write buffer
    /// (a read is about to need the writes visible). One sealed message
    /// carries every buffered write instead of one `CLIENT_OP` each.
    pub const CLIENT_OP_BATCH: u8 = 8;
    /// Client → shard: lock-free snapshot read (read-only transactions;
    /// no 2PC state, no coordinator).
    pub const SNAPSHOT_READ: u8 = 4;
    /// Client → shard: end-of-transaction snapshot validation (multi-shard
    /// read-only transactions only).
    pub const SNAPSHOT_VALIDATE: u8 = 5;
    /// Client → shard: lock-free snapshot range scan over this shard's
    /// slice of the key space (read-only transactions).
    pub const SNAPSHOT_SCAN: u8 = 7;
    /// Anyone → node: live introspection snapshot (queue depths, stable
    /// frontier, backpressure, cache hit rates). Read-only; serves the
    /// `treaty-top` dashboard.
    pub const OBS_SNAPSHOT: u8 = 6;
    /// Coordinator → participant: one operation.
    pub const PEER_OP: u8 = 10;
    /// Coordinator → participant: this shard's slice of a deferred write
    /// batch — applied in one sealed message (one seal/unseal per shard
    /// instead of per op).
    pub const PEER_OP_BATCH: u8 = 15;
    /// Coordinator → participant: 2PC prepare.
    pub const PEER_PREPARE: u8 = 11;
    /// Coordinator → participant: 2PC commit.
    pub const PEER_COMMIT: u8 = 12;
    /// Coordinator → participant: 2PC abort.
    pub const PEER_ABORT: u8 = 13;
    /// Recovering participant → coordinator: what was decided?
    pub const QUERY_DECISION: u8 = 14;
}

/// One transactional operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Point read.
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// Write.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Deletion.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
    },
    /// Range scan of `[start, end)`. Keys are hash-partitioned, so the
    /// coordinator fans this out to every shard and merges by key.
    Scan {
        /// First key of the span (inclusive).
        start: Vec<u8>,
        /// End of the span (exclusive).
        end: Vec<u8>,
        /// Maximum pairs to return (`0` = unbounded).
        limit: u64,
    },
    /// Range delete of `[start, end)` — fanned out to every shard; each
    /// buffers a multi-version range tombstone over its slice.
    RangeDelete {
        /// First key of the span (inclusive).
        start: Vec<u8>,
        /// End of the span (exclusive).
        end: Vec<u8>,
    },
}

impl Op {
    /// The key this operation touches; for range operations, the span's
    /// start (they are routed by fan-out, not by this anchor).
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Get { key } | Op::Put { key, .. } | Op::Delete { key } => key,
            Op::Scan { start, .. } | Op::RangeDelete { start, .. } => start,
        }
    }

    /// Whether this operation spans the whole key space (fan-out routing).
    pub fn is_range(&self) -> bool {
        matches!(self, Op::Scan { .. } | Op::RangeDelete { .. })
    }
}

/// One deferred blind write: `Some(value)` is a put, `None` a delete.
/// Clients buffer these locally ([`crate::DistTxn::put`] returns without
/// touching the network) and ship them wholesale — on the first read that
/// could observe them ([`req::CLIENT_OP_BATCH`]) or with the commit itself
/// ([`req::CLIENT_COMMIT`] payload).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteCmd {
    /// Key written.
    pub key: Vec<u8>,
    /// `Some` = put this value, `None` = delete the key.
    pub value: Option<Vec<u8>>,
}

impl WriteCmd {
    /// A buffered put.
    pub fn put(key: &[u8], value: &[u8]) -> Self {
        WriteCmd {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        }
    }

    /// A buffered delete.
    pub fn delete(key: &[u8]) -> Self {
        WriteCmd {
            key: key.to_vec(),
            value: None,
        }
    }
}

/// Client → coordinator payload of [`req::CLIENT_OP_BATCH`] and
/// [`req::CLIENT_COMMIT`]: the deferred write buffer, in issue order.
/// (An empty `CLIENT_COMMIT` payload still means "no shipped writes", so
/// pre-batching clients keep working.)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientCommitReq {
    /// Buffered writes in the order the client issued them.
    #[serde(default)]
    pub writes: Vec<WriteCmd>,
}

/// Why one operation of a batch failed — typed, so a batch reply can say
/// *which* op failed and *how* instead of first-error-wins prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailCode {
    /// Lock acquisition timed out (contention / deadlock avoidance).
    LockTimeout,
    /// Optimistic validation conflict.
    Conflict,
    /// Integrity or freshness verification failed on persistent data.
    Integrity,
    /// The transaction was already finished on this participant.
    Finished,
    /// Anything else (I/O, stabilization, …) — see the reason string.
    Other,
}

impl From<&treaty_store::StoreError> for FailCode {
    fn from(e: &treaty_store::StoreError) -> Self {
        use treaty_store::StoreError;
        match e {
            StoreError::LockTimeout => FailCode::LockTimeout,
            StoreError::Conflict => FailCode::Conflict,
            StoreError::Integrity(_) | StoreError::Rollback(_) => FailCode::Integrity,
            StoreError::Finished => FailCode::Finished,
            _ => FailCode::Other,
        }
    }
}

/// The failing operation of a batch: its position in the shipped write
/// list, a typed code, and the engine's reason.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpFailure {
    /// Index of the failing write within the batch this shard received.
    pub index: u32,
    /// Typed failure class.
    pub code: FailCode,
    /// Human-readable engine error.
    pub reason: String,
}

/// Result of an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// Success; `value` set for gets.
    Ok {
        /// Value read, if this was a get.
        value: Option<Vec<u8>>,
    },
    /// Success of an [`Op::Scan`]: the visible pairs of one shard's slice
    /// of the span, sorted by key.
    Entries {
        /// `(key, value)` pairs in ascending key order.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// The operation failed and the transaction aborted.
    Err {
        /// Human-readable reason.
        reason: String,
    },
}

/// Coordinator → participant messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerMsg {
    /// Execute one operation inside `gtx`.
    Op {
        /// Transaction id.
        gtx: GlobalTxId,
        /// Operation.
        op: Op,
    },
    /// Apply this shard's slice of a deferred write batch inside `gtx`.
    OpBatch {
        /// Transaction id.
        gtx: GlobalTxId,
        /// The writes, in client issue order.
        writes: Vec<WriteCmd>,
    },
    /// Prepare `gtx` (phase one). For write-only participants the
    /// coordinator piggybacks their batch slice here, collapsing
    /// execute+prepare into one round trip per shard.
    Prepare {
        /// Transaction id.
        gtx: GlobalTxId,
        /// Deferred writes to apply before preparing (empty for a plain
        /// prepare; defaulted so pre-batching encodings keep decoding).
        #[serde(default)]
        batch: Vec<WriteCmd>,
    },
    /// Commit `gtx` (phase two).
    Commit {
        /// Transaction id.
        gtx: GlobalTxId,
    },
    /// Abort `gtx`.
    Abort {
        /// Transaction id.
        gtx: GlobalTxId,
    },
    /// Ask the coordinator for `gtx`'s outcome (recovery).
    QueryDecision {
        /// Transaction id.
        gtx: GlobalTxId,
    },
}

/// Participant → coordinator replies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerReply {
    /// Result of an [`PeerMsg::Op`].
    OpDone(OpResult),
    /// Result of a [`PeerMsg::OpBatch`]: `None` = every write applied;
    /// `Some` pinpoints the first failing write (the participant rolled
    /// the whole batch back — all-or-nothing).
    BatchDone {
        /// The failing write, if any.
        fail: Option<OpFailure>,
    },
    /// Prepare vote.
    Vote {
        /// True = prepared and stabilized; false = abort.
        yes: bool,
    },
    /// Commit/abort acknowledged.
    Ack,
    /// Answer to [`PeerMsg::QueryDecision`]: `None` = still undecided.
    Decision {
        /// `Some(true)` commit, `Some(false)` abort, `None` unknown.
        commit: Option<bool>,
    },
}

/// Client → coordinator commit/rollback result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitResult {
    /// Committed and (under the stabilization profile) rollback-protected.
    Committed,
    /// Aborted.
    Aborted {
        /// Why.
        reason: String,
    },
}

/// Client → shard snapshot-read request (read-only transactions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotReadReq {
    /// Snapshot timestamp pinned at this shard; `None` asks the shard to
    /// pin its current stable read timestamp and report it back. (An
    /// explicit option, not a `0` sentinel: `0` is a legitimate stable
    /// timestamp on a fresh shard, and conflating the two let one
    /// transaction re-pin the same shard at two different timestamps.)
    pub ts: Option<u64>,
    /// Keys to read, all owned by this shard.
    pub keys: Vec<Vec<u8>>,
}

/// Shard → client snapshot-read reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotReadReply {
    /// The reads, served lock-free at `ts`.
    Values {
        /// The snapshot timestamp actually used (echoed, or freshly
        /// pinned when the request carried no timestamp).
        ts: u64,
        /// One value per requested key, in request order.
        values: Vec<Option<Vec<u8>>>,
    },
    /// The requested timestamp runs ahead of this shard's stable read
    /// timestamp; retry with a refreshed snapshot.
    Stale {
        /// The shard's current stable read timestamp.
        stable_ts: u64,
    },
    /// A key overlaps an undecided prepared transaction; its outcome may
    /// already be visible elsewhere, so the snapshot must retry.
    InDoubt {
        /// The offending key.
        key: Vec<u8>,
    },
}

/// Client → shard snapshot-scan request (read-only transactions): scan
/// `[start, end)` lock-free at the shard's stable timestamp. Keys are
/// hash-partitioned, so the client fans this out to every shard and
/// merges the sorted slices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotScanReq {
    /// Snapshot timestamp pinned at this shard; `None` asks the shard to
    /// pin its current stable read timestamp and report it back.
    pub ts: Option<u64>,
    /// First key of the span (inclusive).
    pub start: Vec<u8>,
    /// End of the span (exclusive).
    pub end: Vec<u8>,
    /// Maximum pairs this shard should return (`0` = unbounded).
    pub limit: u64,
}

/// Shard → client snapshot-scan reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotScanReply {
    /// This shard's slice of the span, served lock-free at `ts`.
    Entries {
        /// The snapshot timestamp actually used.
        ts: u64,
        /// `(key, value)` pairs in ascending key order.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// The requested timestamp runs ahead of this shard's stable read
    /// timestamp; retry with a refreshed snapshot.
    Stale {
        /// The shard's current stable read timestamp.
        stable_ts: u64,
    },
    /// The span overlaps an undecided prepared transaction; its outcome
    /// may already be visible elsewhere, so the snapshot must retry.
    InDoubt,
}

/// Client → shard end-of-transaction validation for multi-shard read-only
/// transactions: "are these reads at `ts` still the latest word?"
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotValidateReq {
    /// The timestamp the keys were read at on this shard.
    pub ts: u64,
    /// The keys read from this shard.
    pub keys: Vec<Vec<u8>>,
    /// Spans scanned from this shard (`[start, end)` pairs). Per-key
    /// validation cannot see a key *inserted* into a scanned span after
    /// the read, so spans are validated wholesale: any version, tombstone
    /// or in-doubt prepare newer than `ts` inside a span fails the
    /// snapshot. Defaulted so old clients keep decoding.
    #[serde(default)]
    pub spans: Vec<(Vec<u8>, Vec<u8>)>,
}

/// Shard → client validation reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotValidateReply {
    /// All reads still current — the snapshot is consistent.
    Ok,
    /// A read was overtaken by a commit or an in-flight prepare; the
    /// snapshot may be torn and must retry.
    Fail {
        /// The first key that failed validation.
        key: Vec<u8>,
    },
}

/// Node → caller live introspection snapshot ([`req::OBS_SNAPSHOT`]).
/// Every field is read from the node's live structures at serve time —
/// this is the `treaty-top` data source, not a post-run artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshotReply {
    /// The answering node's endpoint.
    pub node: u32,
    /// Virtual time the snapshot was taken.
    pub ts: u64,
    /// The shard's stable read timestamp (MVCC frontier).
    pub stable_ts: u64,
    /// Decisions durably logged but not yet dispatched (phase-2 queue).
    pub decision_queue_depth: u64,
    /// Memtables sealed and waiting for the flush daemon.
    pub flush_backlog: u64,
    /// Commit backpressure: 0 = clear, 1 = throttled, 2 = stalled.
    pub backpressure: u8,
    /// Prepared-table occupancy (in-doubt transactions held).
    pub prepared_txns: u64,
    /// Transactions committed at this node (coordinator count).
    pub committed: u64,
    /// Transactions aborted at this node.
    pub aborted: u64,
    /// Participant operations served.
    pub participant_ops: u64,
    /// Phase-2 decision dispatch retries.
    pub decision_retries: u64,
    /// Trusted block-cache hits.
    pub block_cache_hits: u64,
    /// Trusted block-cache misses.
    pub block_cache_misses: u64,
}

/// Encodes any of the protocol payloads.
pub fn encode<T: Serialize>(v: &T) -> Vec<u8> {
    serde_json::to_vec(v).expect("protocol message serializes")
}

/// Decodes a protocol payload.
pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Option<T> {
    serde_json::from_slice(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrip() {
        let ops = vec![
            Op::Get { key: b"k".to_vec() },
            Op::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            Op::Delete { key: b"k".to_vec() },
        ];
        for op in ops {
            let bytes = encode(&op);
            assert_eq!(decode::<Op>(&bytes), Some(op.clone()));
            assert_eq!(op.key(), b"k");
        }
    }

    #[test]
    fn range_op_roundtrip() {
        let scan = Op::Scan {
            start: b"a".to_vec(),
            end: b"m".to_vec(),
            limit: 10,
        };
        let rdel = Op::RangeDelete {
            start: b"a".to_vec(),
            end: b"m".to_vec(),
        };
        for op in [scan, rdel] {
            assert_eq!(decode::<Op>(&encode(&op)), Some(op.clone()));
            assert_eq!(op.key(), b"a");
            assert!(op.is_range());
        }
        let res = OpResult::Entries {
            entries: vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())],
        };
        assert_eq!(decode::<OpResult>(&encode(&res)), Some(res));
    }

    #[test]
    fn snapshot_scan_roundtrip() {
        let req = SnapshotScanReq {
            ts: Some(7),
            start: b"a".to_vec(),
            end: b"m".to_vec(),
            limit: 0,
        };
        assert_eq!(decode::<SnapshotScanReq>(&encode(&req)), Some(req));
        for reply in [
            SnapshotScanReply::Entries {
                ts: 7,
                entries: vec![(b"a".to_vec(), b"1".to_vec())],
            },
            SnapshotScanReply::Stale { stable_ts: 3 },
            SnapshotScanReply::InDoubt,
        ] {
            assert_eq!(
                decode::<SnapshotScanReply>(&encode(&reply)),
                Some(reply.clone())
            );
        }
    }

    #[test]
    fn peer_msg_roundtrip() {
        let gtx = GlobalTxId { node: 1, seq: 2 };
        let m = PeerMsg::Prepare {
            gtx,
            batch: Vec::new(),
        };
        assert_eq!(decode::<PeerMsg>(&encode(&m)), Some(m));
    }

    #[test]
    fn write_batch_payloads_roundtrip() {
        let gtx = GlobalTxId { node: 1, seq: 2 };
        let writes = vec![WriteCmd::put(b"a", b"1"), WriteCmd::delete(b"b")];
        let shipped = ClientCommitReq {
            writes: writes.clone(),
        };
        assert_eq!(decode::<ClientCommitReq>(&encode(&shipped)), Some(shipped));
        let batch = PeerMsg::OpBatch {
            gtx,
            writes: writes.clone(),
        };
        assert_eq!(decode::<PeerMsg>(&encode(&batch)), Some(batch));
        let piggyback = PeerMsg::Prepare { gtx, batch: writes };
        assert_eq!(decode::<PeerMsg>(&encode(&piggyback)), Some(piggyback));
        for fail in [
            None,
            Some(OpFailure {
                index: 3,
                code: FailCode::LockTimeout,
                reason: "lock timeout on key".into(),
            }),
        ] {
            let reply = PeerReply::BatchDone { fail };
            assert_eq!(decode::<PeerReply>(&encode(&reply)), Some(reply.clone()));
        }
    }

    #[test]
    fn pre_batching_prepare_still_decodes() {
        // Prepares encoded before the piggybacked batch existed carry no
        // `batch` field; the serde default must keep them decoding.
        let old: PeerMsg = decode(br#"{"Prepare":{"gtx":{"node":1,"seq":2}}}"#)
            .expect("batch-less prepare decodes");
        assert_eq!(
            old,
            PeerMsg::Prepare {
                gtx: GlobalTxId { node: 1, seq: 2 },
                batch: Vec::new(),
            }
        );
        // An empty commit payload is not valid JSON for ClientCommitReq;
        // the coordinator treats an empty payload as "no shipped writes"
        // before decoding — but a writes-less object must also decode.
        let bare: ClientCommitReq = decode(br#"{}"#).expect("writes-less commit decodes");
        assert!(bare.writes.is_empty());
    }

    #[test]
    fn fail_code_classifies_store_errors() {
        use treaty_store::StoreError;
        assert_eq!(FailCode::from(&StoreError::LockTimeout), FailCode::LockTimeout);
        assert_eq!(FailCode::from(&StoreError::Conflict), FailCode::Conflict);
        assert_eq!(
            FailCode::from(&StoreError::Integrity("bad".into())),
            FailCode::Integrity
        );
        assert_eq!(
            FailCode::from(&StoreError::Rollback("stale".into())),
            FailCode::Integrity
        );
        assert_eq!(FailCode::from(&StoreError::Finished), FailCode::Finished);
        assert_eq!(FailCode::from(&StoreError::Io("disk".into())), FailCode::Other);
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(decode::<PeerMsg>(b"not json"), None);
    }

    #[test]
    fn snapshot_payloads_roundtrip() {
        for ts in [None, Some(0), Some(7)] {
            let req = SnapshotReadReq {
                ts,
                keys: vec![b"a".to_vec(), b"b".to_vec()],
            };
            assert_eq!(decode::<SnapshotReadReq>(&encode(&req)), Some(req));
        }
        for reply in [
            SnapshotReadReply::Values {
                ts: 7,
                values: vec![Some(b"v".to_vec()), None],
            },
            SnapshotReadReply::Stale { stable_ts: 3 },
            SnapshotReadReply::InDoubt { key: b"a".to_vec() },
        ] {
            assert_eq!(
                decode::<SnapshotReadReply>(&encode(&reply)),
                Some(reply.clone())
            );
        }
        let val = SnapshotValidateReq {
            ts: 7,
            keys: vec![b"a".to_vec()],
            spans: vec![(b"a".to_vec(), b"m".to_vec())],
        };
        assert_eq!(decode::<SnapshotValidateReq>(&encode(&val)), Some(val));
        // Requests encoded before spans existed still decode (serde default).
        let old: SnapshotValidateReq =
            decode(br#"{"ts":7,"keys":[[97]]}"#).expect("span-less request decodes");
        assert!(old.spans.is_empty());
        for reply in [
            SnapshotValidateReply::Ok,
            SnapshotValidateReply::Fail { key: b"a".to_vec() },
        ] {
            assert_eq!(
                decode::<SnapshotValidateReply>(&encode(&reply)),
                Some(reply.clone())
            );
        }
    }
}
