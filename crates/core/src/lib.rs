//! Treaty's distributed transaction layer (§IV–§VI): the paper's primary
//! contribution.
//!
//! A [`cluster::Cluster`] shards the key space over [`node::TreatyNode`]s.
//! Clients ([`client::TreatyClient`]) drive interactive transactions
//! through a coordinator node, which forwards operations to participant
//! shards and, at commit, runs the secure two-phase-commit of Fig. 2:
//!
//! 1. the coordinator logs the transaction to its **Clog** with a trusted
//!    counter value,
//! 2. participants prepare locally (durable WAL record, locks held) and —
//!    under the stabilization profile — only ACK once the prepare entry is
//!    rollback-protected,
//! 3. the coordinator logs and stabilizes the decision, then instructs
//!    participants to commit; the client learns the outcome once the
//!    decision itself can never be rolled back.
//!
//! Recovery (§VI) replays MANIFEST → WAL → Clog, re-drives undecided
//! transactions, answers participants' `QueryDecision` requests, and
//! refuses forked or rolled-back state.

pub mod client;
pub mod clog;
pub mod cluster;
pub mod history;
pub mod messages;
pub mod node;
pub mod shard;

pub use client::{DistTxn, SnapshotTxn, TreatyClient};
pub use cluster::{Cluster, ClusterOptions};
pub use history::{check_list_append, HistoryError, TxnObservation};
pub use node::{NodeOptions, RecoveryOutcome, TreatyNode};
pub use shard::ShardMap;

use treaty_store::GlobalTxId;

/// Errors surfaced by the distributed layer.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TreatyError {
    /// The transaction was aborted (conflict, timeout, participant vote,
    /// or explicit rollback).
    #[error("transaction {0} aborted: {1}")]
    Aborted(GlobalTxId, String),
    /// A network problem prevented completing the request.
    #[error("network: {0}")]
    Net(String),
    /// The storage engine reported an error.
    #[error("storage: {0}")]
    Store(String),
    /// The remote node rejected the request (authentication, unknown
    /// transaction, …).
    #[error("rejected: {0}")]
    Rejected(String),
    /// A snapshot read could not be served at the requested timestamp —
    /// stale timestamp, in-doubt prepare, or failed end-of-transaction
    /// validation. Always retryable: refresh the snapshot and try again
    /// ([`TreatyClient::snapshot_read`](client::TreatyClient::snapshot_read)
    /// automates the loop). A typed variant so retry classification never
    /// depends on matching formatted message strings.
    #[error("snapshot retry: {0}")]
    SnapshotRetry(String),
}

impl From<treaty_net::NetError> for TreatyError {
    fn from(e: treaty_net::NetError) -> Self {
        TreatyError::Net(e.to_string())
    }
}

impl From<treaty_store::StoreError> for TreatyError {
    fn from(e: treaty_store::StoreError) -> Self {
        TreatyError::Store(e.to_string())
    }
}

/// Result alias for the distributed layer.
pub type Result<T> = std::result::Result<T, TreatyError>;
