//! Serializability checking for list-append histories (Elle-style).
//!
//! The test workloads use *list-append* transactions: every write reads a
//! key's current list and appends its own transaction id. The final value
//! of each key is then the key's complete version order, which lets us
//! reconstruct the three conflict-edge kinds and check the conflict graph
//! for cycles — a sound serializability test, without trusting the system
//! under test for anything except the observed reads.

use std::collections::{HashMap, HashSet};

use treaty_store::GlobalTxId;

/// What one committed transaction observed and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnObservation {
    /// The transaction.
    pub id: GlobalTxId,
    /// For each read key: the full list observed (its own append excluded).
    pub reads: Vec<(Vec<u8>, Vec<GlobalTxId>)>,
    /// Keys this transaction appended itself to.
    pub appends: Vec<Vec<u8>>,
}

/// A violation found by [`check_list_append`].
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum HistoryError {
    /// A read observed a list that is not a prefix of the final version
    /// order — intermediate or fabricated state.
    #[error("txn {txn} read a non-prefix list of key {key:?}")]
    NonPrefixRead {
        /// Reader.
        txn: GlobalTxId,
        /// Key.
        key: Vec<u8>,
    },
    /// A committed append is missing from the final list — a lost update.
    #[error("txn {txn} committed an append to {key:?} that is missing from the final state")]
    LostAppend {
        /// Writer.
        txn: GlobalTxId,
        /// Key.
        key: Vec<u8>,
    },
    /// The conflict graph has a cycle — the history is not serializable.
    #[error("conflict cycle involving {0} transactions")]
    Cycle(usize),
}

/// Checks a committed list-append history against the final per-key lists.
///
/// # Errors
///
/// Returns the first [`HistoryError`] found.
pub fn check_list_append(
    txns: &[TxnObservation],
    finals: &HashMap<Vec<u8>, Vec<GlobalTxId>>,
) -> Result<(), HistoryError> {
    // Position of each writer in each key's version order.
    let mut position: HashMap<(&[u8], GlobalTxId), usize> = HashMap::new();
    for (key, order) in finals {
        for (i, w) in order.iter().enumerate() {
            position.insert((key.as_slice(), *w), i);
        }
    }

    // Every committed append must appear in the final order.
    for t in txns {
        for key in &t.appends {
            if !position.contains_key(&(key.as_slice(), t.id)) {
                return Err(HistoryError::LostAppend {
                    txn: t.id,
                    key: key.clone(),
                });
            }
        }
    }

    // Build conflict edges.
    let ids: HashSet<GlobalTxId> = txns.iter().map(|t| t.id).collect();
    let mut edges: HashMap<GlobalTxId, HashSet<GlobalTxId>> = HashMap::new();
    let mut add_edge = |from: GlobalTxId, to: GlobalTxId| {
        if from != to && ids.contains(&from) && ids.contains(&to) {
            edges.entry(from).or_default().insert(to);
        }
    };

    // ww: adjacency in each final order.
    for order in finals.values() {
        for pair in order.windows(2) {
            add_edge(pair[0], pair[1]);
        }
    }

    for t in txns {
        for (key, observed) in &t.reads {
            let order = match finals.get(key) {
                Some(o) => o,
                None => {
                    if observed.is_empty() {
                        continue;
                    }
                    return Err(HistoryError::NonPrefixRead {
                        txn: t.id,
                        key: key.clone(),
                    });
                }
            };
            // A read-modify-write observes the list *before* its own
            // append; compare against the prefix excluding self.
            if observed.len() > order.len() || observed.as_slice() != &order[..observed.len()] {
                return Err(HistoryError::NonPrefixRead {
                    txn: t.id,
                    key: key.clone(),
                });
            }
            match observed.last() {
                Some(last) => {
                    // wr: writer of the observed tail precedes the reader.
                    add_edge(*last, t.id);
                    // rw: the reader precedes the next writer.
                    let pos = position[&(key.as_slice(), *last)];
                    if pos + 1 < order.len() {
                        add_edge(t.id, order[pos + 1]);
                    }
                }
                None => {
                    // Read of the initial (empty) state precedes the first
                    // writer.
                    if let Some(first) = order.first() {
                        add_edge(t.id, *first);
                    }
                }
            }
        }
    }

    // Cycle detection via iterative three-colour DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<GlobalTxId, Colour> =
        ids.iter().map(|&id| (id, Colour::White)).collect();
    for &start in &ids {
        if colour[&start] != Colour::White {
            continue;
        }
        let mut stack: Vec<(GlobalTxId, bool)> = vec![(start, false)];
        while let Some((n, processed)) = stack.pop() {
            if processed {
                colour.insert(n, Colour::Black);
                continue;
            }
            match colour[&n] {
                Colour::Black => continue,
                Colour::Grey => continue,
                Colour::White => {}
            }
            colour.insert(n, Colour::Grey);
            stack.push((n, true));
            if let Some(next) = edges.get(&n) {
                for &m in next {
                    match colour[&m] {
                        Colour::White => stack.push((m, false)),
                        Colour::Grey => {
                            let grey = colour.values().filter(|c| **c == Colour::Grey).count();
                            return Err(HistoryError::Cycle(grey));
                        }
                        Colour::Black => {}
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(seq: u64) -> GlobalTxId {
        GlobalTxId { node: 1, seq }
    }

    fn k(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn serial_history_passes() {
        // t1 appends to x (read []); t2 appends to x (read [t1]).
        let txns = vec![
            TxnObservation {
                id: gtx(1),
                reads: vec![(k("x"), vec![])],
                appends: vec![k("x")],
            },
            TxnObservation {
                id: gtx(2),
                reads: vec![(k("x"), vec![gtx(1)])],
                appends: vec![k("x")],
            },
        ];
        let mut finals = HashMap::new();
        finals.insert(k("x"), vec![gtx(1), gtx(2)]);
        check_list_append(&txns, &finals).unwrap();
    }

    #[test]
    fn lost_update_detected() {
        // t2's append never made it into the final list.
        let txns = vec![
            TxnObservation {
                id: gtx(1),
                reads: vec![],
                appends: vec![k("x")],
            },
            TxnObservation {
                id: gtx(2),
                reads: vec![],
                appends: vec![k("x")],
            },
        ];
        let mut finals = HashMap::new();
        finals.insert(k("x"), vec![gtx(1)]);
        assert_eq!(
            check_list_append(&txns, &finals),
            Err(HistoryError::LostAppend {
                txn: gtx(2),
                key: k("x")
            })
        );
    }

    #[test]
    fn non_prefix_read_detected() {
        // t2 observed [t3] but the final order is [t1, t3].
        let txns = vec![
            TxnObservation {
                id: gtx(1),
                reads: vec![],
                appends: vec![k("x")],
            },
            TxnObservation {
                id: gtx(2),
                reads: vec![(k("x"), vec![gtx(3)])],
                appends: vec![],
            },
            TxnObservation {
                id: gtx(3),
                reads: vec![],
                appends: vec![k("x")],
            },
        ];
        let mut finals = HashMap::new();
        finals.insert(k("x"), vec![gtx(1), gtx(3)]);
        assert!(matches!(
            check_list_append(&txns, &finals),
            Err(HistoryError::NonPrefixRead { .. })
        ));
    }

    #[test]
    fn write_skew_style_cycle_detected() {
        // t1 reads y (sees t2's write missing), appends x.
        // t2 reads x (sees t1's write missing), appends y.
        // rw edges both ways -> cycle.
        let txns = vec![
            TxnObservation {
                id: gtx(1),
                reads: vec![(k("y"), vec![])],
                appends: vec![k("x")],
            },
            TxnObservation {
                id: gtx(2),
                reads: vec![(k("x"), vec![])],
                appends: vec![k("y")],
            },
        ];
        let mut finals = HashMap::new();
        finals.insert(k("x"), vec![gtx(1)]);
        finals.insert(k("y"), vec![gtx(2)]);
        assert!(matches!(
            check_list_append(&txns, &finals),
            Err(HistoryError::Cycle(_))
        ));
    }

    #[test]
    fn concurrent_disjoint_txns_pass() {
        let txns = vec![
            TxnObservation {
                id: gtx(1),
                reads: vec![(k("a"), vec![])],
                appends: vec![k("a")],
            },
            TxnObservation {
                id: gtx(2),
                reads: vec![(k("b"), vec![])],
                appends: vec![k("b")],
            },
        ];
        let mut finals = HashMap::new();
        finals.insert(k("a"), vec![gtx(1)]);
        finals.insert(k("b"), vec![gtx(2)]);
        check_list_append(&txns, &finals).unwrap();
    }

    #[test]
    fn read_of_unwritten_key_ok() {
        let txns = vec![TxnObservation {
            id: gtx(1),
            reads: vec![(k("nope"), vec![])],
            appends: vec![],
        }];
        check_list_append(&txns, &HashMap::new()).unwrap();
    }

    #[test]
    fn long_serial_chain_passes() {
        let mut txns = Vec::new();
        let mut order = Vec::new();
        for i in 1..=50 {
            txns.push(TxnObservation {
                id: gtx(i),
                reads: vec![(k("x"), order.clone())],
                appends: vec![k("x")],
            });
            order.push(gtx(i));
        }
        let mut finals = HashMap::new();
        finals.insert(k("x"), order);
        check_list_append(&txns, &finals).unwrap();
    }
}
