//! The coordinator log (Clog) — the third authenticated log file (§V-A).
//!
//! "Clog is written by Txs coordinators and keeps the 2PC protocol state."
//! Every entry carries a trusted counter value; the *decision* entry is
//! stabilized before the transaction may commit, which is what makes the
//! outcome of a distributed transaction rollback-protected (§VI).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treaty_store::env::Env;
use treaty_store::log::{self, LogWriter};
use treaty_store::{GlobalTxId, Result, StoreError};

/// One Clog record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClogRecord {
    /// The coordinator started 2PC for `gtx` with these participants.
    Start {
        /// Transaction id.
        gtx: GlobalTxId,
        /// Participant fabric endpoints.
        participants: Vec<u32>,
    },
    /// The commit/abort decision.
    Decision {
        /// Transaction id.
        gtx: GlobalTxId,
        /// True = commit.
        commit: bool,
    },
}

/// 2PC state for one transaction, rebuilt at recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxProtocolState {
    /// Participants recorded at start.
    pub participants: Vec<u32>,
    /// Decision, if logged.
    pub decision: Option<bool>,
}

/// The coordinator log.
pub struct Clog {
    writer: Arc<LogWriter>,
    state: Mutex<HashMap<GlobalTxId, TxProtocolState>>,
    /// Highest Clog counter known stabilized against the trusted counter —
    /// the coordinator-side stable prefix backing lock-free snapshot
    /// reads. Advanced by the stabilize path in [`Clog::log_decision`].
    stable_counter: AtomicU64,
    env: Arc<Env>,
}

impl std::fmt::Debug for Clog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Clog").finish_non_exhaustive()
    }
}

/// File name of the Clog within a node directory.
pub const CLOG_FILE: &str = "CLOG";
/// Log name (drives the trusted counter id).
pub const CLOG_NAME: &str = "clog";

impl Clog {
    /// Opens (or recovers) the Clog in `env.dir`, verifying integrity and
    /// freshness of any existing records.
    ///
    /// # Errors
    ///
    /// Propagates integrity/rollback errors from the log replay.
    pub fn open(env: Arc<Env>) -> Result<Self> {
        let path = env.dir.join(CLOG_FILE);
        let mut state = HashMap::new();
        let recovered_counter = if path.exists() {
            let replay = log::replay(&env, CLOG_NAME, &path, 0)?;
            log::verify_freshness(&env, CLOG_NAME, replay.last_counter)?;
            for (_, payload) in &replay.records {
                let rec: ClogRecord = serde_json::from_slice(payload)
                    .map_err(|_| StoreError::Integrity("clog record does not parse".into()))?;
                match rec {
                    ClogRecord::Start { gtx, participants } => {
                        state
                            .entry(gtx)
                            .or_insert(TxProtocolState {
                                participants: vec![],
                                decision: None,
                            })
                            .participants = participants;
                    }
                    ClogRecord::Decision { gtx, commit } => {
                        state
                            .entry(gtx)
                            .or_insert(TxProtocolState {
                                participants: vec![],
                                decision: None,
                            })
                            .decision = Some(commit);
                    }
                }
            }
            replay.last_counter
        } else {
            // A missing Clog is only acceptable if nothing was ever
            // stabilized under this name — otherwise the adversary deleted
            // it to forget decided transactions.
            log::verify_freshness(&env, CLOG_NAME, 0)?;
            0
        };
        let writer = Arc::new(LogWriter::open(
            Arc::clone(&env),
            CLOG_NAME,
            &path,
            recovered_counter,
        )?);
        Ok(Clog {
            writer,
            state: Mutex::new(state),
            // Everything recovered passed freshness verification, so the
            // whole replayed prefix is stable.
            stable_counter: AtomicU64::new(recovered_counter),
            env,
        })
    }

    /// Logs the start of 2PC for `gtx`. Returns the record's counter.
    ///
    /// # Errors
    ///
    /// Propagates log I/O failures.
    pub fn log_start(&self, gtx: GlobalTxId, participants: Vec<u32>) -> Result<u64> {
        let _span = treaty_sim::obs::span_with(
            "clog.log_start",
            &[("participants", participants.len() as u64)],
        );
        let rec = ClogRecord::Start {
            gtx,
            participants: participants.clone(),
        };
        let counter = self.writer.append(&encode_clog_record(&rec)?)?;
        self.state.lock().insert(
            gtx,
            TxProtocolState {
                participants,
                decision: None,
            },
        );
        Ok(counter)
    }

    /// Logs the decision and — under the stabilization profile — blocks
    /// until it is rollback-protected (§V-A steps 6–7).
    ///
    /// # Errors
    ///
    /// Propagates log I/O and stabilization failures.
    pub fn log_decision(&self, gtx: GlobalTxId, commit: bool) -> Result<()> {
        let _span =
            treaty_sim::obs::span_with("clog.log_decision", &[("commit", u64::from(commit))]);
        let rec = ClogRecord::Decision { gtx, commit };
        let counter = self.writer.append(&encode_clog_record(&rec)?)?;
        treaty_sim::crashpoint::hit("clog.decision_appended");
        if self.env.profile.stabilization {
            let _stab = treaty_sim::obs::span("clog.stabilize");
            self.writer.stabilize(counter)?;
        }
        // Stabilized (or the profile waives stabilization, in which case
        // durability is the append itself): the stable prefix grows.
        self.stable_counter.fetch_max(counter, Ordering::SeqCst);
        treaty_sim::obs::gauge_set("clog.stable_ts", counter);
        if let Some(st) = self.state.lock().get_mut(&gtx) {
            st.decision = Some(commit);
        }
        Ok(())
    }

    /// The highest Clog counter whose prefix is stabilized against the
    /// trusted counter — every decision at or below it is
    /// rollback-protected.
    pub fn stable_ts(&self) -> u64 {
        self.stable_counter.load(Ordering::SeqCst)
    }

    /// The logged decision for `gtx`, if any.
    pub fn decision(&self, gtx: GlobalTxId) -> Option<bool> {
        self.state.lock().get(&gtx).and_then(|s| s.decision)
    }

    /// Transactions started but undecided — what recovery must re-drive.
    pub fn undecided(&self) -> Vec<(GlobalTxId, Vec<u32>)> {
        self.state
            .lock()
            .iter()
            .filter(|(_, s)| s.decision.is_none())
            .map(|(g, s)| (*g, s.participants.clone()))
            .collect()
    }

    /// Transactions with a logged decision (recovery re-delivers phase
    /// two for them, since ACKs are not logged).
    pub fn decided(&self) -> Vec<(GlobalTxId, TxProtocolState)> {
        self.state
            .lock()
            .iter()
            .filter(|(_, s)| s.decision.is_some())
            .map(|(g, s)| (*g, s.clone()))
            .collect()
    }

    /// Full protocol state for `gtx` (test introspection).
    pub fn protocol_state(&self, gtx: GlobalTxId) -> Option<TxProtocolState> {
        self.state.lock().get(&gtx).cloned()
    }
}

/// Serializes a Clog record; a typed error instead of a panic, because the
/// coordinator's commit path must never unwind mid-2PC (L002).
fn encode_clog_record(rec: &ClogRecord) -> Result<Vec<u8>> {
    serde_json::to_vec(rec)
        .map_err(|e| StoreError::Io(format!("clog record does not serialize: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use treaty_sim::SecurityProfile;

    fn env(dir: &Path) -> Arc<Env> {
        Env::for_testing(SecurityProfile::treaty_full(), dir)
    }

    #[test]
    fn start_decide_and_recover() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let gtx = GlobalTxId { node: 1, seq: 9 };
        {
            let clog = Clog::open(env(dir.path()))?;
            clog.log_start(gtx, vec![1, 2])?;
            assert_eq!(clog.undecided().len(), 1);
            clog.log_decision(gtx, true)?;
            assert_eq!(clog.decision(gtx), Some(true));
            assert!(clog.undecided().is_empty());
        }
        // Recover.
        let clog = Clog::open(env(dir.path()))?;
        assert_eq!(clog.decision(gtx), Some(true));
        let st = clog
            .protocol_state(gtx)
            .ok_or_else(|| StoreError::Integrity("recovered state missing".into()))?;
        assert_eq!(st.participants, vec![1, 2]);
        Ok(())
    }

    #[test]
    fn undecided_txn_visible_after_recovery() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let gtx = GlobalTxId { node: 1, seq: 3 };
        {
            let clog = Clog::open(env(dir.path()))?;
            clog.log_start(gtx, vec![2, 3])?;
            // crash before decision
        }
        let clog = Clog::open(env(dir.path()))?;
        assert_eq!(clog.undecided(), vec![(gtx, vec![2, 3])]);
        assert_eq!(clog.decision(gtx), None);
        Ok(())
    }

    #[test]
    fn stable_ts_advances_with_decisions_and_survives_recovery() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let gtx = GlobalTxId { node: 1, seq: 1 };
        let stable_before;
        {
            let clog = Clog::open(env(dir.path()))?;
            assert_eq!(clog.stable_ts(), 0);
            clog.log_start(gtx, vec![1])?;
            // Start records are not stabilized; the frontier waits for a
            // decision.
            assert_eq!(clog.stable_ts(), 0);
            clog.log_decision(gtx, true)?;
            stable_before = clog.stable_ts();
            assert!(stable_before > 0);
        }
        let clog = Clog::open(env(dir.path()))?;
        assert!(clog.stable_ts() >= stable_before);
        Ok(())
    }

    #[test]
    fn tampered_clog_detected() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let e = env(dir.path());
        {
            let clog = Clog::open(Arc::clone(&e))?;
            clog.log_start(GlobalTxId { node: 1, seq: 1 }, vec![1])?;
        }
        let path = dir.path().join(CLOG_FILE);
        let mut raw = std::fs::read(&path)?;
        raw[15] ^= 0x40;
        std::fs::write(&path, raw)?;
        let err = Clog::open(e).unwrap_err();
        assert!(matches!(err, StoreError::Integrity(_)));
        Ok(())
    }

    #[test]
    fn truncated_clog_detected_as_rollback() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let e = env(dir.path());
        {
            let clog = Clog::open(Arc::clone(&e))?;
            let gtx = GlobalTxId { node: 1, seq: 1 };
            clog.log_start(gtx, vec![1])?;
            clog.log_decision(gtx, true)?; // stabilized
        }
        // Adversary deletes the Clog wholesale to forget the decision.
        std::fs::remove_file(dir.path().join(CLOG_FILE))?;
        let err = Clog::open(e).unwrap_err();
        assert!(
            matches!(err, StoreError::Rollback(_)),
            "deleting a stabilized Clog must be detected, got {err:?}"
        );
        Ok(())
    }
}
