//! The client library: interactive transactions over a mutually
//! authenticated channel (§IV-A).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use treaty_crypto::{Key, MsgKind, TxMeta, WireCrypto};
use treaty_net::{EndpointConfig, EndpointId, Fabric, PendingReply, Rpc, RpcConfig};
use treaty_sim::Nanos;
use treaty_store::GlobalTxId;

use crate::messages::{
    decode, encode, req, ClientCommitReq, CommitResult, ObsSnapshotReply, Op, OpResult,
    SnapshotReadReply, SnapshotReadReq, SnapshotScanReply, SnapshotScanReq,
    SnapshotValidateReply, SnapshotValidateReq, WriteCmd,
};
use crate::shard::ShardMap;
use crate::{Result, TreatyError};

/// A Treaty client bound to one fabric endpoint.
///
/// The paper's clients run on separate machines behind a 1 Gb/s NIC; the
/// default [`client_net`] reflects that.
pub struct TreatyClient {
    rpc: Arc<Rpc>,
    client_id: u32,
    next_seq: AtomicU32,
    /// Key-space partitioning, needed only by the read-only snapshot path
    /// (which talks to shards directly, skipping the coordinator).
    shards: Option<ShardMap>,
}

impl std::fmt::Debug for TreatyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreatyClient")
            .field("client_id", &self.client_id)
            .finish_non_exhaustive()
    }
}

/// The paper's client network configuration: kernel sockets over the
/// secondary 1 Gb/s NIC.
pub fn client_net() -> EndpointConfig {
    EndpointConfig {
        transport: treaty_sim::Transport::KernelTcp,
        tee: treaty_sim::TeeMode::Native,
        link_gbps: 1,
    }
}

impl TreatyClient {
    /// Connects a client. `client_id` must be unique on the fabric (its
    /// endpoint is `client_id` itself), and is assumed already registered
    /// and authenticated with the CAS.
    pub fn connect(
        fabric: &Arc<Fabric>,
        client_id: u32,
        crypto: WireCrypto,
        network_key: Key,
        timeout: Nanos,
    ) -> Self {
        let rpc = Rpc::new(
            fabric,
            client_id,
            RpcConfig {
                endpoint: client_net(),
                crypto,
                key: network_key,
                cores: None,
                timeout,
            },
        );
        rpc.start();
        TreatyClient {
            rpc,
            client_id,
            next_seq: AtomicU32::new(1),
            shards: None,
        }
    }

    /// Attaches the cluster's shard map, enabling the read-only snapshot
    /// path ([`TreatyClient::begin_read_only`]).
    #[must_use]
    pub fn with_shard_map(mut self, shards: ShardMap) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The client's id / endpoint.
    pub fn id(&self) -> u32 {
        self.client_id
    }

    /// Begins an interactive transaction coordinated by `coordinator`.
    pub fn begin(&self, coordinator: EndpointId) -> DistTxn<'_> {
        let local = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Cluster-unique transaction sequence: client id ‖ local counter.
        let seq = ((self.client_id as u64) << 32) | local as u64;
        treaty_sim::obs::set_node(self.client_id);
        {
            let _txn = treaty_sim::obs::txn_scope(seq);
            treaty_sim::obs::instant("client.begin", &[("coordinator", u64::from(coordinator))]);
        }
        DistTxn {
            client: self,
            coordinator,
            seq,
            op_seq: 1,
            finished: false,
            buffered: Vec::new(),
            batching: true,
            begin_ts: if treaty_sim::runtime::in_fiber() {
                treaty_sim::runtime::now()
            } else {
                0
            },
        }
    }

    /// Begins a lock-free read-only transaction: reads go straight to the
    /// owning shards at their stable read timestamps — one round trip per
    /// shard, no coordinator, no 2PC state, and zero lock-table traffic.
    ///
    /// # Errors
    ///
    /// [`TreatyError::Rejected`] when no shard map was attached
    /// ([`TreatyClient::with_shard_map`]).
    pub fn begin_read_only(&self) -> Result<SnapshotTxn<'_>> {
        let shards = self
            .shards
            .clone()
            .ok_or_else(|| TreatyError::Rejected("read-only path needs a shard map".into()))?;
        let local = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let seq = ((self.client_id as u64) << 32) | local as u64;
        treaty_sim::obs::set_node(self.client_id);
        {
            let _txn = treaty_sim::obs::txn_scope(seq);
            treaty_sim::obs::instant("client.begin_read_only", &[]);
        }
        Ok(SnapshotTxn {
            client: self,
            shards,
            seq,
            op_seq: 1,
            pinned: HashMap::new(),
            validate_set: HashMap::new(),
            validate_spans: HashMap::new(),
        })
    }

    /// One-shot snapshot read of a key batch with the staleness/retry
    /// protocol built in: runs a read-only transaction (including the
    /// multi-shard validation round), and on a retryable rejection —
    /// stale timestamp, in-doubt prepare, failed validation — refreshes
    /// the snapshot and tries again, up to a bounded number of attempts.
    ///
    /// # Errors
    ///
    /// Network errors, or [`TreatyError::Rejected`] when the retry budget
    /// is exhausted (a pathologically write-hot key set).
    pub fn snapshot_read(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        const ATTEMPTS: u32 = 8;
        let mut last = String::new();
        for attempt in 0..ATTEMPTS {
            let mut txn = self.begin_read_only()?;
            match txn.get_many(keys) {
                Ok(values) => match txn.finish() {
                    Ok(()) => return Ok(values),
                    Err(e) if snapshot_retryable(&e) => last = e.to_string(),
                    Err(e) => return Err(e),
                },
                Err(e) if snapshot_retryable(&e) => last = e.to_string(),
                Err(e) => return Err(e),
            }
            treaty_sim::obs::counter_add("client.snapshot_retries", 1);
            if treaty_sim::runtime::in_fiber() {
                // Linear deterministic backoff: long enough for the
                // in-doubt prepare to decide, short enough to stay well
                // under a locking read's round-trip budget.
                treaty_sim::runtime::sleep((u64::from(attempt) + 1) * treaty_sim::MILLIS / 4);
            }
        }
        Err(TreatyError::Rejected(format!(
            "snapshot read gave up after {ATTEMPTS} attempts: {last}"
        )))
    }

    /// One-shot snapshot range scan with the staleness/retry protocol
    /// built in (the scan analogue of [`TreatyClient::snapshot_read`]):
    /// runs a read-only transaction — the scan fans out to every shard and
    /// the finish round validates the scanned spans — retrying on stale,
    /// in-doubt or failed-validation rejections up to a bounded number of
    /// attempts.
    ///
    /// # Errors
    ///
    /// Network errors, or [`TreatyError::Rejected`] when the retry budget
    /// is exhausted (a pathologically write-hot span).
    pub fn snapshot_scan(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        const ATTEMPTS: u32 = 8;
        let mut last = String::new();
        for attempt in 0..ATTEMPTS {
            let mut txn = self.begin_read_only()?;
            match txn.scan(start, end, limit) {
                Ok(entries) => match txn.finish() {
                    Ok(()) => return Ok(entries),
                    Err(e) if snapshot_retryable(&e) => last = e.to_string(),
                    Err(e) => return Err(e),
                },
                Err(e) if snapshot_retryable(&e) => last = e.to_string(),
                Err(e) => return Err(e),
            }
            treaty_sim::obs::counter_add("client.snapshot_retries", 1);
            if treaty_sim::runtime::in_fiber() {
                treaty_sim::runtime::sleep((u64::from(attempt) + 1) * treaty_sim::MILLIS / 4);
            }
        }
        Err(TreatyError::Rejected(format!(
            "snapshot scan gave up after {ATTEMPTS} attempts: {last}"
        )))
    }

    /// Fetches a live introspection snapshot from `node` (queue depths,
    /// stable frontier, backpressure, cache hit rates) — the data source
    /// behind the `treaty-top` cluster dashboard.
    ///
    /// # Errors
    ///
    /// Network errors, or [`TreatyError::Rejected`] on a malformed reply.
    pub fn obs_snapshot(&self, node: EndpointId) -> Result<ObsSnapshotReply> {
        let local = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let meta = TxMeta {
            node_id: self.client_id as u64,
            tx_id: ((self.client_id as u64) << 32) | local as u64,
            op_id: 1,
            kind: MsgKind::TxnGet,
        };
        let (_, bytes) = self
            .rpc
            .call(node, req::OBS_SNAPSHOT, &meta, &[])
            .map_err(|e| TreatyError::Net(e.to_string()))?;
        decode::<ObsSnapshotReply>(&bytes)
            .ok_or_else(|| TreatyError::Rejected("malformed obs snapshot reply".into()))
    }

    /// Disconnects.
    pub fn disconnect(&self) {
        self.rpc.stop();
    }
}

/// Whether a snapshot-read failure means "refresh the snapshot and retry"
/// (stale timestamp, in-doubt prepare, failed validation) rather than a
/// hard error.
fn snapshot_retryable(e: &TreatyError) -> bool {
    matches!(e, TreatyError::SnapshotRetry(_))
}

/// An interactive distributed transaction.
///
/// Created by [`TreatyClient::begin`]. Reads execute immediately on the
/// cluster (acquiring locks as they go); blind writes are deferred — they
/// append to a local buffer and cost nothing until a read must observe
/// them (which flushes the buffer in one [`req::CLIENT_OP_BATCH`]) or the
/// transaction commits (which ships the buffer in the
/// [`req::CLIENT_COMMIT`] payload, where the coordinator piggybacks each
/// shard's slice on its prepare message). [`DistTxn::commit`] runs the
/// secure 2PC.
pub struct DistTxn<'a> {
    client: &'a TreatyClient,
    coordinator: EndpointId,
    seq: u64,
    op_seq: u64,
    finished: bool,
    /// Deferred writes in issue order, not yet shipped to the coordinator.
    buffered: Vec<WriteCmd>,
    /// Deferred-write batching on (the default). The off position is the
    /// ablation: every put/delete goes back to an eager `CLIENT_OP` round
    /// trip, as before PR 10.
    batching: bool,
    /// Virtual time `begin` was called — the client-measured latency
    /// anchor reported on the `client.committed` trace instant.
    begin_ts: Nanos,
}

impl std::fmt::Debug for DistTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTxn")
            .field("gtx", &self.gtx())
            .finish_non_exhaustive()
    }
}

impl<'a> DistTxn<'a> {
    /// The transaction's global id.
    pub fn gtx(&self) -> GlobalTxId {
        GlobalTxId {
            node: self.coordinator as u64,
            seq: self.seq,
        }
    }

    fn meta(&mut self, kind: MsgKind) -> TxMeta {
        let op_id = self.op_seq;
        self.op_seq += 1;
        TxMeta {
            node_id: self.client.client_id as u64,
            tx_id: self.seq,
            op_id,
            kind,
        }
    }

    /// Tells the coordinator to drop the transaction after a client-side
    /// failure, so participants' locks are not leaked. Retried because the
    /// same lossy network that caused the failure may drop this too;
    /// rolling back an already-finished transaction is a no-op server-side.
    fn best_effort_rollback(&mut self) {
        for _ in 0..3 {
            let meta = self.meta(MsgKind::TxnAbort);
            if self
                .client
                .rpc
                .call(self.coordinator, req::CLIENT_ROLLBACK, &meta, &[])
                .is_ok()
            {
                return;
            }
        }
    }

    fn run_op_raw(&mut self, op: Op) -> Result<OpResult> {
        if self.finished {
            return Err(TreatyError::Rejected("transaction finished".into()));
        }
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span("client.op");
        let meta = self.meta(MsgKind::TxnPut);
        let call = self
            .client
            .rpc
            .call(self.coordinator, req::CLIENT_OP, &meta, &encode(&op));
        let (_, bytes) = match call {
            Ok(x) => x,
            Err(e) => {
                self.finished = true;
                self.best_effort_rollback();
                return Err(TreatyError::Net(e.to_string()));
            }
        };
        match decode::<OpResult>(&bytes) {
            Some(OpResult::Err { reason }) => {
                self.finished = true;
                Err(TreatyError::Aborted(self.gtx(), reason))
            }
            Some(result) => Ok(result),
            None => {
                self.finished = true;
                Err(TreatyError::Rejected("malformed coordinator reply".into()))
            }
        }
    }

    fn run_op(&mut self, op: Op) -> Result<Option<Vec<u8>>> {
        match self.run_op_raw(op)? {
            OpResult::Ok { value } => Ok(value),
            _ => Err(TreatyError::Rejected("unexpected reply shape".into())),
        }
    }

    /// Turns deferred-write batching off (the ablation): every put/delete
    /// reverts to an eager, individually-sealed `CLIENT_OP` round trip.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Ships the deferred write buffer to the coordinator in one sealed
    /// [`req::CLIENT_OP_BATCH`] message. A read that cannot be answered
    /// from the buffer calls this first, so it observes its own writes.
    fn flush_writes(&mut self) -> Result<()> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let writes = std::mem::take(&mut self.buffered);
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span_with(
            "client.flush_writes",
            &[("writes", writes.len() as u64)],
        );
        let meta = self.meta(MsgKind::TxnPut);
        let payload = encode(&ClientCommitReq { writes });
        let call = self
            .client
            .rpc
            .call(self.coordinator, req::CLIENT_OP_BATCH, &meta, &payload);
        let (_, bytes) = match call {
            Ok(x) => x,
            Err(e) => {
                self.finished = true;
                self.best_effort_rollback();
                return Err(TreatyError::Net(e.to_string()));
            }
        };
        match decode::<OpResult>(&bytes) {
            Some(OpResult::Err { reason }) => {
                self.finished = true;
                Err(TreatyError::Aborted(self.gtx(), reason))
            }
            Some(_) => Ok(()),
            None => {
                self.finished = true;
                Err(TreatyError::Rejected("malformed coordinator reply".into()))
            }
        }
    }

    /// Transactional read ([`TxnGet`](MsgKind::TxnGet)). A key the
    /// transaction has a buffered write for is answered straight from the
    /// buffer (read-your-writes, zero round trips); any other read first
    /// flushes the buffer so the cluster-side transaction observes every
    /// write issued before it.
    ///
    /// # Errors
    ///
    /// [`TreatyError::Aborted`] if the operation aborted the transaction
    /// (lock timeout, conflict), [`TreatyError::Net`] on network failure.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if self.finished {
            return Err(TreatyError::Rejected("transaction finished".into()));
        }
        // Last buffered write to this key wins — including a buffered
        // delete, which reads back as absent.
        if let Some(cmd) = self.buffered.iter().rev().find(|c| c.key == key) {
            treaty_sim::obs::counter_add("client.buffer_read_hits", 1);
            return Ok(cmd.value.clone());
        }
        self.flush_writes()?;
        self.run_op(Op::Get { key: key.to_vec() })
    }

    /// Transactional write: appended to the local write buffer and free
    /// until a read must observe it or the transaction commits.
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.batching {
            if self.finished {
                return Err(TreatyError::Rejected("transaction finished".into()));
            }
            treaty_sim::obs::counter_add("client.buffered_writes", 1);
            self.buffered.push(WriteCmd::put(key, value));
            return Ok(());
        }
        self.run_op(Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        Ok(())
    }

    /// Transactional delete — buffered exactly like [`DistTxn::put`].
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        if self.batching {
            if self.finished {
                return Err(TreatyError::Rejected("transaction finished".into()));
            }
            treaty_sim::obs::counter_add("client.buffered_writes", 1);
            self.buffered.push(WriteCmd::delete(key));
            return Ok(());
        }
        self.run_op(Op::Delete { key: key.to_vec() })?;
        Ok(())
    }

    /// Transactional range scan of `[start, end)`, serializable via
    /// next-key locking on every shard (no phantoms). Returns up to
    /// `limit` pairs in ascending key order (`0` = unbounded); the
    /// coordinator fans the span out to every shard and merges.
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // A span can overlap any buffered key: flush conservatively so the
        // scan observes this transaction's own writes.
        self.flush_writes()?;
        match self.run_op_raw(Op::Scan {
            start: start.to_vec(),
            end: end.to_vec(),
            limit: limit as u64,
        })? {
            OpResult::Entries { entries } => Ok(entries),
            _ => Err(TreatyError::Rejected("unexpected scan reply shape".into())),
        }
    }

    /// Transactional range delete of `[start, end)`: every shard buffers a
    /// multi-version range tombstone over its slice, visible (to this
    /// transaction immediately, to others at commit) as the whole span
    /// being deleted.
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn delete_range(&mut self, start: &[u8], end: &[u8]) -> Result<()> {
        // Buffered writes inside the span must land first so the tombstone
        // shadows them in issue order.
        self.flush_writes()?;
        self.run_op(Op::RangeDelete {
            start: start.to_vec(),
            end: end.to_vec(),
        })?;
        Ok(())
    }

    /// Commits via the secure 2PC. On success the transaction is durable
    /// and — under the stabilization profile — rollback-protected.
    ///
    /// # Errors
    ///
    /// [`TreatyError::Aborted`] with the abort reason, or network errors.
    pub fn commit(mut self) -> Result<()> {
        if self.finished {
            return Err(TreatyError::Rejected("transaction finished".into()));
        }
        self.finished = true;
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span("client.commit");
        // Ship the deferred writes with the commit itself: the coordinator
        // piggybacks each shard's slice on its prepare message, so a
        // write-only transaction pays one round trip per shard, total.
        let writes = std::mem::take(&mut self.buffered);
        let payload = if writes.is_empty() {
            Vec::new()
        } else {
            treaty_sim::obs::counter_add("client.shipped_commit_writes", writes.len() as u64);
            encode(&ClientCommitReq { writes })
        };
        let meta = self.meta(MsgKind::TxnCommit);
        let call = self
            .client
            .rpc
            .call(self.coordinator, req::CLIENT_COMMIT, &meta, &payload);
        let (_, bytes) = match call {
            Ok(x) => x,
            Err(e) => {
                // The outcome is ambiguous (classic 2PC client ambiguity);
                // the rollback below is a no-op if the commit already won.
                self.best_effort_rollback();
                return Err(TreatyError::Net(e.to_string()));
            }
        };
        match decode::<CommitResult>(&bytes) {
            Some(CommitResult::Committed) => {
                // Emitted inside the client.commit span: the attribution
                // walker keys committed transactions (and their measured
                // begin->ack latency) off this instant.
                let elapsed = if treaty_sim::runtime::in_fiber() {
                    treaty_sim::runtime::now().saturating_sub(self.begin_ts)
                } else {
                    0
                };
                treaty_sim::obs::instant("client.committed", &[("elapsed_ns", elapsed)]);
                Ok(())
            }
            Some(CommitResult::Aborted { reason }) => Err(TreatyError::Aborted(self.gtx(), reason)),
            None => Err(TreatyError::Rejected("malformed commit reply".into())),
        }
    }

    /// Rolls the transaction back.
    ///
    /// # Errors
    ///
    /// Network errors only; rollback itself cannot fail.
    pub fn rollback(mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        let meta = self.meta(MsgKind::TxnAbort);
        self.client
            .rpc
            .call(self.coordinator, req::CLIENT_ROLLBACK, &meta, &[])
            .map_err(|e| TreatyError::Net(e.to_string()))?;
        Ok(())
    }
}

/// A lock-free read-only transaction ([`TreatyClient::begin_read_only`]).
///
/// Reads go straight to the owning shards' MVCC read paths at a snapshot
/// timestamp pinned lazily per shard (each shard pins its own stable read
/// timestamp on first contact). Because shards version independently, a
/// transaction that touched more than one shard must [`SnapshotTxn::finish`]
/// with a validation round proving no commit or in-flight prepare slipped
/// between its per-shard snapshots; single-shard transactions are
/// consistent by construction and finish for free.
///
/// No server-side state exists for this transaction — dropping it without
/// finishing leaks nothing (there are no locks to leak).
pub struct SnapshotTxn<'a> {
    client: &'a TreatyClient,
    shards: ShardMap,
    seq: u64,
    op_seq: u64,
    /// Snapshot timestamp pinned at each shard touched so far.
    pinned: HashMap<EndpointId, u64>,
    /// Keys read per shard, for the validation round.
    validate_set: HashMap<EndpointId, Vec<Vec<u8>>>,
    /// Spans scanned per shard, validated wholesale at finish (per-key
    /// validation cannot see keys inserted into a span — the phantom).
    validate_spans: HashMap<EndpointId, Vec<(Vec<u8>, Vec<u8>)>>,
}

impl std::fmt::Debug for SnapshotTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotTxn")
            .field("seq", &self.seq)
            .field("shards_touched", &self.pinned.len())
            .finish_non_exhaustive()
    }
}

impl SnapshotTxn<'_> {
    fn meta(&mut self) -> TxMeta {
        let op_id = self.op_seq;
        self.op_seq += 1;
        TxMeta {
            node_id: self.client.client_id as u64,
            tx_id: self.seq,
            op_id,
            kind: MsgKind::TxnGet,
        }
    }

    /// Reads one key at the snapshot.
    ///
    /// # Errors
    ///
    /// See [`SnapshotTxn::get_many`].
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut values = self.get_many(std::slice::from_ref(&key.to_vec()))?;
        Ok(values.pop().flatten())
    }

    /// Reads a key batch at the snapshot: keys are grouped by owning
    /// shard and each shard is asked once, with the requests in flight
    /// concurrently — one round trip per shard touched.
    ///
    /// # Errors
    ///
    /// [`TreatyError::SnapshotRetry`] when a shard rejects the snapshot
    /// (stale timestamp or in-doubt prepare — the caller retries with a
    /// fresh transaction, which [`TreatyClient::snapshot_read`]
    /// automates), or network errors.
    pub fn get_many(&mut self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span =
            treaty_sim::obs::span_with("client.snapshot_read", &[("keys", keys.len() as u64)]);
        // Group by owning shard, remembering where each value goes.
        let mut by_shard: HashMap<EndpointId, (Vec<Vec<u8>>, Vec<usize>)> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let owner = self.shards.owner(key);
            let entry = by_shard.entry(owner).or_default();
            entry.0.push(key.clone());
            entry.1.push(i);
        }
        // Fan out: every shard's request leaves in one burst.
        let mut pending: Vec<(EndpointId, Vec<usize>, PendingReply)> = Vec::new();
        for (owner, (shard_keys, slots)) in by_shard {
            // `None` until this shard pins: an explicit option rather than
            // a `0` sentinel, so a shard whose stable frontier is 0 pins
            // exactly once like any other (two reads in one transaction
            // must never re-pin the same shard at a newer timestamp).
            let req_msg = SnapshotReadReq {
                ts: self.pinned.get(&owner).copied(),
                keys: shard_keys,
            };
            let meta = self.meta();
            pending.push((
                owner,
                slots,
                self.client.rpc.enqueue_request(
                    owner,
                    req::SNAPSHOT_READ,
                    &meta,
                    &encode(&req_msg),
                ),
            ));
        }
        self.client.rpc.tx_burst();
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        let mut reject: Option<TreatyError> = None;
        for (owner, slots, p) in pending {
            let (_, bytes) = match p.wait() {
                Ok(x) => x,
                Err(e) => return Err(TreatyError::Net(e.to_string())),
            };
            match decode::<SnapshotReadReply>(&bytes) {
                Some(SnapshotReadReply::Values { ts, values }) => {
                    if values.len() != slots.len() {
                        return Err(TreatyError::Rejected(
                            "malformed snapshot reply: wrong arity".into(),
                        ));
                    }
                    self.pinned.insert(owner, ts);
                    let validate = self.validate_set.entry(owner).or_default();
                    for (slot, value) in slots.iter().zip(values) {
                        validate.push(keys[*slot].clone());
                        out[*slot] = value;
                    }
                }
                Some(SnapshotReadReply::Stale { stable_ts }) => {
                    reject.get_or_insert(TreatyError::SnapshotRetry(format!(
                        "stale at shard {owner} (stable {stable_ts})"
                    )));
                }
                Some(SnapshotReadReply::InDoubt { .. }) => {
                    reject.get_or_insert(TreatyError::SnapshotRetry(format!(
                        "in doubt at shard {owner}"
                    )));
                }
                None => {
                    return Err(TreatyError::Rejected("malformed snapshot reply".into()));
                }
            }
        }
        // Every reply is drained before a rejection surfaces, so no
        // pending RPC is orphaned mid-burst.
        match reject {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Scans `[start, end)` at the snapshot. Keys are hash-partitioned, so
    /// the span fans out to every shard (each pinning its stable timestamp
    /// on first contact) and the sorted, disjoint slices merge into one
    /// result before the limit applies. The span joins the validation set:
    /// [`SnapshotTxn::finish`] proves no key in it — including keys
    /// *inserted* after the scan — changed past the snapshot.
    ///
    /// # Errors
    ///
    /// See [`SnapshotTxn::get_many`].
    pub fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span =
            treaty_sim::obs::span_with("client.snapshot_scan", &[("limit", limit as u64)]);
        let nodes: Vec<EndpointId> = self.shards.nodes().to_vec();
        let mut pending: Vec<(EndpointId, PendingReply)> = Vec::with_capacity(nodes.len());
        for &owner in &nodes {
            let req_msg = SnapshotScanReq {
                ts: self.pinned.get(&owner).copied(),
                start: start.to_vec(),
                end: end.to_vec(),
                limit: limit as u64,
            };
            let meta = self.meta();
            pending.push((
                owner,
                self.client.rpc.enqueue_request(
                    owner,
                    req::SNAPSHOT_SCAN,
                    &meta,
                    &encode(&req_msg),
                ),
            ));
        }
        self.client.rpc.tx_burst();
        let mut slices: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(nodes.len());
        let mut reject: Option<TreatyError> = None;
        for (owner, p) in pending {
            let (_, bytes) = match p.wait() {
                Ok(x) => x,
                Err(e) => return Err(TreatyError::Net(e.to_string())),
            };
            match decode::<SnapshotScanReply>(&bytes) {
                Some(SnapshotScanReply::Entries { ts, entries }) => {
                    self.pinned.insert(owner, ts);
                    self.validate_spans
                        .entry(owner)
                        .or_default()
                        .push((start.to_vec(), end.to_vec()));
                    slices.push(entries);
                }
                Some(SnapshotScanReply::Stale { stable_ts }) => {
                    reject.get_or_insert(TreatyError::SnapshotRetry(format!(
                        "stale at shard {owner} (stable {stable_ts})"
                    )));
                }
                Some(SnapshotScanReply::InDoubt) => {
                    reject.get_or_insert(TreatyError::SnapshotRetry(format!(
                        "in doubt at shard {owner}"
                    )));
                }
                None => {
                    return Err(TreatyError::Rejected(
                        "malformed snapshot scan reply".into(),
                    ));
                }
            }
        }
        if let Some(e) = reject {
            return Err(e);
        }
        // Shards own disjoint key sets: a true k-way merge over the sorted
        // slices, early-exiting at the limit.
        Ok(crate::node::merge_sorted_slices(slices, limit))
    }

    /// Finishes the transaction. Single-shard snapshots are consistent by
    /// construction; multi-shard snapshots run one validation round per
    /// shard (again concurrently) proving no commit or prepare slipped
    /// between the per-shard timestamps — per-key for point reads, span
    /// checks for scans.
    ///
    /// # Errors
    ///
    /// [`TreatyError::SnapshotRetry`] when validation fails (retry with
    /// a fresh snapshot), or network errors.
    pub fn finish(mut self) -> Result<()> {
        if self.pinned.len() <= 1 {
            return Ok(());
        }
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span_with(
            "client.snapshot_validate",
            &[("shards", self.pinned.len() as u64)],
        );
        let mut work: HashMap<EndpointId, (Vec<Vec<u8>>, Vec<(Vec<u8>, Vec<u8>)>)> =
            HashMap::new();
        for (owner, keys) in self.validate_set.drain() {
            work.entry(owner).or_default().0 = keys;
        }
        for (owner, spans) in self.validate_spans.drain() {
            work.entry(owner).or_default().1 = spans;
        }
        let mut pending: Vec<(EndpointId, PendingReply)> = Vec::new();
        for (owner, (keys, spans)) in work {
            let Some(&ts) = self.pinned.get(&owner) else {
                continue;
            };
            let req_msg = SnapshotValidateReq { ts, keys, spans };
            let meta = self.meta();
            pending.push((
                owner,
                self.client.rpc.enqueue_request(
                    owner,
                    req::SNAPSHOT_VALIDATE,
                    &meta,
                    &encode(&req_msg),
                ),
            ));
        }
        self.client.rpc.tx_burst();
        let mut reject: Option<TreatyError> = None;
        for (owner, p) in pending {
            let (_, bytes) = match p.wait() {
                Ok(x) => x,
                Err(e) => return Err(TreatyError::Net(e.to_string())),
            };
            match decode::<SnapshotValidateReply>(&bytes) {
                Some(SnapshotValidateReply::Ok) => {}
                Some(SnapshotValidateReply::Fail { .. }) => {
                    reject.get_or_insert(TreatyError::SnapshotRetry(format!(
                        "validation failed at shard {owner}"
                    )));
                }
                None => {
                    return Err(TreatyError::Rejected(
                        "malformed snapshot validate reply".into(),
                    ));
                }
            }
        }
        match reject {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
