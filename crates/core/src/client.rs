//! The client library: interactive transactions over a mutually
//! authenticated channel (§IV-A).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use treaty_crypto::{Key, MsgKind, TxMeta, WireCrypto};
use treaty_net::{EndpointConfig, EndpointId, Fabric, Rpc, RpcConfig};
use treaty_sim::Nanos;
use treaty_store::GlobalTxId;

use crate::messages::{decode, encode, req, CommitResult, Op, OpResult};
use crate::{Result, TreatyError};

/// A Treaty client bound to one fabric endpoint.
///
/// The paper's clients run on separate machines behind a 1 Gb/s NIC; the
/// default [`client_net`] reflects that.
pub struct TreatyClient {
    rpc: Arc<Rpc>,
    client_id: u32,
    next_seq: AtomicU32,
}

impl std::fmt::Debug for TreatyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreatyClient")
            .field("client_id", &self.client_id)
            .finish_non_exhaustive()
    }
}

/// The paper's client network configuration: kernel sockets over the
/// secondary 1 Gb/s NIC.
pub fn client_net() -> EndpointConfig {
    EndpointConfig {
        transport: treaty_sim::Transport::KernelTcp,
        tee: treaty_sim::TeeMode::Native,
        link_gbps: 1,
    }
}

impl TreatyClient {
    /// Connects a client. `client_id` must be unique on the fabric (its
    /// endpoint is `client_id` itself), and is assumed already registered
    /// and authenticated with the CAS.
    pub fn connect(
        fabric: &Arc<Fabric>,
        client_id: u32,
        crypto: WireCrypto,
        network_key: Key,
        timeout: Nanos,
    ) -> Self {
        let rpc = Rpc::new(
            fabric,
            client_id,
            RpcConfig {
                endpoint: client_net(),
                crypto,
                key: network_key,
                cores: None,
                timeout,
            },
        );
        rpc.start();
        TreatyClient {
            rpc,
            client_id,
            next_seq: AtomicU32::new(1),
        }
    }

    /// The client's id / endpoint.
    pub fn id(&self) -> u32 {
        self.client_id
    }

    /// Begins an interactive transaction coordinated by `coordinator`.
    pub fn begin(&self, coordinator: EndpointId) -> DistTxn<'_> {
        let local = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Cluster-unique transaction sequence: client id ‖ local counter.
        let seq = ((self.client_id as u64) << 32) | local as u64;
        treaty_sim::obs::set_node(self.client_id);
        {
            let _txn = treaty_sim::obs::txn_scope(seq);
            treaty_sim::obs::instant("client.begin", &[("coordinator", u64::from(coordinator))]);
        }
        DistTxn {
            client: self,
            coordinator,
            seq,
            op_seq: 1,
            finished: false,
        }
    }

    /// Disconnects.
    pub fn disconnect(&self) {
        self.rpc.stop();
    }
}

/// An interactive distributed transaction.
///
/// Created by [`TreatyClient::begin`]; ops execute immediately on the
/// cluster (acquiring locks as they go), and [`DistTxn::commit`] runs the
/// secure 2PC.
pub struct DistTxn<'a> {
    client: &'a TreatyClient,
    coordinator: EndpointId,
    seq: u64,
    op_seq: u64,
    finished: bool,
}

impl std::fmt::Debug for DistTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTxn")
            .field("gtx", &self.gtx())
            .finish_non_exhaustive()
    }
}

impl<'a> DistTxn<'a> {
    /// The transaction's global id.
    pub fn gtx(&self) -> GlobalTxId {
        GlobalTxId {
            node: self.coordinator as u64,
            seq: self.seq,
        }
    }

    fn meta(&mut self, kind: MsgKind) -> TxMeta {
        let op_id = self.op_seq;
        self.op_seq += 1;
        TxMeta {
            node_id: self.client.client_id as u64,
            tx_id: self.seq,
            op_id,
            kind,
        }
    }

    /// Tells the coordinator to drop the transaction after a client-side
    /// failure, so participants' locks are not leaked. Retried because the
    /// same lossy network that caused the failure may drop this too;
    /// rolling back an already-finished transaction is a no-op server-side.
    fn best_effort_rollback(&mut self) {
        for _ in 0..3 {
            let meta = self.meta(MsgKind::TxnAbort);
            if self
                .client
                .rpc
                .call(self.coordinator, req::CLIENT_ROLLBACK, &meta, &[])
                .is_ok()
            {
                return;
            }
        }
    }

    fn run_op(&mut self, op: Op) -> Result<Option<Vec<u8>>> {
        if self.finished {
            return Err(TreatyError::Rejected("transaction finished".into()));
        }
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span("client.op");
        let meta = self.meta(MsgKind::TxnPut);
        let call = self
            .client
            .rpc
            .call(self.coordinator, req::CLIENT_OP, &meta, &encode(&op));
        let (_, bytes) = match call {
            Ok(x) => x,
            Err(e) => {
                self.finished = true;
                self.best_effort_rollback();
                return Err(TreatyError::Net(e.to_string()));
            }
        };
        match decode::<OpResult>(&bytes) {
            Some(OpResult::Ok { value }) => Ok(value),
            Some(OpResult::Err { reason }) => {
                self.finished = true;
                Err(TreatyError::Aborted(self.gtx(), reason))
            }
            None => {
                self.finished = true;
                Err(TreatyError::Rejected("malformed coordinator reply".into()))
            }
        }
    }

    /// Transactional read ([`TxnGet`](MsgKind::TxnGet)).
    ///
    /// # Errors
    ///
    /// [`TreatyError::Aborted`] if the operation aborted the transaction
    /// (lock timeout, conflict), [`TreatyError::Net`] on network failure.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.run_op(Op::Get { key: key.to_vec() })
    }

    /// Transactional write.
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.run_op(Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        Ok(())
    }

    /// Transactional delete.
    ///
    /// # Errors
    ///
    /// See [`DistTxn::get`].
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.run_op(Op::Delete { key: key.to_vec() })?;
        Ok(())
    }

    /// Commits via the secure 2PC. On success the transaction is durable
    /// and — under the stabilization profile — rollback-protected.
    ///
    /// # Errors
    ///
    /// [`TreatyError::Aborted`] with the abort reason, or network errors.
    pub fn commit(mut self) -> Result<()> {
        if self.finished {
            return Err(TreatyError::Rejected("transaction finished".into()));
        }
        self.finished = true;
        let _txn = treaty_sim::obs::txn_scope(self.seq);
        let _span = treaty_sim::obs::span("client.commit");
        let meta = self.meta(MsgKind::TxnCommit);
        let call = self
            .client
            .rpc
            .call(self.coordinator, req::CLIENT_COMMIT, &meta, &[]);
        let (_, bytes) = match call {
            Ok(x) => x,
            Err(e) => {
                // The outcome is ambiguous (classic 2PC client ambiguity);
                // the rollback below is a no-op if the commit already won.
                self.best_effort_rollback();
                return Err(TreatyError::Net(e.to_string()));
            }
        };
        match decode::<CommitResult>(&bytes) {
            Some(CommitResult::Committed) => Ok(()),
            Some(CommitResult::Aborted { reason }) => Err(TreatyError::Aborted(self.gtx(), reason)),
            None => Err(TreatyError::Rejected("malformed commit reply".into())),
        }
    }

    /// Rolls the transaction back.
    ///
    /// # Errors
    ///
    /// Network errors only; rollback itself cannot fail.
    pub fn rollback(mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        let meta = self.meta(MsgKind::TxnAbort);
        self.client
            .rpc
            .call(self.coordinator, req::CLIENT_ROLLBACK, &meta, &[])
            .map_err(|e| TreatyError::Net(e.to_string()))?;
        Ok(())
    }
}
