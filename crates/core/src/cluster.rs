//! Cluster assembly: CAS trust bootstrap, trusted counter protection
//! group, node startup, crash/restart for the failure tests.

use std::path::PathBuf;
use std::sync::Arc;

use treaty_cas::{bootstrap_cluster, ClusterConfig, Las};
use treaty_counter::{CounterBackend, NullBackend, RoteGroup, RoteReplica};
use treaty_crypto::{Key, KeyHierarchy, WireCrypto};
use treaty_net::{EndpointConfig, EndpointId, Fabric};
use treaty_sched::CorePool;
use treaty_sim::{CostModel, SecurityProfile, Transport};
use treaty_store::env::{EngineConfig, Env};
use treaty_store::{SharedNullEngine, TreatyStore, TxnEngine, TxnMode};

use crate::client::TreatyClient;
use crate::node::{NodeOptions, RecoveryOutcome, TreatyNode};
use crate::shard::ShardMap;
use crate::{Result, TreatyError};

/// First fabric endpoint for server nodes.
pub const NODE_BASE: EndpointId = 1;
/// First fabric endpoint for trusted counter replicas.
pub const COUNTER_BASE: EndpointId = 1000;
/// First fabric endpoint for per-node counter clients.
pub const COUNTER_CLIENT_BASE: EndpointId = 2000;
/// First fabric endpoint for clients.
pub const CLIENT_BASE: EndpointId = 5000;

/// Cluster construction options.
#[derive(Clone)]
pub struct ClusterOptions {
    /// Number of Treaty nodes (the paper uses 3).
    pub nodes: usize,
    /// Security profile of the system variant under test.
    pub profile: SecurityProfile,
    /// Cost model.
    pub costs: CostModel,
    /// Concurrency control for node-local transactions.
    pub txn_mode: TxnMode,
    /// `false` runs the storage-less 2PC of §VIII-B (NullEngine, no Clog).
    pub durable: bool,
    /// CPU cores per node (paper testbed: 8).
    pub cores_per_node: u32,
    /// Trusted counter protection group size.
    pub counter_replicas: usize,
    /// Engine sizing.
    pub engine_config: EngineConfig,
    /// Directory holding one subdirectory per node.
    pub base_dir: PathBuf,
    /// Master secret / determinism seed.
    pub seed: u64,
    /// Deliver phase-2 decisions inline before acking clients (the
    /// `--sync-decisions` ablation). Default `false`: pipelined.
    pub sync_decisions: bool,
}

impl ClusterOptions {
    /// Paper-like defaults for the given profile, storing under `base_dir`.
    pub fn new(profile: SecurityProfile, base_dir: PathBuf) -> Self {
        ClusterOptions {
            nodes: 3,
            profile,
            costs: CostModel::default(),
            txn_mode: TxnMode::Pessimistic,
            durable: true,
            cores_per_node: 8,
            counter_replicas: 3,
            engine_config: EngineConfig::default(),
            base_dir,
            seed: 42,
            sync_decisions: false,
        }
    }
}

/// Converts a profile to the wire protection level.
pub fn wire_crypto(profile: &SecurityProfile) -> WireCrypto {
    if profile.encryption {
        WireCrypto::Full
    } else if profile.authentication {
        WireCrypto::AuthOnly
    } else {
        WireCrypto::Plain
    }
}

struct NodeSlot {
    node: Option<Arc<TreatyNode>>,
    store: Option<TreatyStore>,
    env: Option<Arc<Env>>,
    cores: Arc<CorePool>,
}

/// A running Treaty cluster (fabric + CAS + counter group + nodes).
pub struct Cluster {
    fabric: Arc<Fabric>,
    options: ClusterOptions,
    keys: KeyHierarchy,
    shard_map: ShardMap,
    slots: Vec<NodeSlot>,
    replicas: Vec<Arc<RoteReplica>>,
    lases: Vec<Las>,
    next_client: std::sync::atomic::AtomicU32,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Boots a cluster: attests every node through the CAS/LAS chain,
    /// starts the trusted counter protection group (when stabilizing) and
    /// every Treaty node. Must run inside the simulation runtime.
    ///
    /// # Errors
    ///
    /// Propagates store/Clog recovery failures.
    ///
    /// # Panics
    ///
    /// Panics if attestation fails (impossible with the honest roots used
    /// here) or the base directory is unusable.
    pub fn start(options: ClusterOptions) -> Result<Self> {
        let fabric = Fabric::new(options.costs.clone(), options.seed);
        let node_endpoints: Vec<u32> = (0..options.nodes).map(|i| NODE_BASE + i as u32).collect();
        let counter_endpoints: Vec<u32> = (0..options.counter_replicas)
            .map(|i| COUNTER_BASE + i as u32)
            .collect();

        // Distributed trust establishment (§VI).
        let master = Key::from_bytes([options.seed as u8; 32]);
        let config = ClusterConfig {
            node_endpoints: node_endpoints.clone(),
            counter_replicas: counter_endpoints.clone(),
            shard_seed: options.seed,
        };
        let machines: Vec<String> = (0..options.nodes).map(|i| format!("machine-{i}")).collect();
        let machine_refs: Vec<&str> = machines.iter().map(|s| s.as_str()).collect();
        let (_ias, cas, lases) = bootstrap_cluster(master, config, &machine_refs);

        // Counter protection group (only consulted under stabilization,
        // but always present — like the paper's deployment).
        let keys = {
            let quote =
                lases[0].quote_instance(&treaty_cas::node_measurement(), b"bootstrap".to_vec());
            cas.register_node(node_endpoints[0], &quote)
                .expect("bootstrap attestation")
                .keys
        };
        let replicas: Vec<Arc<RoteReplica>> = if options.durable {
            std::fs::create_dir_all(&options.base_dir).expect("cluster base dir");
            counter_endpoints
                .iter()
                .map(|&e| {
                    RoteReplica::start(&fabric, e, keys.counter, keys.sealing, &options.base_dir)
                })
                .collect()
        } else {
            Vec::new()
        };

        let shard_map = ShardMap::new(node_endpoints.clone(), options.seed);
        let mut cluster = Cluster {
            fabric,
            keys,
            shard_map,
            slots: Vec::new(),
            replicas,
            lases,
            next_client: std::sync::atomic::AtomicU32::new(CLIENT_BASE),
            options,
        };

        for i in 0..cluster.options.nodes {
            let cores = Arc::new(CorePool::new(cluster.options.cores_per_node));
            cluster.slots.push(NodeSlot {
                node: None,
                store: None,
                env: None,
                cores,
            });
            cluster.boot_node(i)?;
        }
        Ok(cluster)
    }

    fn node_env(&self, idx: usize) -> Arc<Env> {
        let options = &self.options;
        let backend: Arc<dyn CounterBackend> = if options.profile.stabilization {
            RoteGroup::connect(
                &self.fabric,
                COUNTER_CLIENT_BASE + idx as u32,
                self.keys.counter,
                (0..options.counter_replicas)
                    .map(|i| COUNTER_BASE + i as u32)
                    .collect(),
                2 * treaty_sim::MILLIS,
            )
        } else {
            NullBackend::new()
        };
        let enclave = Arc::new(treaty_tee::Enclave::new(options.profile.tee));
        let block_cache = treaty_store::BlockCache::new_shared(
            Arc::clone(&enclave),
            options.engine_config.block_cache_bytes as u64,
        );
        Arc::new(Env {
            profile: options.profile,
            costs: options.costs.clone(),
            enclave,
            vault: treaty_tee::HostVault::new(),
            cores: Some(Arc::clone(&self.slots[idx].cores)),
            keys: self.keys,
            backend,
            dir: options.base_dir.join(format!("node-{idx}")),
            config: options.engine_config.clone(),
            block_cache,
            read_stats: treaty_store::ReadAccelStats::default(),
        })
    }

    fn boot_node(&mut self, idx: usize) -> Result<()> {
        let options = self.options.clone();
        let endpoint = NODE_BASE + idx as u32;
        // If a fault-injection plan crashed this node, mark it alive again
        // before recovery runs, or its fibers would keep unwinding.
        treaty_sim::crashpoint::revive_node(endpoint);

        // Re-attestation through the LAS (no IAS round, §VI).
        let machine = idx % self.lases.len();
        let quote = self.lases[machine].quote_instance(
            &treaty_cas::node_measurement(),
            endpoint.to_le_bytes().to_vec(),
        );
        // The quote is validated by construction here; a production rollout
        // would round-trip through the CAS (see treaty-cas tests).
        let _ = quote;

        let (engine, env): (Arc<dyn TxnEngine>, Option<Arc<Env>>) = if options.durable {
            let env = match &self.slots[idx].env {
                Some(env) => Arc::clone(env),
                None => {
                    let env = self.node_env(idx);
                    self.slots[idx].env = Some(Arc::clone(&env));
                    env
                }
            };
            let store = TreatyStore::open(Arc::clone(&env)).map_err(TreatyError::from)?;
            self.slots[idx].store = Some(store.clone());
            (Arc::new(store), Some(env))
        } else {
            (Arc::new(SharedNullEngine::new()), None)
        };

        let node = TreatyNode::start(
            &self.fabric,
            engine,
            NodeOptions {
                endpoint,
                net: EndpointConfig {
                    transport: Transport::Dpdk,
                    tee: options.profile.tee,
                    link_gbps: 40,
                },
                crypto: wire_crypto(&options.profile),
                network_key: self.keys.network,
                shard_map: self.shard_map.clone(),
                cores: Some(Arc::clone(&self.slots[idx].cores)),
                env,
                txn_mode: options.txn_mode,
                timeout: treaty_net::DEFAULT_RPC_TIMEOUT,
                sync_decisions: options.sync_decisions,
            },
        )
        .map_err(TreatyError::from)?;
        self.slots[idx].node = Some(node);
        Ok(())
    }

    /// The fabric (adversary control, capture).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Node endpoints in shard order.
    pub fn node_endpoints(&self) -> Vec<EndpointId> {
        (0..self.slots.len())
            .map(|i| NODE_BASE + i as u32)
            .collect()
    }

    /// A running node.
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed.
    pub fn node(&self, idx: usize) -> &Arc<TreatyNode> {
        self.slots[idx].node.as_ref().expect("node is crashed")
    }

    /// The node's storage engine (durable clusters only).
    pub fn store(&self, idx: usize) -> Option<&TreatyStore> {
        self.slots[idx].store.as_ref()
    }

    /// The node's environment, if the node has been started with storage.
    /// Exposes the host vault and enclave for adversarial inspection in
    /// security tests (what an attacker with host-memory access sees).
    pub fn env(&self, idx: usize) -> Option<&Arc<Env>> {
        self.slots[idx].env.as_ref()
    }

    /// The cluster-wide key hierarchy (as provisioned by the CAS). Tests
    /// use this to scan untrusted memory for key-material leakage.
    pub fn keys(&self) -> &KeyHierarchy {
        &self.keys
    }

    /// Connects a new client (auto-assigned unique endpoint).
    pub fn client(&self) -> TreatyClient {
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        TreatyClient::connect(
            &self.fabric,
            id,
            wire_crypto(&self.options.profile),
            self.keys.network,
            treaty_net::DEFAULT_RPC_TIMEOUT,
        )
        .with_shard_map(self.shard_map.clone())
    }

    /// Crashes node `idx`: it stops serving and loses all volatile state.
    /// Persistent files survive.
    pub fn crash_node(&mut self, idx: usize) {
        if let Some(node) = self.slots[idx].node.take() {
            node.stop();
        }
        self.slots[idx].store = None;
    }

    /// Restarts a crashed node: storage recovery (MANIFEST → WAL → Clog),
    /// re-attestation, then serving resumes. Call
    /// [`Cluster::resolve_recovered`] afterwards to finish in-flight 2PC.
    ///
    /// # Errors
    ///
    /// Surfaces recovery failures — including detected rollback/fork
    /// attacks, which refuse to start the node.
    pub fn restart_node(&mut self, idx: usize) -> Result<()> {
        self.boot_node(idx)
    }

    /// Runs distributed recovery resolution on every running node and
    /// returns the summed [`RecoveryOutcome`]. A non-zero `failed` count
    /// means some transactions are still undecided — run another pass once
    /// the underlying fault (e.g. an unreachable counter group) clears.
    pub fn resolve_recovered(&self) -> RecoveryOutcome {
        let mut totals = RecoveryOutcome::default();
        for slot in &self.slots {
            if let Some(node) = &slot.node {
                totals += node.resolve_recovered();
            }
        }
        totals
    }

    /// Sum of committed/aborted transactions over all coordinators.
    pub fn totals(&self) -> (u64, u64) {
        let mut committed = 0;
        let mut aborted = 0;
        for slot in &self.slots {
            if let Some(node) = &slot.node {
                let s = node.stats();
                committed += s.committed;
                aborted += s.aborted;
            }
        }
        (committed, aborted)
    }

    /// Stops everything (counter replicas included). Queued phase-2
    /// decisions and background store maintenance are drained first, so
    /// a graceful shutdown leaves no participant waiting on a decision
    /// and no flush backlog behind.
    pub fn shutdown(&mut self) {
        for slot in &self.slots {
            if let Some(node) = &slot.node {
                node.drain_decisions();
            }
            if let Some(store) = &slot.store {
                let _ = store.drain_maintenance();
            }
        }
        for i in 0..self.slots.len() {
            self.crash_node(i);
        }
        for r in &self.replicas {
            r.stop();
        }
    }
}
