//! Key-space partitioning: which node owns a key.

use treaty_crypto::hash;

/// Hash-partitions the key space over the cluster's nodes (§V-A:
//  "Treaty partitions data into shards that may be stored on separate
//  machines that fail independently").
#[derive(Debug, Clone)]
pub struct ShardMap {
    nodes: Vec<u32>,
    seed: u64,
}

impl ShardMap {
    /// Creates a map over `nodes` (fabric endpoints, in shard order) with
    /// the CAS-distributed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<u32>, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs nodes");
        ShardMap { nodes, seed }
    }

    /// The owning node's fabric endpoint for `key`.
    pub fn owner(&self, key: &[u8]) -> u32 {
        let mut buf = Vec::with_capacity(key.len() + 8);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(key);
        let h = hash::sha256(&buf);
        let x = u64::from_le_bytes(h.0[..8].try_into().unwrap());
        self.nodes[(x % self.nodes.len() as u64) as usize]
    }

    /// All nodes, in shard order.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Number of shards (= nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false — the constructor rejects empty clusters.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let m = ShardMap::new(vec![1, 2, 3], 42);
        for i in 0..100u32 {
            let k = format!("key-{i}").into_bytes();
            let o1 = m.owner(&k);
            let o2 = m.owner(&k);
            assert_eq!(o1, o2);
            assert!(m.nodes().contains(&o1));
        }
    }

    #[test]
    fn keys_spread_over_all_nodes() {
        let m = ShardMap::new(vec![1, 2, 3], 7);
        let mut counts = std::collections::HashMap::new();
        for i in 0..300u32 {
            *counts
                .entry(m.owner(format!("key-{i}").as_bytes()))
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3, "all nodes must own keys");
        for (_, c) in counts {
            assert!(c > 50, "distribution badly skewed: {c}");
        }
    }

    #[test]
    fn seed_changes_placement() {
        let a = ShardMap::new(vec![1, 2, 3], 1);
        let b = ShardMap::new(vec![1, 2, 3], 2);
        let moved = (0..100u32)
            .filter(|i| {
                let k = format!("key-{i}").into_bytes();
                a.owner(&k) != b.owner(&k)
            })
            .count();
        assert!(moved > 20);
    }
}
