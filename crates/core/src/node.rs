//! A Treaty node: participant and coordinator for the secure 2PC (Fig. 2).
//!
//! Every node runs a transactional engine (the secure LSM store, or the
//! storage-less [`treaty_store::SharedNullEngine`] for the isolated 2PC
//! benchmarks), serves client sessions as their transaction coordinator,
//! and serves peer sessions as a participant. One fiber per session
//! (§VII-C) keeps a transaction's operations ordered while unrelated
//! transactions proceed concurrently.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use treaty_crypto::{Key, MsgKind, TxMeta, WireCrypto};
use treaty_net::{EndpointConfig, EndpointId, Fabric, PendingReply, Rpc, RpcConfig};
use treaty_sched::CorePool;
use treaty_sim::Nanos;
use treaty_store::env::Env;
use treaty_store::{EngineTxn, GlobalTxId, StoreError, TxnEngine, TxnMode};

use crate::clog::Clog;
use crate::messages::{
    decode, encode, req, ClientCommitReq, CommitResult, ObsSnapshotReply, Op, OpFailure, OpResult,
    PeerMsg, PeerReply, SnapshotReadReply, SnapshotReadReq, SnapshotScanReply, SnapshotScanReq,
    SnapshotValidateReply, SnapshotValidateReq, WriteCmd,
};
use crate::shard::ShardMap;

/// Construction options for [`TreatyNode::start`].
pub struct NodeOptions {
    /// This node's fabric endpoint.
    pub endpoint: EndpointId,
    /// Network/fabric parameters.
    pub net: EndpointConfig,
    /// Message protection level (derived from the security profile).
    pub crypto: WireCrypto,
    /// Network key from the CAS.
    pub network_key: Key,
    /// Key-space partitioning.
    pub shard_map: ShardMap,
    /// The node's CPU cores.
    pub cores: Option<Arc<CorePool>>,
    /// Engine environment. `Some` enables the durable protocol state
    /// (Clog); `None` runs the protocol-only mode of §VIII-B.
    pub env: Option<Arc<Env>>,
    /// Concurrency control used for transactions on this node.
    pub txn_mode: TxnMode,
    /// RPC timeout.
    pub timeout: Nanos,
    /// Deliver phase-2 decisions inline on the client-session fiber before
    /// acking the client (the pre-pipelining behaviour; the
    /// `--sync-decisions` ablation). With the default `false`, the ack is
    /// sent as soon as the decision is Clog-durable and delivery moves to
    /// the per-node dispatcher daemon.
    pub sync_decisions: bool,
}

impl std::fmt::Debug for NodeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeOptions")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

/// Monotonic counters a node exposes for the benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Distributed transactions committed with this node as coordinator.
    pub committed: u64,
    /// Distributed transactions aborted with this node as coordinator.
    pub aborted: u64,
    /// Operations executed as a participant.
    pub participant_ops: u64,
    /// Decision (phase-2) messages re-sent after a delivery failure.
    pub decision_retries: u64,
}

// NodeStats updates go through one `Mutex<NodeStats>`: the old design (one
// atomic per field, each read `Relaxed`) could tear a snapshot mid-update —
// e.g. `totals()` observing a commit already counted while a concurrent
// retry loop's counter lagged. A single lock makes every snapshot a
// consistent point-in-time view.

/// Result of [`TreatyNode::resolve_recovered`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Undecided transactions this coordinator re-drove to a durable
    /// decision.
    pub re_decided: usize,
    /// Locally prepared transactions resolved by asking their coordinator.
    pub resolved: usize,
    /// Undecided transactions whose re-drive could not log a decision —
    /// they stay undecided and need another recovery pass.
    pub failed: usize,
}

impl std::ops::AddAssign for RecoveryOutcome {
    fn add_assign(&mut self, rhs: Self) {
        self.re_decided += rhs.re_decided;
        self.resolved += rhs.resolved;
        self.failed += rhs.failed;
    }
}

/// How many aborted transaction ids a coordinator remembers, bounding the
/// memory of [`AbortRing`].
const ABORT_RING_CAP: usize = 1024;

/// Bounded FIFO memory of recently aborted transactions. A commit request
/// for an unknown transaction consults it: "aborted earlier" and "never
/// wrote anything" must answer differently (the former is `Aborted`, the
/// latter a trivially `Committed` empty transaction).
#[derive(Default)]
struct AbortRing {
    set: HashSet<GlobalTxId>,
    order: VecDeque<GlobalTxId>,
}

impl AbortRing {
    /// Records `gtx`; returns `true` the first time it is seen.
    fn note(&mut self, gtx: GlobalTxId) -> bool {
        if !self.set.insert(gtx) {
            return false;
        }
        self.order.push_back(gtx);
        if self.order.len() > ABORT_RING_CAP {
            if let Some(evicted) = self.order.pop_front() {
                self.set.remove(&evicted);
            }
        }
        true
    }

    fn contains(&self, gtx: &GlobalTxId) -> bool {
        self.set.contains(gtx)
    }
}

/// Bound on the decision-dispatch queue: past this, committers fall back
/// to the inline send — backpressure instead of unbounded queue growth.
const DECISION_QUEUE_CAP: usize = 256;

/// A Clog-durable phase-2 decision awaiting delivery by the dispatcher.
struct DecisionDispatch {
    gtx: GlobalTxId,
    remotes: Vec<EndpointId>,
    commit: bool,
}

/// Deterministic backoff jitter for decision retries: a splitmix64-style
/// finalizer over the (transaction, peer, attempt) tuple. Different
/// coordinators and peers desynchronize their retry trains without
/// introducing nondeterminism into the simulation.
fn decision_jitter(gtx: GlobalTxId, peer: EndpointId, attempt: u64) -> u64 {
    let mut x = gtx.node ^ gtx.seq.rotate_left(17) ^ (u64::from(peer) << 32) ^ attempt;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Wire form of a phase-2 decision: request type, message kind for the
/// peer-channel metadata, and the encoded payload.
fn decision_wire(gtx: GlobalTxId, commit: bool) -> (u8, MsgKind, Vec<u8>) {
    if commit {
        (
            req::PEER_COMMIT,
            MsgKind::TxnCommit,
            encode(&PeerMsg::Commit { gtx }),
        )
    } else {
        (
            req::PEER_ABORT,
            MsgKind::TxnAbort,
            encode(&PeerMsg::Abort { gtx }),
        )
    }
}

struct CoordTxn {
    /// Remote participant endpoints (self excluded).
    remotes: Vec<EndpointId>,
    /// Local engine transaction, if any key landed on this node.
    local: Option<Box<dyn EngineTxn>>,
}

/// Applies a deferred-write slice to an engine transaction in order,
/// reporting the first failing write with its index and a typed code. The
/// caller decides what to do with the transaction on failure (participants
/// drop it — rollback — and vote no / reply with the failure).
fn apply_write_slice(
    txn: &mut dyn EngineTxn,
    writes: &[WriteCmd],
) -> std::result::Result<(), OpFailure> {
    for (i, w) in writes.iter().enumerate() {
        let r = match &w.value {
            Some(v) => txn.put(&w.key, v),
            None => txn.delete(&w.key),
        };
        if let Err(e) = r {
            return Err(OpFailure {
                index: i as u32,
                code: (&e).into(),
                reason: e.to_string(),
            });
        }
    }
    Ok(())
}

/// True k-way merge of per-shard scan slices. Each slice is sorted and the
/// shards own disjoint key sets, so a min-heap over the slice heads yields
/// globally sorted output with no duplicates to resolve — and stops as
/// soon as `limit` pairs are produced (`0` = unbounded) instead of
/// materializing the full concatenation and truncating.
pub(crate) fn merge_sorted_slices(
    slices: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    limit: usize,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = slices.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<(Vec<u8>, Vec<u8>)>> =
        slices.into_iter().map(Vec::into_iter).collect();
    // Heap entries order by (key, value, source) — keys are disjoint
    // across sources, so the key alone decides.
    let mut heap: BinaryHeap<Reverse<(Vec<u8>, Vec<u8>, usize)>> =
        BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((k, v)) = it.next() {
            heap.push(Reverse((k, v, i)));
        }
    }
    let mut out = Vec::with_capacity(if limit > 0 { limit.min(total) } else { total });
    while let Some(Reverse((k, v, i))) = heap.pop() {
        out.push((k, v));
        if limit > 0 && out.len() >= limit {
            break;
        }
        if let Some((k, v)) = iters[i].next() {
            heap.push(Reverse((k, v, i)));
        }
    }
    out
}

/// One Treaty node.
pub struct TreatyNode {
    endpoint: EndpointId,
    rpc: Arc<Rpc>,
    engine: Arc<dyn TxnEngine>,
    clog: Option<Arc<Clog>>,
    shard_map: ShardMap,
    txn_mode: TxnMode,
    active_coord: Mutex<HashMap<GlobalTxId, CoordTxn>>,
    active_part: Mutex<HashMap<GlobalTxId, Box<dyn EngineTxn>>>,
    recently_aborted: Mutex<AbortRing>,
    op_seq: AtomicU64,
    stats: Mutex<NodeStats>,
    /// `--sync-decisions`: keep phase-2 delivery inline (ablation).
    sync_decisions: bool,
    /// Clog-durable decisions awaiting dispatch (bounded FIFO).
    decision_queue: Mutex<VecDeque<DecisionDispatch>>,
    /// Guards the spawn-on-demand dispatcher daemon (one at a time).
    dispatcher_running: AtomicBool,
}

impl std::fmt::Debug for TreatyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreatyNode")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl TreatyNode {
    /// Starts a node: opens the Clog (recovering 2PC state), registers all
    /// protocol handlers and begins serving.
    ///
    /// Call [`TreatyNode::resolve_recovered`] after every node of the
    /// cluster is up to finish recovery of in-flight transactions.
    ///
    /// # Errors
    ///
    /// Propagates Clog recovery failures (integrity/rollback detection).
    pub fn start(
        fabric: &Arc<Fabric>,
        engine: Arc<dyn TxnEngine>,
        options: NodeOptions,
    ) -> treaty_store::Result<Arc<Self>> {
        let clog = match &options.env {
            Some(env) => Some(Arc::new(Clog::open(Arc::clone(env))?)),
            None => None,
        };
        let rpc = Rpc::new(
            fabric,
            options.endpoint,
            RpcConfig {
                endpoint: options.net,
                crypto: options.crypto,
                key: options.network_key,
                cores: options.cores.clone(),
                timeout: options.timeout,
            },
        );
        let node = Arc::new(TreatyNode {
            endpoint: options.endpoint,
            rpc: Arc::clone(&rpc),
            engine,
            clog,
            shard_map: options.shard_map,
            txn_mode: options.txn_mode,
            active_coord: Mutex::new(HashMap::new()),
            active_part: Mutex::new(HashMap::new()),
            recently_aborted: Mutex::new(AbortRing::default()),
            op_seq: AtomicU64::new(1),
            stats: Mutex::new(NodeStats::default()),
            sync_decisions: options.sync_decisions,
            decision_queue: Mutex::new(VecDeque::new()),
            dispatcher_running: AtomicBool::new(false),
        });
        node.register_handlers();
        rpc.start();
        // When a fault-injection plan is installed, let it crash this node:
        // stopping the endpoint makes the rest of the cluster see it vanish
        // mid-protocol, exactly like a machine failure.
        let rpc_weak = Arc::downgrade(&rpc);
        treaty_sim::crashpoint::register_node(options.endpoint, move || {
            if let Some(rpc) = rpc_weak.upgrade() {
                rpc.stop();
            }
        });
        Ok(node)
    }

    /// This node's fabric endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The node's RPC endpoint (test introspection).
    pub fn rpc(&self) -> &Arc<Rpc> {
        &self.rpc
    }

    /// The node's Clog, when running durably.
    pub fn clog(&self) -> Option<&Arc<Clog>> {
        self.clog.as_ref()
    }

    /// Statistics snapshot, consistent under one lock.
    pub fn stats(&self) -> NodeStats {
        *self.stats.lock()
    }

    /// Stops serving (simulates a node crash; durable state remains).
    pub fn stop(&self) {
        self.rpc.stop();
    }

    fn register_handlers(self: &Arc<Self>) {
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::CLIENT_OP,
            true,
            Arc::new(move |src, meta, payload| me.handle_client_op(src, meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::CLIENT_OP_BATCH,
            true,
            Arc::new(move |src, meta, payload| me.handle_client_op_batch(src, meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::CLIENT_COMMIT,
            true,
            Arc::new(move |src, meta, payload| me.handle_client_commit(src, meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::CLIENT_ROLLBACK,
            true,
            Arc::new(move |src, meta, _| me.handle_client_rollback(src, meta)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::SNAPSHOT_READ,
            true,
            Arc::new(move |_src, meta, payload| me.handle_snapshot_read(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::SNAPSHOT_VALIDATE,
            true,
            Arc::new(move |_src, meta, payload| me.handle_snapshot_validate(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::SNAPSHOT_SCAN,
            true,
            Arc::new(move |_src, meta, payload| me.handle_snapshot_scan(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::PEER_OP,
            true,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::PEER_OP_BATCH,
            true,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::PEER_PREPARE,
            true,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::PEER_COMMIT,
            true,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::PEER_ABORT,
            true,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::QUERY_DECISION,
            false,
            Arc::new(move |_src, meta, payload| me.handle_peer(meta, payload)),
        );
        let me = Arc::clone(self);
        self.rpc.register_handler(
            req::OBS_SNAPSHOT,
            false,
            Arc::new(move |_src, meta, _| me.handle_obs_snapshot(meta)),
        );
    }

    /// Serves [`req::OBS_SNAPSHOT`]: a live read of this node's queue
    /// depths, MVCC frontier, backpressure and cache counters. Read-only
    /// and replay-exempt — the `treaty-top` dashboard polls it.
    fn handle_obs_snapshot(self: &Arc<Self>, meta: TxMeta) -> Option<(TxMeta, Vec<u8>)> {
        treaty_sim::runtime::set_tag("h:obs_snapshot");
        treaty_sim::obs::set_node(self.endpoint);
        let stats = *self.stats.lock();
        let engine = self.engine.introspect();
        let reply = ObsSnapshotReply {
            node: self.endpoint,
            ts: treaty_sim::runtime::now(),
            stable_ts: self.engine.stable_ts(),
            decision_queue_depth: self.decision_queue.lock().len() as u64,
            flush_backlog: engine.flush_backlog,
            backpressure: engine.backpressure,
            prepared_txns: self.engine.prepared_txns().len() as u64,
            committed: stats.committed,
            aborted: stats.aborted,
            participant_ops: stats.participant_ops,
            decision_retries: stats.decision_retries,
            block_cache_hits: engine.block_cache_hits,
            block_cache_misses: engine.block_cache_misses,
        };
        treaty_sim::obs::counter_add("core.obs_snapshots_served", 1);
        Some((
            TxMeta {
                kind: MsgKind::Ack,
                ..meta
            },
            encode(&reply),
        ))
    }

    fn gtx_for_client(&self, meta: &TxMeta) -> GlobalTxId {
        // The client encodes (client_id << 32 | its own tx counter) in
        // tx_id; prefixing our endpoint makes it cluster-unique.
        GlobalTxId {
            node: self.endpoint as u64,
            seq: meta.tx_id,
        }
    }

    fn peer_meta(&self, gtx: GlobalTxId, kind: MsgKind) -> TxMeta {
        TxMeta {
            node_id: self.endpoint as u64,
            tx_id: gtx.seq,
            op_id: self.op_seq.fetch_add(1, Ordering::Relaxed),
            kind,
        }
    }

    // ---- coordinator: client-facing handlers ------------------------------

    fn handle_client_op(
        self: &Arc<Self>,
        _src: EndpointId,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        let op: Op = decode(&payload)?;
        let gtx = self.gtx_for_client(&meta);
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(gtx.seq);
        let _span = treaty_sim::obs::span("2pc.coordinate_op");
        let result = self.coordinate_op(gtx, op);
        let kind = match result {
            OpResult::Err { .. } => MsgKind::Nack,
            _ => MsgKind::Ack,
        };
        Some((TxMeta { kind, ..meta }, encode(&result)))
    }

    fn coordinate_op(self: &Arc<Self>, gtx: GlobalTxId, op: Op) -> OpResult {
        treaty_sim::runtime::set_tag("h:coordinate_op");
        if op.is_range() {
            // Keys are hash-partitioned: a span has pieces on every shard,
            // so range operations bypass single-owner routing entirely.
            return self.coordinate_range_op(gtx, op);
        }
        let owner = self.shard_map.owner(op.key());
        // Take the coordinator state out while we (potentially) block.
        let mut ctx = self.active_coord.lock().remove(&gtx).unwrap_or(CoordTxn {
            remotes: Vec::new(),
            local: None,
        });

        let result = if owner == self.endpoint {
            let local = ctx
                .local
                .get_or_insert_with(|| self.engine.begin_txn(self.txn_mode));
            match &op {
                Op::Get { key } => match local.get(key) {
                    Ok(v) => OpResult::Ok { value: v },
                    Err(e) => OpResult::Err {
                        reason: e.to_string(),
                    },
                },
                Op::Put { key, value } => match local.put(key, value) {
                    Ok(()) => OpResult::Ok { value: None },
                    Err(e) => OpResult::Err {
                        reason: e.to_string(),
                    },
                },
                Op::Delete { key } => match local.delete(key) {
                    Ok(()) => OpResult::Ok { value: None },
                    Err(e) => OpResult::Err {
                        reason: e.to_string(),
                    },
                },
                // Range operations never reach the single-owner path.
                Op::Scan { .. } | Op::RangeDelete { .. } => OpResult::Err {
                    reason: "range operation on point-op path".into(),
                },
            }
        } else {
            if !ctx.remotes.contains(&owner) {
                ctx.remotes.push(owner);
            }
            let msg = PeerMsg::Op { gtx, op };
            let meta = self.peer_meta(gtx, MsgKind::TxnPut);
            match self.rpc.call(owner, req::PEER_OP, &meta, &encode(&msg)) {
                Ok((_, bytes)) => match decode::<PeerReply>(&bytes) {
                    Some(PeerReply::OpDone(r)) => r,
                    _ => OpResult::Err {
                        reason: "malformed participant reply".into(),
                    },
                },
                Err(e) => OpResult::Err {
                    reason: format!("participant unreachable: {e}"),
                },
            }
        };

        match result {
            OpResult::Err { .. } => {
                // The transaction is dead: abort everywhere, drop state.
                self.abort_everywhere(gtx, ctx);
            }
            _ => {
                self.active_coord.lock().insert(gtx, ctx);
            }
        }
        result
    }

    /// Coordinates a range operation ([`Op::Scan`] / [`Op::RangeDelete`]).
    /// Hash partitioning scatters a span's keys across every shard, so the
    /// operation fans out to all peers in one burst (the local slice
    /// overlaps the round trips), every peer joins the transaction's
    /// participant set, and scan slices — sorted per shard over disjoint
    /// key sets — merge into one sorted result before the limit applies.
    fn coordinate_range_op(self: &Arc<Self>, gtx: GlobalTxId, op: Op) -> OpResult {
        treaty_sim::runtime::set_tag("h:coordinate_range_op");
        let mut ctx = self.active_coord.lock().remove(&gtx).unwrap_or(CoordTxn {
            remotes: Vec::new(),
            local: None,
        });
        let peers: Vec<EndpointId> = self
            .shard_map
            .nodes()
            .iter()
            .copied()
            .filter(|n| *n != self.endpoint)
            .collect();
        for &p in &peers {
            if !ctx.remotes.contains(&p) {
                ctx.remotes.push(p);
            }
        }
        let payload = encode(&PeerMsg::Op {
            gtx,
            op: op.clone(),
        });
        let mut pending: Vec<(EndpointId, PendingReply)> = Vec::with_capacity(peers.len());
        for &p in &peers {
            let meta = self.peer_meta(gtx, MsgKind::TxnPut);
            pending.push((p, self.rpc.enqueue_request(p, req::PEER_OP, &meta, &payload)));
        }
        self.rpc.tx_burst();
        treaty_sim::crashpoint::hit("coord.scan_fanout");

        let local = ctx
            .local
            .get_or_insert_with(|| self.engine.begin_txn(self.txn_mode));
        let mut slices: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(peers.len() + 1);
        let mut failure: Option<String> = None;
        let limit = match &op {
            Op::Scan { start, end, limit } => {
                match local.scan(start, end, *limit as usize) {
                    Ok(entries) => slices.push(entries),
                    Err(e) => failure = Some(format!("local scan: {e}")),
                }
                *limit as usize
            }
            Op::RangeDelete { start, end } => {
                if let Err(e) = local.delete_range(start, end) {
                    failure = Some(format!("local range delete: {e}"));
                }
                0
            }
            _ => {
                failure = Some("point operation on range path".into());
                0
            }
        };
        // Collect every reply even after a failure: an abandoned
        // `PendingReply` would leave the burst dangling mid-session.
        for (p, pr) in pending {
            match pr.wait() {
                Ok((_, bytes)) => match decode::<PeerReply>(&bytes) {
                    Some(PeerReply::OpDone(OpResult::Entries { entries })) => slices.push(entries),
                    Some(PeerReply::OpDone(OpResult::Ok { .. })) => {}
                    Some(PeerReply::OpDone(OpResult::Err { reason })) => {
                        failure.get_or_insert(format!("participant {p}: {reason}"));
                    }
                    _ => {
                        failure.get_or_insert(format!("participant {p} malformed reply"));
                    }
                },
                Err(e) => {
                    failure.get_or_insert(format!("participant {p}: {e}"));
                }
            }
        }
        if let Some(reason) = failure {
            self.abort_everywhere(gtx, ctx);
            return OpResult::Err { reason };
        }

        let result = if matches!(op, Op::Scan { .. }) {
            OpResult::Entries {
                entries: merge_sorted_slices(slices, limit),
            }
        } else {
            OpResult::Ok { value: None }
        };
        self.active_coord.lock().insert(gtx, ctx);
        result
    }

    /// Splits a shipped write set into the local slice and one slice per
    /// remote shard, preserving client issue order within each slice. The
    /// remote slices keep first-touch order so the fan-out is
    /// deterministic (no hash-map iteration on the message path).
    fn split_writes_by_shard(
        &self,
        writes: Vec<WriteCmd>,
    ) -> (Vec<WriteCmd>, Vec<(EndpointId, Vec<WriteCmd>)>) {
        let mut local: Vec<WriteCmd> = Vec::new();
        let mut remote: Vec<(EndpointId, Vec<WriteCmd>)> = Vec::new();
        for w in writes {
            let owner = self.shard_map.owner(&w.key);
            if owner == self.endpoint {
                local.push(w);
                continue;
            }
            match remote.iter_mut().find(|(p, _)| *p == owner) {
                Some((_, slice)) => slice.push(w),
                None => remote.push((owner, vec![w])),
            }
        }
        (local, remote)
    }

    /// Serves [`req::CLIENT_OP_BATCH`]: the client's deferred write buffer,
    /// flushed because a read is about to need it visible.
    fn handle_client_op_batch(
        self: &Arc<Self>,
        _src: EndpointId,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        let shipped: ClientCommitReq = decode(&payload)?;
        let gtx = self.gtx_for_client(&meta);
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(gtx.seq);
        let _span = treaty_sim::obs::span_with(
            "2pc.coordinate_batch",
            &[("writes", shipped.writes.len() as u64)],
        );
        let result = self.coordinate_write_batch(gtx, shipped.writes);
        let kind = match result {
            OpResult::Err { .. } => MsgKind::Nack,
            _ => MsgKind::Ack,
        };
        Some((TxMeta { kind, ..meta }, encode(&result)))
    }

    /// Coordinates a shipped write set mid-transaction: the writes group
    /// by owning shard, one [`req::PEER_OP_BATCH`] per shard leaves in a
    /// single burst (one seal per shard instead of per op), and the local
    /// slice applies while the round trips are in flight — mirroring
    /// [`TreatyNode::coordinate_range_op`]. Every touched shard joins the
    /// participant set.
    fn coordinate_write_batch(self: &Arc<Self>, gtx: GlobalTxId, writes: Vec<WriteCmd>) -> OpResult {
        treaty_sim::runtime::set_tag("h:coordinate_batch");
        if writes.is_empty() {
            return OpResult::Ok { value: None };
        }
        let mut ctx = self.active_coord.lock().remove(&gtx).unwrap_or(CoordTxn {
            remotes: Vec::new(),
            local: None,
        });
        let (local_writes, remote_slices) = self.split_writes_by_shard(writes);
        let mut pending: Vec<(EndpointId, PendingReply)> = Vec::with_capacity(remote_slices.len());
        for (owner, slice) in remote_slices {
            if !ctx.remotes.contains(&owner) {
                ctx.remotes.push(owner);
            }
            let meta = self.peer_meta(gtx, MsgKind::TxnPut);
            let payload = encode(&PeerMsg::OpBatch { gtx, writes: slice });
            pending.push((
                owner,
                self.rpc
                    .enqueue_request(owner, req::PEER_OP_BATCH, &meta, &payload),
            ));
        }
        self.rpc.tx_burst();
        treaty_sim::crashpoint::hit("coord.batch_fanout");

        let mut failure: Option<String> = None;
        if !local_writes.is_empty() {
            let local = ctx
                .local
                .get_or_insert_with(|| self.engine.begin_txn(self.txn_mode));
            if let Err(f) = apply_write_slice(local.as_mut(), &local_writes) {
                failure = Some(format!("local batch write {}: {}", f.index, f.reason));
            }
        }
        // Collect every reply even after a failure: an abandoned
        // `PendingReply` would leave the burst dangling mid-session.
        for (p, pr) in pending {
            match pr.wait() {
                Ok((_, bytes)) => match decode::<PeerReply>(&bytes) {
                    Some(PeerReply::BatchDone { fail: None }) => {}
                    Some(PeerReply::BatchDone { fail: Some(f) }) => {
                        treaty_sim::obs::counter_add("core.batch_op_failed", 1);
                        failure.get_or_insert(format!(
                            "participant {p} batch write {} ({:?}): {}",
                            f.index, f.code, f.reason
                        ));
                    }
                    _ => {
                        failure.get_or_insert(format!("participant {p} malformed reply"));
                    }
                },
                Err(e) => {
                    failure.get_or_insert(format!("participant {p}: {e}"));
                }
            }
        }
        if let Some(reason) = failure {
            self.abort_everywhere(gtx, ctx);
            return OpResult::Err { reason };
        }
        treaty_sim::obs::counter_add("core.batched_writes", 1);
        self.active_coord.lock().insert(gtx, ctx);
        OpResult::Ok { value: None }
    }

    fn handle_client_commit(
        self: &Arc<Self>,
        _src: EndpointId,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        let gtx = self.gtx_for_client(&meta);
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(gtx.seq);
        let _span = treaty_sim::obs::span("2pc.commit");
        // Deferred writes shipped with the commit itself (empty payload =
        // none; pre-batching clients keep working).
        let shipped: Vec<WriteCmd> = if payload.is_empty() {
            Vec::new()
        } else {
            match decode::<ClientCommitReq>(&payload) {
                Some(r) => r.writes,
                None => {
                    return Some((
                        TxMeta {
                            kind: MsgKind::Nack,
                            ..meta
                        },
                        encode(&CommitResult::Aborted {
                            reason: "malformed commit payload".into(),
                        }),
                    ));
                }
            }
        };
        let ctx = self.active_coord.lock().remove(&gtx);
        let result = match ctx {
            // No coordinator state: either a transaction we already aborted
            // (op error, client rollback) — its client must not receive a
            // success ack — or a genuinely empty transaction.
            None if self.recently_aborted.lock().contains(&gtx) => CommitResult::Aborted {
                reason: "transaction was aborted".into(),
            },
            None if shipped.is_empty() => CommitResult::Committed, // empty transaction
            None => self.commit_with_writes(
                gtx,
                CoordTxn {
                    remotes: Vec::new(),
                    local: None,
                },
                shipped,
            ),
            Some(ctx) if shipped.is_empty() => self.run_two_phase_commit(gtx, ctx, Vec::new()),
            Some(ctx) => self.commit_with_writes(gtx, ctx, shipped),
        };
        match &result {
            CommitResult::Committed => {
                self.stats.lock().committed += 1;
                treaty_sim::obs::counter_add("core.committed", 1);
            }
            CommitResult::Aborted { .. } => self.note_aborted(gtx),
        }
        treaty_sim::crashpoint::hit("coord.before_client_reply");
        let kind = match result {
            CommitResult::Committed => MsgKind::Ack,
            CommitResult::Aborted { .. } => MsgKind::Nack,
        };
        Some((TxMeta { kind, ..meta }, encode(&result)))
    }

    fn handle_client_rollback(
        self: &Arc<Self>,
        _src: EndpointId,
        meta: TxMeta,
    ) -> Option<(TxMeta, Vec<u8>)> {
        let gtx = self.gtx_for_client(&meta);
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(gtx.seq);
        let _span = treaty_sim::obs::span("2pc.rollback");
        // Count the abort only when coordinator state was actually removed
        // (`abort_everywhere` notes it): a rollback of a transaction already
        // aborted on the op-error path used to be counted a second time
        // here, skewing the fig4/fig6 abort rates.
        if let Some(ctx) = self.active_coord.lock().remove(&gtx) {
            self.abort_everywhere(gtx, ctx);
        }
        Some((
            TxMeta {
                kind: MsgKind::Ack,
                ..meta
            },
            encode(&CommitResult::Aborted {
                reason: "rolled back by client".into(),
            }),
        ))
    }

    /// Commits a transaction whose final deferred writes arrived with the
    /// commit request itself. The local slice applies inline; each remote
    /// shard's slice piggybacks on its prepare message, collapsing
    /// execute+prepare into one round trip (one seal/unseal) per shard. A
    /// shard that only ever received deferred writes therefore costs one
    /// sealed message for all of phase one.
    fn commit_with_writes(
        self: &Arc<Self>,
        gtx: GlobalTxId,
        mut ctx: CoordTxn,
        writes: Vec<WriteCmd>,
    ) -> CommitResult {
        let (local_writes, batches) = self.split_writes_by_shard(writes);
        if !local_writes.is_empty() {
            let local = ctx
                .local
                .get_or_insert_with(|| self.engine.begin_txn(self.txn_mode));
            if let Err(f) = apply_write_slice(local.as_mut(), &local_writes) {
                self.abort_everywhere(gtx, ctx);
                return CommitResult::Aborted {
                    reason: format!("local batch write {}: {}", f.index, f.reason),
                };
            }
        }
        for (owner, _) in &batches {
            if !ctx.remotes.contains(owner) {
                ctx.remotes.push(*owner);
            }
        }
        self.run_two_phase_commit(gtx, ctx, batches)
    }

    /// The secure two-phase commit of Fig. 2. `batches` carries deferred
    /// writes to piggyback on the prepare message per remote shard
    /// (empty for the classic eager-execution path).
    fn run_two_phase_commit(
        self: &Arc<Self>,
        gtx: GlobalTxId,
        mut ctx: CoordTxn,
        mut batches: Vec<(EndpointId, Vec<WriteCmd>)>,
    ) -> CommitResult {
        treaty_sim::runtime::set_tag("h:2pc");
        // Fast path: single-participant transaction, local only (1PC).
        if ctx.remotes.is_empty() {
            return match ctx.local {
                None => CommitResult::Committed,
                Some(mut local) => match local.commit() {
                    Ok(_) => CommitResult::Committed,
                    Err(e) => CommitResult::Aborted {
                        reason: e.to_string(),
                    },
                },
            };
        }

        // (5) Log the transaction to the Clog with a trusted counter value.
        let mut participants: Vec<u32> = ctx.remotes.clone();
        if ctx.local.is_some() {
            participants.push(self.endpoint);
        }
        treaty_sim::runtime::set_tag("h:2pc-clog-start");
        if let Some(clog) = &self.clog {
            if let Err(e) = clog.log_start(gtx, participants) {
                self.abort_everywhere(gtx, ctx);
                return CommitResult::Aborted {
                    reason: format!("clog: {e}"),
                };
            }
        }
        treaty_sim::crashpoint::hit("coord.after_clog_start");

        treaty_sim::runtime::set_tag("h:2pc-fanout");
        let mut all_yes = true;
        let mut reason = String::new();
        {
            let _prepare =
                treaty_sim::obs::span_with("2pc.prepare", &[("remotes", ctx.remotes.len() as u64)]);
            // Phase one: prepares fan out in one burst; the local prepare
            // overlaps the network round trip.
            let mut pending: Vec<(EndpointId, PendingReply)> = Vec::new();
            for &r in &ctx.remotes {
                let batch = batches
                    .iter_mut()
                    .find(|(p, _)| *p == r)
                    .map(|(_, b)| std::mem::take(b))
                    .unwrap_or_default();
                let meta = self.peer_meta(gtx, MsgKind::TxnPrepare);
                let msg = encode(&PeerMsg::Prepare { gtx, batch });
                pending.push((
                    r,
                    self.rpc.enqueue_request(r, req::PEER_PREPARE, &meta, &msg),
                ));
            }
            self.rpc.tx_burst();
            treaty_sim::crashpoint::hit("coord.after_prepare_fanout");

            treaty_sim::runtime::set_tag("h:2pc-local-prepare");
            if let Some(local) = ctx.local.take() {
                let mut local = local;
                if let Err(e) = local.prepare(gtx) {
                    all_yes = false;
                    reason = format!("local prepare: {e}");
                }
                // Prepared state now lives in the engine (or was rolled back).
            }
            treaty_sim::runtime::set_tag("h:2pc-collect-votes");
            for (r, p) in pending {
                match p.wait() {
                    Ok((_, bytes)) => match decode::<PeerReply>(&bytes) {
                        Some(PeerReply::Vote { yes: true }) => {}
                        Some(PeerReply::Vote { yes: false }) => {
                            all_yes = false;
                            reason = format!("participant {r} voted no");
                        }
                        _ => {
                            all_yes = false;
                            reason = format!("participant {r} malformed vote");
                        }
                    },
                    Err(e) => {
                        all_yes = false;
                        reason = format!("participant {r}: {e}");
                    }
                }
            }
        }
        treaty_sim::crashpoint::hit("coord.after_votes");

        treaty_sim::runtime::set_tag("h:2pc-log-decision");
        let commit = all_yes;
        {
            let _decide = treaty_sim::obs::span("2pc.decide");
            if let Some(clog) = &self.clog {
                if let Err(e) = clog.log_decision(gtx, commit) {
                    // Cannot make the decision durable: abort (participants
                    // will learn via QueryDecision / coordinator recovery).
                    self.send_decision(gtx, &ctx.remotes, false);
                    let _ = self.engine.abort_prepared(gtx);
                    return CommitResult::Aborted {
                        reason: format!("decision log: {e}"),
                    };
                }
            }
        }
        treaty_sim::crashpoint::hit("coord.after_log_decision");

        treaty_sim::runtime::set_tag("h:2pc-phase2");
        if self.pipelined_decisions() {
            // Early ack (the pipelined commit path): the decision is
            // Clog-durable, so the client need not wait for the fan-out —
            // delivery moves to the dispatcher daemon, and even a total
            // delivery failure resolves via recovery (coordinator re-send
            // or participant QueryDecision, §VI).
            self.queue_decision(gtx, std::mem::take(&mut ctx.remotes), commit);
        } else {
            self.send_decision(gtx, &ctx.remotes, commit);
        }
        treaty_sim::crashpoint::hit("coord.after_decision_send");
        treaty_sim::runtime::set_tag("h:2pc-decide-local");
        if commit {
            let _ = self.engine.commit_prepared(gtx);
            CommitResult::Committed
        } else {
            let _ = self.engine.abort_prepared(gtx);
            CommitResult::Aborted { reason }
        }
    }

    /// True when phase-2 delivery rides the dispatcher daemon instead of
    /// the client-session fiber. Outside the runtime (plain tests) there
    /// is no daemon to run, so delivery stays inline.
    fn pipelined_decisions(&self) -> bool {
        !self.sync_decisions && treaty_sim::runtime::in_fiber()
    }

    /// Hands a Clog-durable decision to the dispatcher daemon. The queue
    /// is bounded: past the cap the committer falls back to the inline
    /// send, paying for delivery itself — backpressure, never a drop.
    fn queue_decision(self: &Arc<Self>, gtx: GlobalTxId, remotes: Vec<EndpointId>, commit: bool) {
        let mut queue = self.decision_queue.lock();
        if queue.len() >= DECISION_QUEUE_CAP {
            drop(queue);
            treaty_sim::obs::counter_add("core.decision_queue_overflow", 1);
            self.send_decision(gtx, &remotes, commit);
            return;
        }
        queue.push_back(DecisionDispatch {
            gtx,
            remotes,
            commit,
        });
        let depth = queue.len() as u64;
        drop(queue);
        treaty_sim::obs::gauge_set("core.decision_queue_depth", depth);
        treaty_sim::obs::counter_add("core.decisions_queued", 1);
        // Queued but not yet sent: a crash here must resolve through the
        // Clog decision (coordinator re-send at recovery) or the
        // participants' QueryDecision.
        treaty_sim::crashpoint::hit("coord.decision_queued");
        self.ensure_dispatcher();
    }

    /// Spawns the dispatcher daemon if it is not already running.
    fn ensure_dispatcher(self: &Arc<Self>) {
        if self.dispatcher_running.swap(true, Ordering::SeqCst) {
            return;
        }
        let me = Arc::clone(self);
        treaty_sim::runtime::spawn_daemon(move || {
            treaty_sim::runtime::set_tag("decision-dispatch");
            // Batches span transactions; each item scopes its own txn.
            let _txn = treaty_sim::obs::txn_scope(0);
            me.run_dispatcher();
        });
    }

    /// Daemon body: drains the queue in batches until it stays empty,
    /// with a claim/re-check dance so a decision can never be stranded
    /// between an idle check and the running-flag reset.
    fn run_dispatcher(self: &Arc<Self>) {
        loop {
            let work: Vec<DecisionDispatch> = {
                let mut queue = self.decision_queue.lock();
                queue.drain(..).collect()
            };
            if work.is_empty() {
                self.dispatcher_running.store(false, Ordering::SeqCst);
                if self.decision_queue.lock().is_empty() {
                    return;
                }
                if self.dispatcher_running.swap(true, Ordering::SeqCst) {
                    return; // a newer daemon claimed the work
                }
                continue;
            }
            treaty_sim::obs::gauge_set("core.decision_queue_depth", 0);
            self.dispatch_batch(work);
        }
    }

    /// Delivers a batch of queued decisions. Every message is enqueued
    /// up front and leaves in a single `tx_burst` — decisions headed for
    /// the same peer coalesce into one wire flush — then each
    /// transaction's replies are awaited (and retried) one transaction at
    /// a time, so its `2pc.send_decision` span nests cleanly under its
    /// own txn scope.
    fn dispatch_batch(self: &Arc<Self>, work: Vec<DecisionDispatch>) {
        let _span = treaty_sim::obs::span_with(
            "2pc.dispatch_decisions",
            &[("decisions", work.len() as u64)],
        );
        let mut pending: Vec<Vec<(EndpointId, PendingReply)>> = Vec::with_capacity(work.len());
        for d in &work {
            let (rt, kind, payload) = decision_wire(d.gtx, d.commit);
            let mut item = Vec::with_capacity(d.remotes.len());
            for &r in &d.remotes {
                let meta = self.peer_meta(d.gtx, kind);
                item.push((r, self.rpc.enqueue_request(r, rt, &meta, &payload)));
            }
            pending.push(item);
        }
        treaty_sim::runtime::set_tag("dd:burst");
        self.rpc.tx_burst();
        treaty_sim::crashpoint::hit("coord.mid_decision_fanout");
        for (d, item) in work.iter().zip(pending) {
            let _txn = treaty_sim::obs::txn_scope(d.gtx.seq);
            let _span = treaty_sim::obs::span_with(
                "2pc.send_decision",
                &[
                    ("remotes", d.remotes.len() as u64),
                    ("commit", u64::from(d.commit)),
                ],
            );
            for (r, p) in item {
                if p.wait().is_ok() {
                    continue;
                }
                self.retry_decision(d.gtx, r, d.commit);
            }
        }
    }

    /// Synchronously delivers every queued decision (graceful shutdown:
    /// queued phase-2 messages must reach participants before the cluster
    /// stops serving; also safe to race the daemon — each decision drains
    /// exactly once).
    pub fn drain_decisions(self: &Arc<Self>) {
        loop {
            let work: Vec<DecisionDispatch> = {
                let mut queue = self.decision_queue.lock();
                queue.drain(..).collect()
            };
            if work.is_empty() {
                return;
            }
            treaty_sim::obs::gauge_set("core.decision_queue_depth", 0);
            self.dispatch_batch(work);
        }
    }

    fn send_decision(self: &Arc<Self>, gtx: GlobalTxId, remotes: &[EndpointId], commit: bool) {
        let _span = treaty_sim::obs::span_with(
            "2pc.send_decision",
            &[
                ("remotes", remotes.len() as u64),
                ("commit", u64::from(commit)),
            ],
        );
        let (rt, kind, payload) = decision_wire(gtx, commit);
        let mut pending: Vec<(EndpointId, PendingReply)> = Vec::new();
        for &r in remotes {
            let meta = self.peer_meta(gtx, kind);
            pending.push((r, self.rpc.enqueue_request(r, rt, &meta, &payload)));
        }
        treaty_sim::runtime::set_tag("sd:wait");
        self.rpc.tx_burst();
        treaty_sim::crashpoint::hit("coord.mid_decision_fanout");
        for (r, p) in pending {
            if p.wait().is_ok() {
                continue;
            }
            self.retry_decision(gtx, r, commit);
        }
    }

    /// The phase-2 retry train for one peer that missed the initial
    /// delivery. Decisions are idempotent: retry so a lossy network
    /// cannot leave a participant holding prepared locks, but back off
    /// exponentially with deterministic jitter instead of an immediate
    /// burst, and cap the total retry window. A participant that is
    /// actually down learns the decision at recovery via QueryDecision.
    fn retry_decision(self: &Arc<Self>, gtx: GlobalTxId, r: EndpointId, commit: bool) {
        treaty_sim::runtime::set_tag("sd:retry");
        let (rt, kind, payload) = decision_wire(gtx, commit);
        let deadline = if treaty_sim::runtime::in_fiber() {
            Some(treaty_sim::runtime::now() + treaty_sim::SECONDS)
        } else {
            None
        };
        let mut backoff = treaty_sim::MILLIS / 2;
        for attempt in 0u64..6 {
            self.stats.lock().decision_retries += 1;
            treaty_sim::obs::counter_add("core.decision_retries", 1);
            treaty_sim::obs::instant(
                "2pc.decision_retry",
                &[
                    ("peer", u64::from(r)),
                    ("attempt", attempt),
                    ("backoff_ns", backoff),
                ],
            );
            let meta = self.peer_meta(gtx, kind);
            if self.rpc.call(r, rt, &meta, &payload).is_ok() {
                break;
            }
            match deadline {
                Some(d) if treaty_sim::runtime::now() < d => {
                    let jitter = decision_jitter(gtx, r, attempt) % (backoff / 2 + 1);
                    treaty_sim::runtime::sleep(backoff + jitter);
                    backoff = (backoff * 2).min(8 * treaty_sim::MILLIS);
                }
                // Retry window exhausted.
                Some(_) => break,
                // Outside the runtime (plain tests): no virtual time to
                // sleep in, retry immediately as before.
                None => {}
            }
        }
    }

    /// Records a coordinator-side abort exactly once per transaction: the
    /// ring lets a later commit attempt for the same `gtx` be answered
    /// `Aborted` instead of "unknown → empty → Committed", and it gates
    /// the abort counters so the op-error path, 2PC and client rollback
    /// cannot double-count one transaction.
    fn note_aborted(&self, gtx: GlobalTxId) {
        if self.recently_aborted.lock().note(gtx) {
            self.stats.lock().aborted += 1;
            treaty_sim::obs::counter_add("core.aborted", 1);
        }
    }

    /// Coordinator-side abort of a transaction that never reached prepare:
    /// roll back local work and advise the remotes once, fire-and-forget.
    /// Pre-prepare participants hold no durable state — if the advisory is
    /// lost, whatever they hold is volatile and dies with the session — so
    /// running the phase-2 retry train here (as this path once did) only
    /// stalled the client-op session fiber for ~1 simulated second against
    /// a dead peer.
    /// Post-prepare decisions keep their retries in
    /// [`TreatyNode::send_decision`].
    fn abort_everywhere(self: &Arc<Self>, gtx: GlobalTxId, mut ctx: CoordTxn) {
        self.note_aborted(gtx);
        if let Some(mut local) = ctx.local.take() {
            let _ = local.rollback();
        }
        if ctx.remotes.is_empty() {
            return;
        }
        let _span = treaty_sim::obs::span_with(
            "2pc.abort_advisory",
            &[("remotes", ctx.remotes.len() as u64)],
        );
        let payload = encode(&PeerMsg::Abort { gtx });
        for &r in &ctx.remotes {
            let meta = self.peer_meta(gtx, MsgKind::TxnAbort);
            self.rpc.send_oneway(r, req::PEER_ABORT, &meta, &payload);
        }
    }

    // ---- snapshot reads (lock-free read-only transactions) -----------------

    /// Serves a lock-free snapshot read: every key is read at the
    /// requested timestamp straight off the MVCC read path — no 2PC state,
    /// no coordinator, and zero lock-table traffic. An unpinned request
    /// (`ts: None`) pins this shard's current stable read timestamp and
    /// reports it back; a timestamp ahead of the stable frontier is
    /// rejected as stale, and a key an undecided prepared transaction is
    /// about to write is rejected as in-doubt — both make the client
    /// retry with a refreshed snapshot.
    fn handle_snapshot_read(
        self: &Arc<Self>,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        treaty_sim::runtime::set_tag("h:snapshot_read");
        let req_msg: SnapshotReadReq = decode(&payload)?;
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(meta.tx_id);
        let _span = treaty_sim::obs::span_with(
            "core.snapshot_read",
            &[("keys", req_msg.keys.len() as u64)],
        );
        treaty_sim::crashpoint::hit("part.snapshot_read");
        let stable = self.engine.stable_ts();
        treaty_sim::obs::gauge_set("store.stable_ts", stable);
        let ts = req_msg.ts.unwrap_or(stable);
        let mut values = Vec::with_capacity(req_msg.keys.len());
        for key in &req_msg.keys {
            match self.engine.snapshot_get(key, ts) {
                Ok(v) => values.push(v),
                Err(StoreError::SnapshotStale { stable }) => {
                    treaty_sim::obs::counter_add("core.snapshot_stale_reject", 1);
                    return Some((
                        TxMeta {
                            kind: MsgKind::Nack,
                            ..meta
                        },
                        encode(&SnapshotReadReply::Stale { stable_ts: stable }),
                    ));
                }
                Err(StoreError::SnapshotInDoubt) => {
                    treaty_sim::obs::counter_add("core.snapshot_indoubt_reject", 1);
                    return Some((
                        TxMeta {
                            kind: MsgKind::Nack,
                            ..meta
                        },
                        encode(&SnapshotReadReply::InDoubt { key: key.clone() }),
                    ));
                }
                // Integrity violations must not be papered over with a
                // retry signal: drop the request, the client times out.
                Err(_) => return None,
            }
        }
        treaty_sim::obs::counter_add("core.snapshot_reads", 1);
        Some((
            TxMeta {
                kind: MsgKind::Ack,
                ..meta
            },
            encode(&SnapshotReadReply::Values { ts, values }),
        ))
    }

    /// Serves a lock-free snapshot range scan: this shard's slice of
    /// `[start, end)` at the requested timestamp, straight off the
    /// authenticated merge iterator — no 2PC state, no coordinator, and
    /// zero lock-table traffic. Stale and in-doubt rejections mirror
    /// [`TreatyNode::handle_snapshot_read`]; an integrity violation drops
    /// the request so the client times out instead of silently retrying.
    fn handle_snapshot_scan(
        self: &Arc<Self>,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        treaty_sim::runtime::set_tag("h:snapshot_scan");
        let req_msg: SnapshotScanReq = decode(&payload)?;
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(meta.tx_id);
        let _span = treaty_sim::obs::span_with("core.snapshot_scan", &[("limit", req_msg.limit)]);
        treaty_sim::crashpoint::hit("part.snapshot_scan");
        let stable = self.engine.stable_ts();
        treaty_sim::obs::gauge_set("store.stable_ts", stable);
        let ts = req_msg.ts.unwrap_or(stable);
        match self.engine.snapshot_scan(
            &req_msg.start,
            &req_msg.end,
            ts,
            req_msg.limit as usize,
        ) {
            Ok(entries) => {
                treaty_sim::obs::counter_add("core.snapshot_scans", 1);
                Some((
                    TxMeta {
                        kind: MsgKind::Ack,
                        ..meta
                    },
                    encode(&SnapshotScanReply::Entries { ts, entries }),
                ))
            }
            Err(StoreError::SnapshotStale { stable }) => {
                treaty_sim::obs::counter_add("core.snapshot_stale_reject", 1);
                Some((
                    TxMeta {
                        kind: MsgKind::Nack,
                        ..meta
                    },
                    encode(&SnapshotScanReply::Stale { stable_ts: stable }),
                ))
            }
            Err(StoreError::SnapshotInDoubt) => {
                treaty_sim::obs::counter_add("core.snapshot_indoubt_reject", 1);
                Some((
                    TxMeta {
                        kind: MsgKind::Nack,
                        ..meta
                    },
                    encode(&SnapshotScanReply::InDoubt),
                ))
            }
            // Integrity violations must not be papered over with a retry
            // signal: drop the request, the client times out.
            Err(_) => None,
        }
    }

    /// End-of-transaction validation for multi-shard snapshot reads: the
    /// snapshot is consistent iff every key read from this shard at `ts`
    /// is still the latest word (no newer commit, no in-flight prepare).
    /// Because 2PC prepares at *all* participants before any participant
    /// applies, any transaction whose writes became visible on another
    /// shard is at least prepared here — so a torn snapshot always fails
    /// validation on some shard.
    fn handle_snapshot_validate(
        self: &Arc<Self>,
        meta: TxMeta,
        payload: Vec<u8>,
    ) -> Option<(TxMeta, Vec<u8>)> {
        treaty_sim::runtime::set_tag("h:snapshot_validate");
        let req_msg: SnapshotValidateReq = decode(&payload)?;
        treaty_sim::obs::set_node(self.endpoint);
        let _txn = treaty_sim::obs::txn_scope(meta.tx_id);
        let _span = treaty_sim::obs::span_with(
            "core.snapshot_validate",
            &[("keys", req_msg.keys.len() as u64)],
        );
        for key in &req_msg.keys {
            match self.engine.snapshot_validate(key, req_msg.ts) {
                Ok(true) => {}
                // Validation failures and integrity errors both answer
                // "not proven consistent" — the client retries.
                Ok(false) | Err(_) => {
                    treaty_sim::obs::counter_add("core.snapshot_validate_fail", 1);
                    return Some((
                        TxMeta {
                            kind: MsgKind::Nack,
                            ..meta
                        },
                        encode(&SnapshotValidateReply::Fail { key: key.clone() }),
                    ));
                }
            }
        }
        // Scanned spans validate wholesale: per-key checks cannot see a key
        // *inserted* into the span after the read (the phantom), so the
        // engine checks the span's maximum version — point writes, range
        // tombstones and in-doubt prepares alike — against `ts`.
        for (start, end) in &req_msg.spans {
            match self.engine.snapshot_validate_span(start, end, req_msg.ts) {
                Ok(true) => {}
                Ok(false) | Err(_) => {
                    treaty_sim::obs::counter_add("core.snapshot_validate_fail", 1);
                    return Some((
                        TxMeta {
                            kind: MsgKind::Nack,
                            ..meta
                        },
                        encode(&SnapshotValidateReply::Fail { key: start.clone() }),
                    ));
                }
            }
        }
        Some((
            TxMeta {
                kind: MsgKind::Ack,
                ..meta
            },
            encode(&SnapshotValidateReply::Ok),
        ))
    }

    // ---- participant: peer-facing handlers ---------------------------------

    fn handle_peer(self: &Arc<Self>, meta: TxMeta, payload: Vec<u8>) -> Option<(TxMeta, Vec<u8>)> {
        treaty_sim::runtime::set_tag("h:peer");
        let msg: PeerMsg = decode(&payload)?;
        treaty_sim::obs::set_node(self.endpoint);
        let (phase, gtx) = match &msg {
            PeerMsg::Op { gtx, .. } => ("2pc.participant.op", *gtx),
            PeerMsg::OpBatch { gtx, .. } => ("2pc.participant.op_batch", *gtx),
            PeerMsg::Prepare { gtx, .. } => ("2pc.participant.prepare", *gtx),
            PeerMsg::Commit { gtx } => ("2pc.participant.commit", *gtx),
            PeerMsg::Abort { gtx } => ("2pc.participant.abort", *gtx),
            PeerMsg::QueryDecision { gtx } => ("2pc.participant.query", *gtx),
        };
        let _txn = treaty_sim::obs::txn_scope(gtx.seq);
        let _span = treaty_sim::obs::span(phase);
        let reply = match msg {
            PeerMsg::Op { gtx, op } => {
                self.stats.lock().participant_ops += 1;
                let mut txn = self
                    .active_part
                    .lock()
                    .remove(&gtx)
                    .unwrap_or_else(|| self.engine.begin_txn(self.txn_mode));
                let result = match &op {
                    Op::Get { key } => match txn.get(key) {
                        Ok(v) => OpResult::Ok { value: v },
                        Err(e) => OpResult::Err {
                            reason: e.to_string(),
                        },
                    },
                    Op::Put { key, value } => match txn.put(key, value) {
                        Ok(()) => OpResult::Ok { value: None },
                        Err(e) => OpResult::Err {
                            reason: e.to_string(),
                        },
                    },
                    Op::Delete { key } => match txn.delete(key) {
                        Ok(()) => OpResult::Ok { value: None },
                        Err(e) => OpResult::Err {
                            reason: e.to_string(),
                        },
                    },
                    Op::Scan { start, end, limit } => {
                        treaty_sim::crashpoint::hit("part.scan");
                        match txn.scan(start, end, *limit as usize) {
                            Ok(entries) => OpResult::Entries { entries },
                            Err(e) => OpResult::Err {
                                reason: e.to_string(),
                            },
                        }
                    }
                    Op::RangeDelete { start, end } => {
                        treaty_sim::crashpoint::hit("part.range_delete");
                        match txn.delete_range(start, end) {
                            Ok(()) => OpResult::Ok { value: None },
                            Err(e) => OpResult::Err {
                                reason: e.to_string(),
                            },
                        }
                    }
                };
                match &result {
                    OpResult::Err { .. } => {
                        // txn dropped -> rolled back; coordinator aborts.
                    }
                    _ => {
                        self.active_part.lock().insert(gtx, txn);
                    }
                }
                PeerReply::OpDone(result)
            }
            PeerMsg::OpBatch { gtx, writes } => {
                // This shard's slice of a deferred write batch: applied
                // all-or-nothing in one sealed message. On the first
                // failure the whole engine transaction rolls back and the
                // reply pinpoints the failing write with a typed code.
                self.stats.lock().participant_ops += writes.len() as u64;
                let mut txn = self
                    .active_part
                    .lock()
                    .remove(&gtx)
                    .unwrap_or_else(|| self.engine.begin_txn(self.txn_mode));
                let mut fail: Option<OpFailure> = None;
                for (i, w) in writes.iter().enumerate() {
                    let r = match &w.value {
                        Some(v) => txn.put(&w.key, v),
                        None => txn.delete(&w.key),
                    };
                    // A crash here is mid-apply: some writes landed in the
                    // volatile engine transaction, none are prepared.
                    treaty_sim::crashpoint::hit("part.batch_apply");
                    if let Err(e) = r {
                        fail = Some(OpFailure {
                            index: i as u32,
                            code: (&e).into(),
                            reason: e.to_string(),
                        });
                        break;
                    }
                }
                match fail {
                    None => {
                        self.active_part.lock().insert(gtx, txn);
                        PeerReply::BatchDone { fail: None }
                    }
                    Some(f) => {
                        // txn dropped -> rolled back; coordinator aborts.
                        PeerReply::BatchDone { fail: Some(f) }
                    }
                }
            }
            PeerMsg::Prepare { gtx, batch } => {
                treaty_sim::crashpoint::hit("part.before_prepare");
                if !batch.is_empty() {
                    self.stats.lock().participant_ops += batch.len() as u64;
                }
                let txn = self.active_part.lock().remove(&gtx);
                // A piggybacked batch means this shard received deferred
                // writes with the prepare itself (execute+prepare in one
                // round trip) — begin the engine transaction here if the
                // shard saw nothing earlier.
                let txn = match txn {
                    Some(t) => Some(t),
                    None if batch.is_empty() => None,
                    None => Some(self.engine.begin_txn(self.txn_mode)),
                };
                let yes = match txn {
                    Some(mut txn) => match apply_write_slice(txn.as_mut(), &batch) {
                        Ok(()) => txn.prepare(gtx).is_ok(),
                        // txn dropped -> rolled back; vote no.
                        Err(_) => false,
                    },
                    // Recovery re-drive: still prepared from a past life?
                    None => self.engine.prepared_txns().contains(&gtx),
                };
                treaty_sim::crashpoint::hit("part.after_prepare");
                PeerReply::Vote { yes }
            }
            PeerMsg::Commit { gtx } => {
                let _ = self.engine.commit_prepared(gtx);
                treaty_sim::crashpoint::hit("part.after_commit_apply");
                PeerReply::Ack
            }
            PeerMsg::Abort { gtx } => {
                if let Some(mut txn) = self.active_part.lock().remove(&gtx) {
                    let _ = txn.rollback();
                }
                let _ = self.engine.abort_prepared(gtx);
                treaty_sim::crashpoint::hit("part.after_abort_apply");
                PeerReply::Ack
            }
            PeerMsg::QueryDecision { gtx } => PeerReply::Decision {
                commit: self.clog.as_ref().and_then(|c| c.decision(gtx)),
            },
        };
        Some((
            TxMeta {
                kind: MsgKind::Ack,
                ..meta
            },
            encode(&reply),
        ))
    }

    // ---- recovery ------------------------------------------------------------

    /// Finishes recovery of in-flight distributed transactions (§VI):
    ///
    /// * as a coordinator, re-drives every undecided transaction in the
    ///   Clog — re-collecting votes (participants still holding prepared
    ///   state vote yes) and then deciding,
    /// * as a participant, asks the coordinator of every locally prepared
    ///   transaction for its outcome.
    ///
    /// Returns a [`RecoveryOutcome`]; a non-zero `failed` count means some
    /// transactions are still undecided and the caller should run another
    /// recovery pass once the fault clears.
    pub fn resolve_recovered(self: &Arc<Self>) -> RecoveryOutcome {
        let mut outcome = RecoveryOutcome::default();
        if let Some(clog) = &self.clog {
            // Transactions with a logged decision but possibly undelivered
            // phase two: re-send the decision (participants treat
            // duplicates as no-ops, §VI).
            for (gtx, st) in clog.decided() {
                // `decided()` only yields entries with a decision, but the
                // recovery path must not panic on a malformed state (L002).
                let Some(commit) = st.decision else { continue };
                let remotes: Vec<u32> = st
                    .participants
                    .iter()
                    .copied()
                    .filter(|p| *p != self.endpoint)
                    .collect();
                self.send_decision(gtx, &remotes, commit);
                if commit {
                    let _ = self.engine.commit_prepared(gtx);
                } else {
                    let _ = self.engine.abort_prepared(gtx);
                }
            }
            // Undecided transactions: re-execute the prepare phase.
            for (gtx, participants) in clog.undecided() {
                let remotes: Vec<u32> = participants
                    .iter()
                    .copied()
                    .filter(|p| *p != self.endpoint)
                    .collect();
                let mut all_yes = true;
                for &r in &remotes {
                    let meta = self.peer_meta(gtx, MsgKind::TxnPrepare);
                    // Re-drives never re-ship deferred writes: a batch that
                    // reached prepare is already in the engine transaction.
                    let msg = encode(&PeerMsg::Prepare {
                        gtx,
                        batch: Vec::new(),
                    });
                    match self.rpc.call(r, req::PEER_PREPARE, &meta, &msg) {
                        Ok((_, bytes)) => match decode::<PeerReply>(&bytes) {
                            Some(PeerReply::Vote { yes }) => all_yes &= yes,
                            _ => all_yes = false,
                        },
                        Err(_) => all_yes = false,
                    }
                }
                if participants.contains(&self.endpoint) {
                    all_yes &= self.engine.prepared_txns().contains(&gtx);
                }
                match clog.log_decision(gtx, all_yes) {
                    Ok(()) => {
                        self.send_decision(gtx, &remotes, all_yes);
                        if all_yes {
                            let _ = self.engine.commit_prepared(gtx);
                        } else {
                            let _ = self.engine.abort_prepared(gtx);
                        }
                        outcome.re_decided += 1;
                        treaty_sim::obs::counter_add("core.recovery_redecided", 1);
                    }
                    Err(_) => {
                        // The re-drive could not make a decision durable —
                        // the transaction stays undecided. Surface it: the
                        // old code dropped the error on the floor, leaving
                        // the operator with no signal that recovery was
                        // incomplete.
                        outcome.failed += 1;
                        treaty_sim::obs::counter_add("core.recovery_redrive_failed", 1);
                        treaty_sim::obs::instant(
                            "2pc.recovery_redrive_failed",
                            &[("coordinator", u64::from(self.endpoint))],
                        );
                        treaty_sim::obs::flight_dump(
                            "recovery.redrive_failed",
                            "re-drive could not make a decision durable",
                        );
                    }
                }
            }
        }

        // Participant side: resolve prepared transactions coordinated
        // elsewhere.
        for gtx in self.engine.prepared_txns() {
            if gtx.node == self.endpoint as u64 {
                continue; // our own coordination handled above
            }
            let meta = self.peer_meta(gtx, MsgKind::QueryDecision);
            let msg = encode(&PeerMsg::QueryDecision { gtx });
            if let Ok((_, bytes)) = self
                .rpc
                .call(gtx.node as u32, req::QUERY_DECISION, &meta, &msg)
            {
                match decode::<PeerReply>(&bytes) {
                    Some(PeerReply::Decision { commit: Some(true) }) => {
                        let _ = self.engine.commit_prepared(gtx);
                        outcome.resolved += 1;
                        treaty_sim::obs::counter_add("core.recovery_resolved", 1);
                    }
                    Some(PeerReply::Decision {
                        commit: Some(false),
                    }) => {
                        let _ = self.engine.abort_prepared(gtx);
                        outcome.resolved += 1;
                        treaty_sim::obs::counter_add("core.recovery_resolved", 1);
                    }
                    _ => {} // undecided: the coordinator re-drives
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::merge_sorted_slices;

    fn e(k: &str) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), format!("v-{k}").into_bytes())
    }

    #[test]
    fn merge_interleaves_disjoint_sorted_slices() {
        let merged = merge_sorted_slices(
            vec![
                vec![e("a"), e("d"), e("g")],
                vec![e("b"), e("e")],
                vec![],
                vec![e("c"), e("f"), e("h")],
            ],
            0,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h"]);
    }

    #[test]
    fn merge_stops_at_limit_without_draining() {
        let merged = merge_sorted_slices(
            vec![vec![e("a"), e("c"), e("e")], vec![e("b"), e("d"), e("f")]],
            3,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a", b"b", b"c"]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_sorted_slices(Vec::new(), 0).is_empty());
        assert!(merge_sorted_slices(vec![vec![], vec![]], 5).is_empty());
    }

    #[test]
    fn merge_single_slice_is_identity() {
        let s = vec![e("a"), e("b"), e("c")];
        assert_eq!(merge_sorted_slices(vec![s.clone()], 0), s);
    }
}
