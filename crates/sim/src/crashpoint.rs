//! Deterministic crash-point fault injection.
//!
//! Every step of the distributed commit path registers a **named crash
//! point** by calling [`hit`] at the instrumented site. A harness installs
//! a [`CrashPlan`] per simulation ([`install`], mirroring `obs::install`)
//! and arms it with a [`FaultSchedule`]: "crash node N at point P on the
//! K-th hit". When an armed fault matches, the plan
//!
//! 1. marks the node **down**,
//! 2. invokes the node's registered crash handler (typically
//!    `TreatyNode::stop`, which deregisters the fabric endpoint so the rest
//!    of the cluster sees an unreachable peer),
//! 3. records a [`FiredCrash`] for harness assertions and emits a
//!    `crash.fired` counter + trace instant, and
//! 4. unwinds the current fiber with a [`CrashUnwind`] payload — the
//!    runtime treats it like its shutdown signal, not a test failure.
//!
//! Volatile state of the crashed node is frozen by attrition: any other
//! in-flight fiber tagged with that node unwinds at its *next* crash
//! point, and the deregistered endpoint stops all new traffic. Durable
//! state (WAL, Clog) survives untouched, which is exactly what recovery is
//! then asked to repair. After the harness restarts the node it calls
//! [`CrashPlan::revive`] so the fresh fibers run normally.
//!
//! Everything here rides the virtual clock and the deterministic
//! scheduler, so a fixed seed reproduces the same crash at the same
//! virtual instant on every run. With no plan installed (or outside a
//! fiber) [`hit`] is a no-op, so instrumentation is always-on and free to
//! sprinkle — the same contract as the observability glue.
//!
//! Lint rule L006 keeps the inventory honest: every `crashpoint::hit`
//! call site must name a point registered in [`ALL_POINTS`], and the
//! inventory itself must be duplicate-free.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::runtime;
use crate::Nanos;

/// Inventory of every named crash point compiled into the workspace.
///
/// Coordinator points fire on the node coordinating the transaction,
/// participant points on the remote shard, `clog.*` on the coordinator's
/// commit-log path and `store.*` inside the storage engine of whichever
/// node is writing. Lint rule L006 checks call sites against this list.
pub const ALL_POINTS: &[&str] = &[
    // Coordinator (treaty-core node.rs, Fig. 2 steps 2-13).
    "coord.after_clog_start",
    "coord.after_prepare_fanout",
    "coord.after_votes",
    "coord.after_log_decision",
    "coord.mid_decision_fanout",
    "coord.after_decision_send",
    "coord.before_client_reply",
    "coord.decision_queued",
    "coord.scan_fanout",
    "coord.batch_fanout",
    // Participant (treaty-core node.rs, peer handler).
    "part.before_prepare",
    "part.batch_apply",
    "part.after_prepare",
    "part.after_commit_apply",
    "part.after_abort_apply",
    "part.snapshot_read",
    "part.snapshot_scan",
    "part.scan",
    "part.range_delete",
    // Commit log (treaty-core clog.rs).
    "clog.decision_appended",
    // Storage engine (treaty-store txn.rs / engine.rs).
    "store.prepare_logged",
    "store.commit_logged",
    "store.bg_flush_start",
    "store.bg_compact_start",
];

/// One armed fault: crash `node` the `hit`-th time (1-based, counted from
/// arming) any of its fibers reaches `point`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFault {
    /// Crash-point name (must appear in [`ALL_POINTS`]).
    pub point: String,
    /// Fabric endpoint id of the node to crash.
    pub node: u32,
    /// Fire on this hit count (1 = first hit after arming).
    pub hit: u64,
}

/// A deterministic set of [`CrashFault`]s, armed via [`CrashPlan::arm`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: Vec<CrashFault>,
}

impl FaultSchedule {
    /// An empty schedule (crashes nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds "crash `node` on the `hit`-th hit of `point`".
    /// A `hit` of 0 is treated as 1.
    #[must_use]
    pub fn crash_at(mut self, point: impl Into<String>, node: u32, hit: u64) -> Self {
        self.faults.push(CrashFault {
            point: point.into(),
            node,
            hit: hit.max(1),
        });
        self
    }

    /// The armed faults.
    pub fn faults(&self) -> &[CrashFault] {
        &self.faults
    }

    /// True if the schedule crashes nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Record of a crash that fired: which point, which node, at what virtual
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredCrash {
    /// The crash point that fired.
    pub point: String,
    /// The node that went down.
    pub node: u32,
    /// Virtual time of the crash.
    pub at: Nanos,
}

/// Unwind payload for a crashed fiber. The runtime treats it exactly like
/// its internal shutdown signal: the fiber terminates without marking the
/// simulation failed.
pub(crate) struct CrashUnwind;

struct ArmedFault {
    fault: CrashFault,
    hits: u64,
    spent: bool,
}

#[derive(Default)]
struct PlanState {
    armed: Vec<ArmedFault>,
    down: HashSet<u32>,
    fired: Vec<FiredCrash>,
}

type CrashHandler = Arc<dyn Fn() + Send + Sync>;

/// Per-simulation fault-injection state. Create and install with
/// [`install`]; the harness keeps the returned `Arc` to arm schedules and
/// inspect fired crashes.
pub struct CrashPlan {
    state: Mutex<PlanState>,
    handlers: Mutex<HashMap<u32, CrashHandler>>,
}

impl std::fmt::Debug for CrashPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("CrashPlan")
            .field("armed", &st.armed.len())
            .field("down", &st.down)
            .field("fired", &st.fired)
            .finish()
    }
}

enum Decision {
    Continue,
    Unwind,
    Fire(Option<CrashHandler>),
}

impl CrashPlan {
    fn new() -> Arc<Self> {
        Arc::new(CrashPlan {
            state: Mutex::new(PlanState::default()),
            handlers: Mutex::new(HashMap::new()),
        })
    }

    /// Arms `schedule`, replacing any previously armed faults and
    /// resetting their hit counters. Nodes already down stay down; fired
    /// history is kept.
    pub fn arm(&self, schedule: FaultSchedule) {
        let mut st = self.state.lock();
        st.armed = schedule
            .faults
            .into_iter()
            .map(|fault| ArmedFault {
                fault,
                hits: 0,
                spent: false,
            })
            .collect();
    }

    /// Clears all armed faults (hits become no-ops for live nodes).
    pub fn disarm(&self) {
        self.state.lock().armed.clear();
    }

    /// Registers the crash handler for `node` (replacing any previous
    /// one). Called on node start; the handler must stop the node's
    /// endpoint so the cluster observes the crash.
    pub fn register(&self, node: u32, f: impl Fn() + Send + Sync + 'static) {
        self.handlers.lock().insert(node, Arc::new(f));
    }

    /// Every crash that fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredCrash> {
        self.state.lock().fired.clone()
    }

    /// True if `node` crashed and has not been revived.
    pub fn is_down(&self, node: u32) -> bool {
        self.state.lock().down.contains(&node)
    }

    /// Marks `node` alive again (call after restarting it); its fibers
    /// stop unwinding at crash points.
    pub fn revive(&self, node: u32) {
        self.state.lock().down.remove(&node);
    }

    fn decide(&self, point: &str, node: u32, at: Nanos) -> Decision {
        let mut st = self.state.lock();
        if st.down.contains(&node) {
            return Decision::Unwind;
        }
        let mut fire = false;
        for af in st.armed.iter_mut() {
            if af.spent || af.fault.node != node || af.fault.point != point {
                continue;
            }
            af.hits += 1;
            if af.hits == af.fault.hit {
                af.spent = true;
                fire = true;
                break;
            }
        }
        if !fire {
            return Decision::Continue;
        }
        st.down.insert(node);
        st.fired.push(FiredCrash {
            point: point.to_string(),
            node,
            at,
        });
        drop(st);
        Decision::Fire(self.handlers.lock().get(&node).cloned())
    }
}

/// Creates a fresh [`CrashPlan`] and installs it for the current
/// simulation. Call from the root fiber before the cluster boots.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn install() -> Arc<CrashPlan> {
    let plan = CrashPlan::new();
    runtime::crash_install(Some(Arc::clone(&plan)));
    plan
}

/// Removes the installed plan (subsequent [`hit`]s no-op again).
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn uninstall() {
    runtime::crash_install(None);
}

/// Registers `f` as node `node`'s crash handler on the installed plan.
/// No-op when no plan is installed (production runs) or outside a fiber.
pub fn register_node(node: u32, f: impl Fn() + Send + Sync + 'static) {
    if let Some(plan) = runtime::crash_installed() {
        plan.register(node, f);
    }
}

/// Revives `node` on the installed plan, if any — call when restarting a
/// crashed node so its fresh fibers stop unwinding at crash points. No-op
/// when no plan is installed or outside a fiber.
pub fn revive_node(node: u32) {
    if let Some(plan) = runtime::crash_installed() {
        plan.revive(node);
    }
}

/// A named crash point. Instrumented protocol steps call this; with no
/// plan installed (or outside a fiber) it costs one thread-local read.
///
/// If an armed fault matches, this function **does not return**: it runs
/// the node's crash handler and unwinds the fiber. It also does not
/// return on any node already down — in-flight fibers of a crashed node
/// are frozen at their next crash point so they cannot keep mutating
/// state the crash should have lost.
pub fn hit(point: &'static str) {
    let Some((plan, node, at)) = runtime::crash_ctx() else {
        return;
    };
    if node == 0 {
        return; // untagged fiber: cannot attribute to a node
    }
    match plan.decide(point, node, at) {
        Decision::Continue => {}
        Decision::Unwind => std::panic::panic_any(CrashUnwind),
        Decision::Fire(handler) => {
            let idx = ALL_POINTS
                .iter()
                .position(|p| *p == point)
                .map(|i| i as u64)
                .unwrap_or(u64::MAX);
            crate::obs::counter_add("crash.fired", 1);
            crate::obs::instant("crash.fired", &[("node", node as u64), ("point", idx)]);
            // Post-mortem before the handler runs: the flight recorder
            // snapshots the node's last trace window while it still shows
            // the path into the crash.
            crate::obs::flight_dump("crash.fired", point);
            if let Some(handler) = handler {
                handler();
            }
            std::panic::panic_any(CrashUnwind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{self, Sim};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn hit_is_a_noop_without_a_plan() {
        Sim::new()
            .run(|| {
                crate::obs::set_node(3);
                hit("coord.after_votes");
            })
            .unwrap();
        // And outside any fiber too.
        hit("coord.after_votes");
    }

    #[test]
    fn fires_on_kth_hit_runs_handler_and_freezes_the_node() {
        let survived = Arc::new(AtomicU64::new(0));
        let stopped = Arc::new(AtomicBool::new(false));
        let s1 = Arc::clone(&survived);
        let st1 = Arc::clone(&stopped);
        Sim::new()
            .run(move || {
                let plan = install();
                plan.arm(FaultSchedule::new().crash_at("clog.decision_appended", 7, 2));
                let st2 = Arc::clone(&st1);
                register_node(7, move || st2.store(true, Ordering::SeqCst));
                let s2 = Arc::clone(&s1);
                runtime::spawn_daemon(move || {
                    crate::obs::set_node(7);
                    for _ in 0..5 {
                        hit("clog.decision_appended");
                        s2.fetch_add(1, Ordering::SeqCst);
                        runtime::sleep(10);
                    }
                });
                runtime::sleep(1_000);
                let fired = plan.fired();
                assert_eq!(fired.len(), 1);
                assert_eq!(fired[0].point, "clog.decision_appended");
                assert_eq!(fired[0].node, 7);
                assert!(plan.is_down(7));
            })
            .unwrap();
        assert!(stopped.load(Ordering::SeqCst), "crash handler must run");
        assert_eq!(
            survived.load(Ordering::SeqCst),
            1,
            "only the first hit survives; the second crashes the fiber"
        );
    }

    #[test]
    fn down_node_unwinds_other_fibers_at_their_next_point() {
        let survived = Arc::new(AtomicU64::new(0));
        let s1 = Arc::clone(&survived);
        Sim::new()
            .run(move || {
                let plan = install();
                plan.arm(FaultSchedule::new().crash_at("part.after_prepare", 9, 1));
                let s2 = Arc::clone(&s1);
                runtime::spawn_daemon(move || {
                    crate::obs::set_node(9);
                    hit("part.after_prepare"); // crashes here
                    s2.fetch_add(1, Ordering::SeqCst);
                });
                let s3 = Arc::clone(&s1);
                runtime::spawn_daemon(move || {
                    crate::obs::set_node(9);
                    runtime::sleep(100); // let the first fiber crash
                    hit("part.after_commit_apply"); // node is down: unwind
                    s3.fetch_add(1, Ordering::SeqCst);
                });
                runtime::sleep(1_000);
                assert!(plan.is_down(9));
            })
            .unwrap();
        assert_eq!(survived.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn revive_lets_the_node_run_again() {
        Sim::new()
            .run(|| {
                let plan = install();
                plan.arm(FaultSchedule::new().crash_at("coord.after_votes", 5, 1));
                runtime::spawn_daemon(|| {
                    crate::obs::set_node(5);
                    hit("coord.after_votes");
                });
                runtime::sleep(100);
                assert!(plan.is_down(5));
                plan.revive(5);
                assert!(!plan.is_down(5));
                let ran = Arc::new(AtomicBool::new(false));
                let r2 = Arc::clone(&ran);
                runtime::spawn_daemon(move || {
                    crate::obs::set_node(5);
                    hit("coord.after_votes"); // fault spent: no-op now
                    r2.store(true, Ordering::SeqCst);
                });
                runtime::sleep(100);
                assert!(ran.load(Ordering::SeqCst));
                assert_eq!(plan.fired().len(), 1);
            })
            .unwrap();
    }

    #[test]
    fn other_nodes_and_other_points_are_unaffected() {
        let survived = Arc::new(AtomicU64::new(0));
        let s1 = Arc::clone(&survived);
        Sim::new()
            .run(move || {
                let plan = install();
                plan.arm(FaultSchedule::new().crash_at("part.after_prepare", 2, 1));
                let s2 = Arc::clone(&s1);
                runtime::spawn_daemon(move || {
                    crate::obs::set_node(3); // different node
                    hit("part.after_prepare");
                    hit("part.after_commit_apply"); // different point
                    s2.fetch_add(1, Ordering::SeqCst);
                });
                runtime::sleep(100);
                assert!(plan.fired().is_empty());
            })
            .unwrap();
        assert_eq!(survived.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn schedules_are_deterministic_across_runs() {
        let run = || {
            let fired = Arc::new(Mutex::new(Vec::new()));
            let f1 = Arc::clone(&fired);
            Sim::new()
                .run(move || {
                    let plan = install();
                    plan.arm(FaultSchedule::new().crash_at("store.commit_logged", 4, 3));
                    runtime::spawn_daemon(|| {
                        crate::obs::set_node(4);
                        loop {
                            runtime::sleep(17);
                            hit("store.commit_logged");
                        }
                    });
                    runtime::sleep(1_000);
                    *f1.lock() = plan.fired();
                })
                .unwrap();
            let v = fired.lock().clone();
            v
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].at, 51, "3rd hit at t=3*17");
    }
}
