//! Measurement helpers: latency histograms and closed-loop benchmark stats.

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// Sub-bucket resolution: 2^6 = 64 log-spaced buckets per octave, so the
/// worst-case quantile error is one bucket width ≈ 1/64 ≈ 1.6% — well
/// inside the 5% tolerance the tests assert against a sorted-sample
/// reference. Values below [`LINEAR_LIMIT`] get one bucket each (exact).
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;
const LINEAR_LIMIT: u64 = SUB * 2;

fn bucket_index(v: Nanos) -> usize {
    if v < LINEAR_LIMIT {
        v as usize
    } else {
        let exp = 63 - u64::from(v.leading_zeros());
        let sub = (v >> (exp - u64::from(SUB_BITS))) - SUB;
        (LINEAR_LIMIT + (exp - u64::from(SUB_BITS) - 1) * SUB + sub) as usize
    }
}

/// Lower bound of bucket `i` — the quantile representative.
fn bucket_bound(i: usize) -> Nanos {
    let i = i as u64;
    if i < LINEAR_LIMIT {
        i
    } else {
        let rel = i - LINEAR_LIMIT;
        let exp = rel / SUB + u64::from(SUB_BITS) + 1;
        let sub = rel % SUB;
        (SUB + sub) << (exp - u64::from(SUB_BITS))
    }
}

/// A bounded log-spaced-bucket histogram (HDR-style): count, sum, min and
/// max are exact; quantiles come from ~64 buckets per octave, so memory is
/// a few KiB regardless of sample count (a full-`u64`-range histogram
/// tops out under 4k buckets) and the worst-case quantile error is ≈1.6%.
///
/// It replaced an exact store-every-sample histogram: ROADMAP-5-scale
/// open-loop runs record tens of millions of samples, where an unbounded
/// `Vec` plus sort-on-quantile stops being affordable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: Nanos) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
        } else {
            self.min = self.min.min(v);
        }
        self.max = self.max.max(v);
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of samples recorded (exact).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of samples recorded, as the counter width the metrics
    /// registry uses.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample (exact); 0 when empty.
    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Merges another histogram into this one (bucket-wise addition; all
    /// exact fields stay exact).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
        } else {
            self.min = self.min.min(other.min);
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (0.0 ..= 1.0) using nearest-rank over buckets,
    /// clamped to the exact `[min, max]` envelope (so `quantile(1.0)` is
    /// the exact maximum and `quantile(0.0)` the exact minimum). Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The top rank is the largest sample, which is tracked exactly
            // — don't round it to its bucket bound.
            return self.max;
        }
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        (self.sum / self.count as u128) as Nanos
    }

    /// Largest sample (exact); 0 when empty.
    pub fn max(&self) -> Nanos {
        self.max
    }
}

/// A wall-clock stopwatch for *measurement only*.
///
/// This module is the single place in the workspace allowed to touch
/// `std::time` (treaty-lint rule L003): simulated components must take all
/// time from the virtual clock, or runs stop being deterministic and
/// replayable. Harness-level checks ("the simulation did not block real
/// time") go through this helper so the lint allowlist stays at one file.
#[derive(Debug)]
pub struct WallTimer(std::time::Instant);

/// Starts a wall-clock stopwatch. See [`WallTimer`] for when this is
/// legitimate.
pub fn wall_clock() -> WallTimer {
    WallTimer(std::time::Instant::now())
}

impl WallTimer {
    /// Whole wall-clock seconds elapsed since the stopwatch started.
    pub fn elapsed_secs(&self) -> u64 {
        self.0.elapsed().as_secs()
    }
}

/// Result of one closed-loop benchmark run: `clients` concurrent clients
/// each executed transactions back-to-back for `duration_ns` of virtual
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchStats {
    /// Label of the system variant measured.
    pub label: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Committed transactions (or operations, for network benches).
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Virtual duration of the measured window.
    pub duration_ns: Nanos,
    /// Mean latency in nanoseconds.
    pub mean_latency_ns: Nanos,
    /// 50th percentile latency.
    pub p50_latency_ns: Nanos,
    /// 99th percentile latency.
    pub p99_latency_ns: Nanos,
}

impl BenchStats {
    /// Builds stats from a latency histogram plus run metadata.
    pub fn from_histogram(
        label: impl Into<String>,
        clients: usize,
        committed: u64,
        aborted: u64,
        duration_ns: Nanos,
        hist: &mut Histogram,
    ) -> Self {
        BenchStats {
            label: label.into(),
            clients,
            committed,
            aborted,
            duration_ns,
            mean_latency_ns: hist.mean(),
            p50_latency_ns: hist.quantile(0.50),
            p99_latency_ns: hist.quantile(0.99),
        }
    }

    /// Throughput in transactions per second of virtual time.
    pub fn tps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.committed as f64 * 1e9 / self.duration_ns as f64
    }

    /// Abort rate in [0, 1].
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.mean(), 55);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2);
    }

    #[test]
    fn max_and_sum_are_incremental_across_merge() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(2);
        let mut b = Histogram::new();
        b.record(9);
        a.merge(&b);
        // `max` takes &self: no sort, no &mut.
        let shared: &Histogram = &a;
        assert_eq!(shared.max(), 9);
        assert_eq!(shared.count(), 3);
        assert_eq!(shared.sum(), 16);
        // Quantiles still work after the merge.
        assert_eq!(a.quantile(1.0), 9);
    }

    #[test]
    fn bucketed_quantiles_track_sorted_reference_within_5pct() {
        // Deterministic LCG spread over ~1k..17M ns — several octaves, so
        // the log-spaced buckets actually get exercised.
        let mut h = Histogram::new();
        let mut reference: Vec<Nanos> = Vec::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let v = 1_000 + (x >> 40);
            h.record(v);
            reference.push(v);
        }
        reference.sort_unstable();
        // count/sum/min/max stay exact under bucketing.
        let exact_sum: u128 = reference.iter().map(|&v| v as u128).sum();
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), exact_sum);
        assert_eq!(h.min(), reference[0]);
        assert_eq!(h.max(), *reference.last().unwrap());
        assert_eq!(h.quantile(1.0), h.max(), "q=1.0 is the exact max");
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * reference.len() as f64).ceil() as usize).clamp(1, reference.len());
            let want = reference[rank - 1];
            let got = h.quantile(q);
            let err = got.abs_diff(want) as f64 / want as f64;
            assert!(err <= 0.05, "q={q}: got {got}, want {want}, err {err:.4}");
        }
    }

    #[test]
    fn bucketed_memory_is_bounded() {
        let mut h = Histogram::new();
        for i in 0..1_000_000u64 {
            h.record(i * 17 + 3);
        }
        assert_eq!(h.count(), 1_000_000);
        // The bucket array is a function of the value range, not the
        // sample count: the whole u64 range needs < 4k buckets.
        assert!(bucket_index(u64::MAX) < 4_096);
    }

    #[test]
    fn bucket_index_and_bound_are_consistent() {
        for v in [0, 1, 63, 64, 127, 128, 129, 255, 256, 1_000, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            let lo = bucket_bound(i);
            assert!(lo <= v, "bound {lo} above value {v}");
            assert!(bucket_index(lo) == i, "bound of {v} lands in its own bucket");
            if i + 1 < bucket_index(u64::MAX) {
                assert!(bucket_bound(i + 1) > v, "next bucket starts after {v}");
            }
        }
    }

    #[test]
    fn tps_computation() {
        let s = BenchStats {
            label: "x".into(),
            clients: 4,
            committed: 1_000,
            aborted: 0,
            duration_ns: crate::SECONDS,
            mean_latency_ns: 0,
            p50_latency_ns: 0,
            p99_latency_ns: 0,
        };
        assert!((s.tps() - 1_000.0).abs() < 1e-9);
        assert_eq!(s.abort_rate(), 0.0);
    }
}
