//! Measurement helpers: latency histograms and closed-loop benchmark stats.

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// A simple exact histogram: stores every sample and sorts on demand.
///
/// The simulations in this repository record at most a few hundred thousand
/// samples per run, so exactness is affordable and avoids bucketing error in
/// the tail percentiles the paper plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<Nanos>,
    sorted: bool,
    /// Largest sample, tracked incrementally so [`Histogram::max`] never
    /// forces a sort (it used to re-sort after every `merge`).
    max: Nanos,
    /// Exact running sum, so `mean`/registry snapshots skip the iteration.
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: Nanos) {
        self.samples.push(v);
        self.sorted = false;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Number of samples recorded, as the counter width the metrics
    /// registry uses.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Exact sum of all samples — the registry-snapshot fast path.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merges another histogram into this one. Does not disturb `max`
    /// incrementality: no later re-sort is needed to read it.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0 ..= 1.0) using nearest-rank. Returns 0 when
    /// empty.
    pub fn quantile(&mut self, q: f64) -> Nanos {
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> Nanos {
        if self.samples.is_empty() {
            return 0;
        }
        (self.sum / self.samples.len() as u128) as Nanos
    }

    /// Largest sample; 0 when empty. O(1) — reads the incrementally
    /// tracked maximum instead of sorting.
    pub fn max(&self) -> Nanos {
        self.max
    }
}

/// A wall-clock stopwatch for *measurement only*.
///
/// This module is the single place in the workspace allowed to touch
/// `std::time` (treaty-lint rule L003): simulated components must take all
/// time from the virtual clock, or runs stop being deterministic and
/// replayable. Harness-level checks ("the simulation did not block real
/// time") go through this helper so the lint allowlist stays at one file.
#[derive(Debug)]
pub struct WallTimer(std::time::Instant);

/// Starts a wall-clock stopwatch. See [`WallTimer`] for when this is
/// legitimate.
pub fn wall_clock() -> WallTimer {
    WallTimer(std::time::Instant::now())
}

impl WallTimer {
    /// Whole wall-clock seconds elapsed since the stopwatch started.
    pub fn elapsed_secs(&self) -> u64 {
        self.0.elapsed().as_secs()
    }
}

/// Result of one closed-loop benchmark run: `clients` concurrent clients
/// each executed transactions back-to-back for `duration_ns` of virtual
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchStats {
    /// Label of the system variant measured.
    pub label: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Committed transactions (or operations, for network benches).
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Virtual duration of the measured window.
    pub duration_ns: Nanos,
    /// Mean latency in nanoseconds.
    pub mean_latency_ns: Nanos,
    /// 50th percentile latency.
    pub p50_latency_ns: Nanos,
    /// 99th percentile latency.
    pub p99_latency_ns: Nanos,
}

impl BenchStats {
    /// Builds stats from a latency histogram plus run metadata.
    pub fn from_histogram(
        label: impl Into<String>,
        clients: usize,
        committed: u64,
        aborted: u64,
        duration_ns: Nanos,
        hist: &mut Histogram,
    ) -> Self {
        BenchStats {
            label: label.into(),
            clients,
            committed,
            aborted,
            duration_ns,
            mean_latency_ns: hist.mean(),
            p50_latency_ns: hist.quantile(0.50),
            p99_latency_ns: hist.quantile(0.99),
        }
    }

    /// Throughput in transactions per second of virtual time.
    pub fn tps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.committed as f64 * 1e9 / self.duration_ns as f64
    }

    /// Abort rate in [0, 1].
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.mean(), 55);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2);
    }

    #[test]
    fn max_and_sum_are_incremental_across_merge() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(2);
        let mut b = Histogram::new();
        b.record(9);
        a.merge(&b);
        // `max` takes &self: no sort, no &mut.
        let shared: &Histogram = &a;
        assert_eq!(shared.max(), 9);
        assert_eq!(shared.count(), 3);
        assert_eq!(shared.sum(), 16);
        // Quantiles still work after the merge.
        assert_eq!(a.quantile(1.0), 9);
    }

    #[test]
    fn tps_computation() {
        let s = BenchStats {
            label: "x".into(),
            clients: 4,
            committed: 1_000,
            aborted: 0,
            duration_ns: crate::SECONDS,
            mean_latency_ns: 0,
            p50_latency_ns: 0,
            p99_latency_ns: 0,
        };
        assert!((s.tps() - 1_000.0).abs() < 1e-9);
        assert_eq!(s.abort_rate(), 0.0);
    }
}
