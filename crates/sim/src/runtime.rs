//! Cooperative fiber runtime with a virtual clock.
//!
//! Exactly one fiber executes at any instant; control is handed between the
//! scheduler thread (the caller of [`Sim::run`]) and fiber threads through a
//! baton of mutex/condvar pairs. This gives the key property the rest of the
//! system builds on: **between two yield points a fiber runs atomically with
//! respect to every other fiber**, so higher-level primitives (wait queues,
//! channels, lock tables) never race — exactly like the userland scheduler
//! Treaty runs inside the enclave (§VII-C of the paper).
//!
//! Blocking primitives ([`sleep`], [`park`], [`park_timeout`], [`yield_now`])
//! may only be called from inside a fiber; they panic otherwise. Pure reads
//! ([`now`], [`in_fiber`], [`current`]) are safe anywhere.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::Nanos;

/// Identifies a fiber within one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiberId(pub u64);

impl fmt::Display for FiberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fiber#{}", self.0)
    }
}

/// Why a parked fiber resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// Another fiber called [`unpark`] on this fiber.
    Signal,
    /// The timeout passed to [`park_timeout`] (or [`sleep`]) elapsed.
    Timeout,
}

/// Error returned by [`Sim::run`].
#[derive(Debug, thiserror::Error)]
pub enum SimError {
    /// A fiber panicked; the message is the panic payload if it was a string.
    #[error("fiber panicked: {0}")]
    FiberPanic(String),
    /// No fiber is runnable and no timer is pending, but non-daemon fibers
    /// are still parked — the simulated system deadlocked.
    #[error("simulation deadlock: {parked} fiber(s) parked with no pending event at t={at}ns")]
    Deadlock {
        /// Number of parked non-daemon fibers.
        parked: usize,
        /// Virtual time at which the deadlock was detected.
        at: Nanos,
    },
}

/// Summary returned by a successful [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimReport {
    /// Final virtual time.
    pub virtual_ns: Nanos,
    /// Total fibers that ran to completion (including daemons shut down).
    pub fibers: u64,
    /// Total scheduler switches performed.
    pub switches: u64,
}

struct ParkCell {
    go: Mutex<bool>,
    cv: Condvar,
}

impl ParkCell {
    fn new() -> Arc<Self> {
        Arc::new(ParkCell {
            go: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
    fn release(&self) {
        let mut g = self.go.lock();
        *g = true;
        self.cv.notify_one();
    }
    fn wait(&self) {
        let mut g = self.go.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FiberState {
    Runnable,
    Running,
    Parked,
    Done,
}

struct FiberSlot {
    cell: Arc<ParkCell>,
    tag: &'static str,
    state: FiberState,
    /// Wakeup generation; a pending timer is only valid if its recorded
    /// generation matches. Bumped on every park and every unpark.
    generation: u64,
    wake_reason: WakeReason,
    daemon: bool,
    join_waiters: Vec<FiberId>,
    /// Node (fabric endpoint) this fiber currently executes for; inherited
    /// by spawned fibers. 0 = untagged. Used as the trace `pid`.
    obs_node: u32,
    /// Distributed transaction in scope; inherited by spawned fibers.
    obs_txn: u64,
}

struct Inner {
    now: Nanos,
    next_fiber: u64,
    next_seq: u64,
    run_queue: VecDeque<FiberId>,
    timers: BinaryHeap<Reverse<(Nanos, u64, u64, u64)>>, // (time, seq, fiber, generation)
    fibers: HashMap<u64, FiberSlot>,
    live_non_daemon: usize,
    shutting_down: bool,
    panic_msg: Option<String>,
    switches: u64,
    completed: u64,
    /// Per-`Sim` observability hub; `None` until a root fiber installs one.
    obs: Option<Arc<treaty_obs::Obs>>,
    /// Per-`Sim` crash-injection plan; `None` until a harness installs one.
    crash: Option<Arc<crate::crashpoint::CrashPlan>>,
}

struct Shared {
    inner: Mutex<Inner>,
    sched_cell: Arc<ParkCell>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Shared>, u64)>> =
        const { std::cell::RefCell::new(None) };
}

/// Payload used to unwind fibers when the simulation shuts down early
/// (panic elsewhere, or daemons outliving all normal fibers).
struct ShutdownSignal;

/// A deterministic discrete-event simulation.
///
/// Construct with [`Sim::new`], then call [`Sim::run`] with the root fiber's
/// body. `run` returns once every non-daemon fiber has completed.
pub struct Sim {
    _priv: (),
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a new simulation.
    pub fn new() -> Self {
        Sim { _priv: () }
    }

    /// Runs `root` as the first fiber and drives the simulation until every
    /// non-daemon fiber has finished.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FiberPanic`] if any fiber panics and
    /// [`SimError::Deadlock`] if all remaining fibers are parked with no
    /// pending timer.
    pub fn run<F>(self, root: F) -> Result<SimReport, SimError>
    where
        F: FnOnce() + Send + 'static,
    {
        // Shutdown and injected-crash unwinds are control flow, not
        // failures: silence their default panic-hook output (once,
        // process-wide, delegating everything else to the previous hook).
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                if payload.downcast_ref::<ShutdownSignal>().is_none()
                    && payload
                        .downcast_ref::<crate::crashpoint::CrashUnwind>()
                        .is_none()
                {
                    prev(info);
                }
            }));
        });
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                now: 0,
                next_fiber: 0,
                next_seq: 0,
                run_queue: VecDeque::new(),
                timers: BinaryHeap::new(),
                fibers: HashMap::new(),
                live_non_daemon: 0,
                shutting_down: false,
                panic_msg: None,
                switches: 0,
                completed: 0,
                obs: None,
                crash: None,
            }),
            sched_cell: ParkCell::new(),
        });

        // Optional stall watchdog (TREATY_SIM_WATCHDOG=1): reports when no
        // scheduler switch has happened for several wall seconds, which
        // almost always means a fiber blocked on a real OS primitive.
        if std::env::var_os("TREATY_SIM_WATCHDOG").is_some() {
            let shared_w = Arc::downgrade(&shared);
            std::thread::spawn(move || {
                let mut last = (0u64, 0u64);
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(5));
                    let shared = match shared_w.upgrade() {
                        Some(s) => s,
                        None => return,
                    };
                    let inner = shared.inner.lock();
                    let cur = (inner.switches, inner.now);
                    if cur == last {
                        eprintln!(
                            "[sim-watchdog] STALLED: switches={} vnow={}ns live={} runq={} timers={} running={:?}",
                            inner.switches,
                            inner.now,
                            inner.live_non_daemon,
                            inner.run_queue.len(),
                            inner.timers.len(),
                            inner
                                .fibers
                                .iter()
                                .filter(|(_, s)| s.state == FiberState::Running)
                                .map(|(id, s)| (*id, s.tag))
                                .collect::<Vec<_>>(),
                        );
                    }
                    last = cur;
                }
            });
        }
        spawn_fiber(&shared, Box::new(root), false, 0, 0);
        scheduler_loop(&shared)
    }
}

fn spawn_fiber(
    shared: &Arc<Shared>,
    body: Box<dyn FnOnce() + Send>,
    daemon: bool,
    obs_node: u32,
    obs_txn: u64,
) -> FiberId {
    let cell = ParkCell::new();
    let id;
    {
        let mut inner = shared.inner.lock();
        id = inner.next_fiber;
        inner.next_fiber += 1;
        inner.fibers.insert(
            id,
            FiberSlot {
                cell: cell.clone(),
                tag: "",
                state: FiberState::Runnable,
                generation: 0,
                wake_reason: WakeReason::Signal,
                daemon,
                join_waiters: Vec::new(),
                obs_node,
                obs_txn,
            },
        );
        if !daemon {
            inner.live_non_daemon += 1;
        }
        inner.run_queue.push_back(FiberId(id));
    }

    let shared2 = Arc::clone(shared);
    let cell2 = cell;
    std::thread::Builder::new()
        .name(format!("sim-fiber-{id}"))
        .spawn(move || {
            cell2.wait();
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared2), id)));
            let result = catch_unwind(AssertUnwindSafe(body));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let mut inner = shared2.inner.lock();
            match result {
                Ok(()) => {}
                Err(payload) => {
                    // Shutdown and injected-crash unwinds terminate the
                    // fiber without failing the simulation.
                    if payload.downcast_ref::<ShutdownSignal>().is_none()
                        && payload
                            .downcast_ref::<crate::crashpoint::CrashUnwind>()
                            .is_none()
                    {
                        let msg = panic_message(&payload);
                        if inner.panic_msg.is_none() {
                            inner.panic_msg = Some(msg);
                        }
                    }
                }
            }
            finish_fiber(&mut inner, id);
            drop(inner);
            shared2.sched_cell.release();
        })
        .expect("failed to spawn fiber thread");
    FiberId(id)
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn finish_fiber(inner: &mut Inner, id: u64) {
    let waiters = {
        let slot = inner.fibers.get_mut(&id).expect("finishing unknown fiber");
        slot.state = FiberState::Done;
        if !slot.daemon {
            inner.live_non_daemon -= 1;
        }
        std::mem::take(&mut slot.join_waiters)
    };
    inner.completed += 1;
    for w in waiters {
        wake_fiber(inner, w.0, WakeReason::Signal);
    }
}

fn wake_fiber(inner: &mut Inner, id: u64, reason: WakeReason) {
    if let Some(slot) = inner.fibers.get_mut(&id) {
        if slot.state == FiberState::Parked {
            slot.state = FiberState::Runnable;
            slot.generation += 1; // invalidate any pending timer
            slot.wake_reason = reason;
            inner.run_queue.push_back(FiberId(id));
        }
    }
}

fn scheduler_loop(shared: &Arc<Shared>) -> Result<SimReport, SimError> {
    loop {
        let next: Option<u64> = {
            let mut inner = shared.inner.lock();

            if inner.panic_msg.is_some() && !inner.shutting_down {
                inner.shutting_down = true;
            }
            if inner.live_non_daemon == 0 && !inner.shutting_down {
                inner.shutting_down = true;
            }

            if inner.shutting_down {
                // Wake every remaining fiber so it can unwind via ShutdownSignal.
                let parked: Vec<u64> = inner
                    .fibers
                    .iter()
                    .filter(|(_, s)| s.state == FiberState::Parked)
                    .map(|(id, _)| *id)
                    .collect();
                for id in parked {
                    wake_fiber(&mut inner, id, WakeReason::Signal);
                }
            }

            if let Some(FiberId(id)) = inner.run_queue.pop_front() {
                let slot = inner.fibers.get_mut(&id).expect("runnable fiber missing");
                debug_assert_eq!(slot.state, FiberState::Runnable);
                slot.state = FiberState::Running;
                inner.switches += 1;
                Some(id)
            } else {
                // Advance virtual time to the next valid timer.
                let mut fired = None;
                while let Some(Reverse((t, _seq, fid, generation))) = inner.timers.pop() {
                    let valid = inner
                        .fibers
                        .get(&fid)
                        .map(|s| s.state == FiberState::Parked && s.generation == generation)
                        .unwrap_or(false);
                    if valid {
                        fired = Some((t, fid));
                        break;
                    }
                }
                match fired {
                    Some((t, fid)) => {
                        debug_assert!(t >= inner.now, "timer in the past");
                        inner.now = t;
                        wake_fiber(&mut inner, fid, WakeReason::Timeout);
                        continue;
                    }
                    None => {
                        let parked = inner
                            .fibers
                            .values()
                            .filter(|s| !s.daemon && s.state == FiberState::Parked)
                            .count();
                        if parked > 0 && !inner.shutting_down {
                            inner.shutting_down = true;
                            // Record deadlock, then keep looping to unwind.
                            if inner.panic_msg.is_none() {
                                let at = inner.now;
                                drop(inner);
                                // Unwind all fibers before reporting.
                                unwind_all(shared);
                                return Err(SimError::Deadlock { parked, at });
                            }
                            continue;
                        }
                        // Finished (or fully shut down).
                        let report = SimReport {
                            virtual_ns: inner.now,
                            fibers: inner.completed,
                            switches: inner.switches,
                        };
                        let panic_msg = inner.panic_msg.clone();
                        drop(inner);
                        return match panic_msg {
                            Some(msg) => Err(SimError::FiberPanic(msg)),
                            None => Ok(report),
                        };
                    }
                }
            }
        };

        if let Some(id) = next {
            let cell = {
                let inner = shared.inner.lock();
                Arc::clone(&inner.fibers[&id].cell)
            };
            cell.release();
            shared.sched_cell.wait();
        }
    }
}

fn unwind_all(shared: &Arc<Shared>) {
    loop {
        let next = {
            let mut inner = shared.inner.lock();
            let parked: Vec<u64> = inner
                .fibers
                .iter()
                .filter(|(_, s)| s.state == FiberState::Parked)
                .map(|(id, _)| *id)
                .collect();
            for id in parked {
                wake_fiber(&mut inner, id, WakeReason::Signal);
            }
            match inner.run_queue.pop_front() {
                Some(FiberId(id)) => {
                    let slot = inner.fibers.get_mut(&id).unwrap();
                    slot.state = FiberState::Running;
                    Some(id)
                }
                None => None,
            }
        };
        match next {
            Some(id) => {
                let cell = {
                    let inner = shared.inner.lock();
                    Arc::clone(&inner.fibers[&id].cell)
                };
                cell.release();
                shared.sched_cell.wait();
            }
            None => return,
        }
    }
}

fn with_current<R>(f: impl FnOnce(&Arc<Shared>, u64) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (shared, id) = b
            .as_ref()
            .expect("this operation may only be used inside a treaty-sim fiber");
        f(shared, *id)
    })
}

/// Hands control back to the scheduler. Must be called with the fiber's state
/// already updated (Parked or re-queued Runnable).
fn switch_out(shared: &Arc<Shared>, id: u64) {
    let cell = {
        let inner = shared.inner.lock();
        Arc::clone(&inner.fibers[&id].cell)
    };
    shared.sched_cell.release();
    cell.wait();
    // On resume: if the sim is shutting down, unwind this fiber.
    let shutting_down = shared.inner.lock().shutting_down;
    if shutting_down {
        std::panic::panic_any(ShutdownSignal);
    }
}

/// Tags the current fiber for diagnostics (shown by the stall watchdog).
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn set_tag(tag: &'static str) {
    with_current(|shared, id| {
        if let Some(slot) = shared.inner.lock().fibers.get_mut(&id) {
            slot.tag = tag;
        }
    });
}

/// Returns `true` if the calling thread is a simulation fiber.
pub fn in_fiber() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The current fiber's id.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn current() -> FiberId {
    with_current(|_, id| FiberId(id))
}

/// Current virtual time.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn now() -> Nanos {
    with_current(|shared, _| shared.inner.lock().now)
}

/// Spawns a new fiber. The returned [`FiberId`] can be passed to [`unpark`]
/// and [`join`].
///
/// Spawning does **not** yield: the caller keeps running and the new
/// fiber starts at the next scheduling point. The concurrency lint's
/// yield-point vocabulary (rule L007) depends on this — if spawning ever
/// starts parking the caller, add it to `FREE_YIELDS` in
/// `crates/lint/src/registry.rs`.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> FiberId {
    with_current(|shared, id| {
        let (node, txn) = inherited_obs_ctx(shared, id);
        spawn_fiber(shared, Box::new(f), false, node, txn)
    })
}

/// Spawns a *daemon* fiber: the simulation may end while daemons are still
/// parked (they are then unwound). Use for server loops.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn spawn_daemon<F: FnOnce() + Send + 'static>(f: F) -> FiberId {
    with_current(|shared, id| {
        let (node, txn) = inherited_obs_ctx(shared, id);
        spawn_fiber(shared, Box::new(f), true, node, txn)
    })
}

/// Observability context a child fiber inherits from its spawner.
fn inherited_obs_ctx(shared: &Arc<Shared>, id: u64) -> (u32, u64) {
    let inner = shared.inner.lock();
    inner
        .fibers
        .get(&id)
        .map(|s| (s.obs_node, s.obs_txn))
        .unwrap_or((0, 0))
}

/// Installs (or clears) the observability hub for the current simulation.
/// Called by `crate::obs::install` from inside the root fiber.
pub(crate) fn obs_install(obs: Option<Arc<treaty_obs::Obs>>) {
    with_current(|shared, _| {
        shared.inner.lock().obs = obs;
    });
}

/// Tags the current fiber (and future children) as executing for `node`.
/// No-op outside a fiber.
pub(crate) fn obs_set_node(node: u32) {
    let _ = try_with_current(|shared, id| {
        if let Some(slot) = shared.inner.lock().fibers.get_mut(&id) {
            slot.obs_node = node;
        }
    });
}

/// Sets the transaction in scope for the current fiber, returning the
/// previous value so callers can restore it. Returns 0 outside a fiber.
pub(crate) fn obs_set_txn(txn: u64) -> u64 {
    try_with_current(|shared, id| {
        let mut inner = shared.inner.lock();
        match inner.fibers.get_mut(&id) {
            Some(slot) => std::mem::replace(&mut slot.obs_txn, txn),
            None => 0,
        }
    })
    .unwrap_or(0)
}

/// Everything needed to stamp one trace event, read under a single lock:
/// `(hub, virtual now, node, fiber id, txn)`. `None` when called outside a
/// fiber or when no hub is installed — instrumentation then no-ops.
pub(crate) fn obs_ctx() -> Option<(Arc<treaty_obs::Obs>, Nanos, u32, u64, u64)> {
    try_with_current(|shared, id| {
        let inner = shared.inner.lock();
        let obs = inner.obs.clone()?;
        let slot = inner.fibers.get(&id)?;
        Some((obs, inner.now, slot.obs_node, id, slot.obs_txn))
    })
    .flatten()
}

/// Installs (or clears) the crash-injection plan for the current
/// simulation. Called by `crate::crashpoint::install` from the root fiber.
pub(crate) fn crash_install(plan: Option<Arc<crate::crashpoint::CrashPlan>>) {
    with_current(|shared, _| {
        shared.inner.lock().crash = plan;
    });
}

/// The installed crash plan, if any. `None` outside a fiber.
pub(crate) fn crash_installed() -> Option<Arc<crate::crashpoint::CrashPlan>> {
    try_with_current(|shared, _| shared.inner.lock().crash.clone()).flatten()
}

/// Everything a crash point needs, read under a single lock: `(plan, node
/// this fiber executes for, virtual now)`. `None` when called outside a
/// fiber or with no plan installed — crash points then no-op.
pub(crate) fn crash_ctx() -> Option<(Arc<crate::crashpoint::CrashPlan>, u32, Nanos)> {
    try_with_current(|shared, id| {
        let inner = shared.inner.lock();
        let plan = inner.crash.clone()?;
        let slot = inner.fibers.get(&id)?;
        Some((plan, slot.obs_node, inner.now))
    })
    .flatten()
}

/// Like [`with_current`] but returns `None` outside a fiber instead of
/// panicking — observability must never abort an un-instrumented context.
fn try_with_current<R>(f: impl FnOnce(&Arc<Shared>, u64) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (shared, id) = b.as_ref()?;
        Some(f(shared, *id))
    })
}

/// Advances this fiber's virtual time by `ns` nanoseconds.
///
/// Other fibers run during the interval; no wall-clock time passes beyond
/// scheduling overhead.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn sleep(ns: Nanos) {
    if ns == 0 {
        yield_now();
        return;
    }
    let reason = park_timeout(ns);
    debug_assert_eq!(reason, WakeReason::Timeout, "sleep woken early by unpark");
}

/// Parks the current fiber until another fiber calls [`unpark`] on it.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn park() {
    with_current(|shared, id| {
        {
            let mut inner = shared.inner.lock();
            let slot = inner.fibers.get_mut(&id).unwrap();
            slot.state = FiberState::Parked;
            slot.generation += 1;
        }
        switch_out(shared, id);
    });
}

/// Parks the current fiber until [`unpark`] or until `ns` virtual nanoseconds
/// elapse, whichever is first. Returns why it woke.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn park_timeout(ns: Nanos) -> WakeReason {
    with_current(|shared, id| {
        {
            let mut inner = shared.inner.lock();
            let deadline = inner.now.saturating_add(ns);
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let slot = inner.fibers.get_mut(&id).unwrap();
            slot.state = FiberState::Parked;
            slot.generation += 1;
            let generation = slot.generation;
            inner.timers.push(Reverse((deadline, seq, id, generation)));
        }
        switch_out(shared, id);
        let inner = shared.inner.lock();
        inner.fibers[&id].wake_reason
    })
}

/// Makes a parked fiber runnable. Returns `true` if the fiber was parked.
///
/// Calling `unpark` on a running, runnable, or finished fiber is a no-op —
/// there are no "wakeup tokens". Primitives built on park/unpark must
/// enqueue themselves *before* parking (safe because fibers are cooperative:
/// no other fiber runs between the enqueue and the park).
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn unpark(target: FiberId) -> bool {
    with_current(|shared, _| {
        let mut inner = shared.inner.lock();
        let was_parked = inner
            .fibers
            .get(&target.0)
            .map(|s| s.state == FiberState::Parked)
            .unwrap_or(false);
        if was_parked {
            wake_fiber(&mut inner, target.0, WakeReason::Signal);
        }
        was_parked
    })
}

/// Yields to the scheduler, letting every other runnable fiber run before
/// this one resumes (round-robin).
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn yield_now() {
    with_current(|shared, id| {
        {
            let mut inner = shared.inner.lock();
            let slot = inner.fibers.get_mut(&id).unwrap();
            slot.state = FiberState::Runnable;
            inner.run_queue.push_back(FiberId(id));
        }
        switch_out(shared, id);
    });
}

/// Blocks the current fiber until `target` completes. Returns immediately if
/// it already has.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn join(target: FiberId) {
    let done = with_current(|shared, id| {
        let mut inner = shared.inner.lock();
        match inner.fibers.get_mut(&target.0) {
            None
            | Some(FiberSlot {
                state: FiberState::Done,
                ..
            }) => true,
            Some(_) => {
                inner
                    .fibers
                    .get_mut(&target.0)
                    .unwrap()
                    .join_waiters
                    .push(FiberId(id));
                false
            }
        }
    });
    if !done {
        park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_root_finishes_at_time_zero() {
        let report = Sim::new().run(|| {}).unwrap();
        assert_eq!(report.virtual_ns, 0);
        assert_eq!(report.fibers, 1);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let wall = crate::stats::wall_clock();
        let report = Sim::new()
            .run(|| {
                sleep(5 * crate::SECONDS);
            })
            .unwrap();
        assert_eq!(report.virtual_ns, 5 * crate::SECONDS);
        assert!(
            wall.elapsed_secs() < 2,
            "virtual sleep must not block wall time"
        );
    }

    #[test]
    fn fibers_interleave_deterministically() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        Sim::new()
            .run(move || {
                let o2 = Arc::clone(&o1);
                let o3 = Arc::clone(&o1);
                let a = spawn(move || {
                    o2.lock().push("a1");
                    sleep(100);
                    o2.lock().push("a2");
                });
                let b = spawn(move || {
                    o3.lock().push("b1");
                    sleep(50);
                    o3.lock().push("b2");
                });
                join(a);
                join(b);
            })
            .unwrap();
        assert_eq!(*order.lock(), vec!["a1", "b1", "b2", "a2"]);
    }

    #[test]
    fn unpark_wakes_before_timeout() {
        Sim::new()
            .run(|| {
                let me = current();
                spawn(move || {
                    sleep(10);
                    unpark(me);
                });
                let reason = park_timeout(1_000_000);
                assert_eq!(reason, WakeReason::Signal);
                assert_eq!(now(), 10);
            })
            .unwrap();
    }

    #[test]
    fn park_timeout_fires() {
        Sim::new()
            .run(|| {
                let reason = park_timeout(123);
                assert_eq!(reason, WakeReason::Timeout);
                assert_eq!(now(), 123);
            })
            .unwrap();
    }

    #[test]
    fn fiber_panic_propagates() {
        let err = Sim::new()
            .run(|| {
                spawn(|| panic!("boom in child"));
                sleep(1_000);
            })
            .unwrap_err();
        match err {
            SimError::FiberPanic(msg) => assert!(msg.contains("boom in child")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn deadlock_detected() {
        let err = Sim::new().run(|| park()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { parked: 1, .. }));
    }

    #[test]
    fn daemons_do_not_keep_sim_alive() {
        let report = Sim::new()
            .run(|| {
                spawn_daemon(|| loop {
                    sleep(1_000_000);
                });
                sleep(500);
            })
            .unwrap();
        assert_eq!(report.virtual_ns, 500);
    }

    #[test]
    fn join_on_finished_fiber_returns_immediately() {
        Sim::new()
            .run(|| {
                let f = spawn(|| {});
                sleep(1);
                join(f);
                join(f); // second join is a no-op
            })
            .unwrap();
    }

    #[test]
    fn many_fibers_shared_counter() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        Sim::new()
            .run(move || {
                let handles: Vec<_> = (0..100)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        spawn(move || {
                            sleep(i % 7);
                            c.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    join(h);
                }
            })
            .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn yield_now_is_round_robin() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        Sim::new()
            .run(move || {
                let o1 = Arc::clone(&o);
                let o2 = Arc::clone(&o);
                let a = spawn(move || {
                    for i in 0..3 {
                        o1.lock().push(format!("a{i}"));
                        yield_now();
                    }
                });
                let b = spawn(move || {
                    for i in 0..3 {
                        o2.lock().push(format!("b{i}"));
                        yield_now();
                    }
                });
                join(a);
                join(b);
            })
            .unwrap();
        assert_eq!(*order.lock(), vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn nested_spawn_runs() {
        let flag = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&flag);
        Sim::new()
            .run(move || {
                let f2 = Arc::clone(&f);
                let outer = spawn(move || {
                    let f3 = Arc::clone(&f2);
                    let inner = spawn(move || {
                        f3.store(42, Ordering::SeqCst);
                    });
                    join(inner);
                });
                join(outer);
            })
            .unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn timers_with_same_deadline_fire_in_creation_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        Sim::new()
            .run(move || {
                let mut handles = Vec::new();
                for i in 0..5 {
                    let o = Arc::clone(&o);
                    handles.push(spawn(move || {
                        sleep(100);
                        o.lock().push(i);
                    }));
                }
                for h in handles {
                    join(h);
                }
            })
            .unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }
}
