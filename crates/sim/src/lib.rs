//! Deterministic discrete-event simulation runtime and cost models for the
//! Treaty reproduction.
//!
//! The Treaty paper (DSN 2022) evaluates on a 3-node Intel SGX cluster.
//! This crate replaces that testbed with a *virtual-time* runtime: the whole
//! cluster (server nodes, clients, the trusted counter service) runs as
//! cooperative [fibers](runtime::spawn) on a single logical timeline, and
//! every hardware effect the paper measures — SGX world switches, SCONE
//! async syscalls, EPC paging, NIC/wire time, SSD flushes, ROTE counter
//! rounds — is charged through an explicit, documented [`CostModel`].
//!
//! Because fibers are scheduled deterministically (FIFO run queue, totally
//! ordered timer heap) a simulation with a fixed seed reproduces the same
//! virtual-time result on every run, which makes the paper's figures
//! regenerable as stable ratios.
//!
//! # Example
//!
//! ```
//! use treaty_sim::runtime::{Sim, sleep, now};
//!
//! let report = Sim::new().run(|| {
//!     sleep(1_000_000); // one virtual millisecond, zero wall time
//!     assert_eq!(now(), 1_000_000);
//! }).unwrap();
//! assert_eq!(report.virtual_ns, 1_000_000);
//! ```

pub mod costs;
pub mod crashpoint;
pub mod obs;
pub mod profile;
pub mod runtime;
pub mod stats;

pub use costs::{CostModel, Transport};
pub use profile::{SecurityProfile, TeeMode};
pub use runtime::{FiberId, Sim, SimReport};
pub use stats::{BenchStats, Histogram};

/// Virtual time in nanoseconds since simulation start.
pub type Nanos = u64;

/// One virtual microsecond, in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One virtual millisecond, in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One virtual second, in [`Nanos`].
pub const SECONDS: Nanos = 1_000_000_000;
