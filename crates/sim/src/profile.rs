//! Security profiles — the system variants compared throughout §VIII.
//!
//! Every figure in the paper compares a fixed set of variants that differ in
//! which protections are active. A [`SecurityProfile`] captures one such
//! variant; constructors exist for each named system.

use serde::{Deserialize, Serialize};

/// Where the storage engine and transaction layer execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TeeMode {
    /// Outside any enclave — no shielding costs, no protection.
    Native,
    /// Inside an SGX enclave via SCONE: shielded syscalls, boundary copies,
    /// MEE-priced memory, limited EPC.
    Scone,
}

/// One evaluated system variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecurityProfile {
    /// Execution environment.
    pub tee: TeeMode,
    /// Encrypt values, log records and network payloads (confidentiality).
    pub encryption: bool,
    /// Hash/MAC persistent blocks and messages (integrity). The paper's
    /// RocksDB baseline runs without authentication; every Treaty variant
    /// authenticates.
    pub authentication: bool,
    /// Run the stabilization protocol: log entries carry trusted-counter
    /// values and commits wait for distributed rollback protection
    /// (freshness).
    pub stabilization: bool,
}

impl SecurityProfile {
    /// The `RocksDB` / `DS-RocksDB` baseline: native, fully unprotected.
    pub fn rocksdb() -> Self {
        SecurityProfile {
            tee: TeeMode::Native,
            encryption: false,
            authentication: false,
            stabilization: false,
        }
    }

    /// `Native Treaty`: Treaty's engine outside the enclave, authenticated
    /// structures, no encryption, no stabilization.
    pub fn native_treaty() -> Self {
        SecurityProfile {
            authentication: true,
            ..Self::rocksdb()
        }
    }

    /// `Native Treaty w/ Enc`.
    pub fn native_treaty_enc() -> Self {
        SecurityProfile {
            encryption: true,
            ..Self::native_treaty()
        }
    }

    /// `Treaty w/o Enc` (SCONE).
    pub fn treaty_no_enc() -> Self {
        SecurityProfile {
            tee: TeeMode::Scone,
            ..Self::native_treaty()
        }
    }

    /// `Treaty w/ Enc` (SCONE).
    pub fn treaty_enc() -> Self {
        SecurityProfile {
            encryption: true,
            ..Self::treaty_no_enc()
        }
    }

    /// `Treaty w/ Enc w/ Stab` (SCONE) — the full system.
    pub fn treaty_full() -> Self {
        SecurityProfile {
            stabilization: true,
            ..Self::treaty_enc()
        }
    }

    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match (
            self.tee,
            self.encryption,
            self.authentication,
            self.stabilization,
        ) {
            (TeeMode::Native, false, false, false) => "RocksDB (native)",
            (TeeMode::Native, false, true, false) => "Native Treaty",
            (TeeMode::Native, true, true, false) => "Native Treaty w/ Enc",
            (TeeMode::Scone, false, true, false) => "Treaty w/o Enc",
            (TeeMode::Scone, true, true, false) => "Treaty w/ Enc",
            (TeeMode::Scone, true, true, true) => "Treaty w/ Enc w/ Stab",
            _ => "custom profile",
        }
    }

    /// The six single-node variants of Figs. 6 and 7, in paper order.
    pub fn single_node_lineup() -> [SecurityProfile; 6] {
        [
            Self::rocksdb(),
            Self::native_treaty(),
            Self::native_treaty_enc(),
            Self::treaty_no_enc(),
            Self::treaty_enc(),
            Self::treaty_full(),
        ]
    }

    /// The four distributed variants of Figs. 3 and 5, in paper order.
    pub fn distributed_lineup() -> [SecurityProfile; 4] {
        [
            Self::rocksdb(), // DS-RocksDB
            Self::treaty_no_enc(),
            Self::treaty_enc(),
            Self::treaty_full(),
        ]
    }
}

impl Default for SecurityProfile {
    /// Defaults to the full system, like a production deployment would.
    fn default() -> Self {
        Self::treaty_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_match_paper_legends() {
        let labels: Vec<_> = SecurityProfile::single_node_lineup()
            .iter()
            .map(|p| p.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "RocksDB (native)",
                "Native Treaty",
                "Native Treaty w/ Enc",
                "Treaty w/o Enc",
                "Treaty w/ Enc",
                "Treaty w/ Enc w/ Stab",
            ]
        );
    }

    #[test]
    fn full_profile_enables_everything() {
        let p = SecurityProfile::treaty_full();
        assert_eq!(p.tee, TeeMode::Scone);
        assert!(p.encryption && p.authentication && p.stabilization);
    }

    #[test]
    fn baseline_disables_everything() {
        let p = SecurityProfile::rocksdb();
        assert_eq!(p.tee, TeeMode::Native);
        assert!(!p.encryption && !p.authentication && !p.stabilization);
    }
}
