//! The calibrated cost model standing in for the paper's testbed.
//!
//! Every constant is a virtual-time charge for one hardware or OS effect
//! that the Treaty paper measures but that this reproduction cannot exercise
//! on real hardware. Sources: the Treaty paper itself (§II, §VIII), the
//! SPEICHER paper (FAST'19), the SCONE paper (OSDI'16), the eRPC paper
//! (NSDI'19), and ROTE (USENIX Security'17). Absolute values are
//! order-of-magnitude calibrations; the evaluation reports *ratios*, which
//! are insensitive to common scaling.

use serde::{Deserialize, Serialize};

use crate::profile::TeeMode;
use crate::Nanos;

/// Network transport flavours evaluated in §VIII-E (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Kernel sockets, TCP (iPerf-TCP baseline).
    KernelTcp,
    /// Kernel sockets, UDP (iPerf-UDP baseline). Messages larger than the
    /// MTU are dropped, as observed in the paper.
    KernelUdp,
    /// Kernel-bypass userspace I/O (eRPC over DPDK) — Treaty's transport.
    Dpdk,
}

/// Per-message CPU/wire cost breakdown computed by [`CostModel::net_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCharge {
    /// CPU time charged to the sender before the message hits the wire.
    pub sender_cpu: Nanos,
    /// Time on the wire (serialization at link rate + propagation).
    pub wire: Nanos,
    /// CPU time charged to the receiver to take delivery.
    pub receiver_cpu: Nanos,
    /// Whether the fabric drops the message (e.g. UDP above the MTU).
    pub dropped: bool,
}

impl NetCharge {
    /// Total one-way latency if the message is delivered.
    pub fn one_way(&self) -> Nanos {
        self.sender_cpu + self.wire + self.receiver_cpu
    }
}

/// The full cost model. Construct via [`CostModel::default`] and override
/// individual fields for ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---- TEE / SCONE -----------------------------------------------------
    /// A synchronous enclave world switch (EENTER/EEXIT + TLB flush),
    /// ~8 µs (SCONE, Intel SGX Explained).
    pub world_switch_ns: Nanos,
    /// One SCONE *asynchronous* syscall (no world switch, but queueing and
    /// shielding), ~2.5 µs.
    pub scone_syscall_ns: Nanos,
    /// A native Linux syscall, ~0.6 µs.
    pub native_syscall_ns: Nanos,
    /// Copying one KiB between enclave and host memory (one direction),
    /// including SCONE's shielding of the buffer. Calibrated against the
    /// paper's Fig. 8 (iPerf-TCP under SCONE runs up to 8x below native,
    /// dominated by the enclave<->host<->kernel double copy).
    pub copy_ns_per_kib: Nanos,
    /// An EPC page fault (eviction + reload through the MEE), ~40 µs.
    pub epc_fault_ns: Nanos,
    /// Multiplier (percent) applied to *all* CPU work executing inside the
    /// enclave: MEE-priced memory, SCONE runtime, cache pressure. The
    /// paper's stand-alone 2PC (§VIII-B) and single-node (§VIII-D) numbers
    /// calibrate this to ~1.9x. 100 = no overhead.
    pub mee_cpu_pct: u32,
    /// Multiplier (percent) for the *network library's* CPU work under
    /// SCONE. Lower than `mee_cpu_pct`: eRPC's polling loop is cache-hot
    /// and touches host-memory buffers, paying less MEE than the engine's
    /// pointer-chasing over enclave data (calibrated so §VIII-B lands at
    /// the paper's ~2x).
    pub scone_net_cpu_pct: u32,

    // ---- Crypto (charged; the actual crypto also really runs) ------------
    /// AES-256-GCM setup per operation (key schedule amortized, IV, tag).
    pub aes_setup_ns: Nanos,
    /// AES-256-GCM per KiB (AES-NI class hardware).
    pub aes_ns_per_kib: Nanos,
    /// SHA-256/HMAC fixed setup per operation (padding, finalization —
    /// dominates for the small log records of §VIII-F).
    pub sha_setup_ns: Nanos,
    /// SHA-256 per KiB.
    pub sha_ns_per_kib: Nanos,

    // ---- Storage ----------------------------------------------------------
    /// Latency of an SSD flush/fsync (NVMe class), ~60 µs.
    pub ssd_flush_ns: Nanos,
    /// Sequential SSD write per KiB (~2 GiB/s).
    pub ssd_write_ns_per_kib: Nanos,
    /// Reading a block that is resident in the kernel page cache (the
    /// paper's configuration: "the database fits entirely in the kernel
    /// page cache").
    pub page_cache_read_ns: Nanos,
    /// Serving a decoded block from the trusted (enclave-resident) block
    /// cache: a hash lookup plus pointer handoff, no syscall, no copy
    /// across the boundary, no decrypt. The MEE multiplier and EPC paging
    /// are applied on top by the enclave's access pricing.
    pub block_cache_hit_ns: Nanos,
    /// Probing one per-table Bloom filter (k hashed bit tests over an
    /// enclave-resident bit array, before MEE pricing).
    pub bloom_probe_ns: Nanos,

    // ---- Trusted counters --------------------------------------------------
    /// One round of the ROTE-style distributed counter protocol
    /// (echo broadcast + confirm), ~2 ms average per the paper (§VI).
    pub counter_round_ns: Nanos,
    /// An SGX hardware monotonic-counter increment, 60–250 ms; we use
    /// 100 ms. Used only by the ablation benchmarks.
    pub hw_counter_ns: Nanos,

    // ---- Network -----------------------------------------------------------
    /// Link rate of the server fabric in Gbit/s (paper: 40 GbE).
    pub link_gbps: u32,
    /// One-way propagation + switch latency, ~2 µs in-rack.
    pub propagation_ns: Nanos,
    /// Kernel TCP per-message CPU (socket send/recv path), per side.
    pub tcp_per_msg_ns: Nanos,
    /// Kernel UDP per-message CPU, per side.
    pub udp_per_msg_ns: Nanos,
    /// eRPC/DPDK per-message CPU (polling, no syscall), per side.
    pub dpdk_per_msg_ns: Nanos,
    /// Extra per-message CPU for DPDK under SCONE: in-enclave polling,
    /// message-buffer management in host memory, SCONE scheduler crossings.
    /// Calibrated against Fig. 8's eRPC(Scone) ~4-5 Gb/s at 1 KiB
    /// (~16 us of core time per message).
    pub scone_dpdk_msg_extra_ns: Nanos,
    /// MTU for UDP drop behaviour (Fig. 8: UDP throughput is zero above it).
    pub mtu_bytes: usize,

    // ---- Engine CPU (charged per logical operation) -------------------------
    /// Skip-list / MemTable point operation (native), including MVCC
    /// bookkeeping, comparator walks and allocator work — calibrated to
    /// RocksDB-class per-op cost.
    pub memtable_op_ns: Nanos,
    /// Serializing / framing one KV record.
    pub record_frame_ns: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            world_switch_ns: 8_000,
            scone_syscall_ns: 1_500,
            native_syscall_ns: 600,
            copy_ns_per_kib: 250,
            epc_fault_ns: 40_000,
            mee_cpu_pct: 190,
            scone_net_cpu_pct: 150,
            aes_setup_ns: 120,
            aes_ns_per_kib: 250,
            sha_setup_ns: 120,
            sha_ns_per_kib: 150,
            ssd_flush_ns: 60_000,
            ssd_write_ns_per_kib: 500,
            page_cache_read_ns: 5_000,
            block_cache_hit_ns: 400,
            bloom_probe_ns: 250,
            counter_round_ns: 2_000_000,
            hw_counter_ns: 100_000_000,
            link_gbps: 40,
            propagation_ns: 2_000,
            tcp_per_msg_ns: 600,
            udp_per_msg_ns: 2_500,
            dpdk_per_msg_ns: 1_300,
            scone_dpdk_msg_extra_ns: 1_200,
            // Application-payload MTU threshold: wire framing (envelope +
            // ethernet) is accounted separately, so a 1460 B payload still
            // fits the paper's MTU while 2048 B does not.
            mtu_bytes: 1_700,
            memtable_op_ns: 5_000,
            record_frame_ns: 1_000,
        }
    }
}

impl CostModel {
    /// Wire time for `bytes` at the configured link rate, plus propagation.
    pub fn wire_ns(&self, bytes: usize) -> Nanos {
        self.serialize_ns(bytes, self.link_gbps) + self.propagation_ns
    }

    /// Time to put `bytes` on a link of `gbps` Gbit/s (NIC serialization).
    /// This portion occupies the sender's NIC port; propagation does not.
    pub fn serialize_ns(&self, bytes: usize, gbps: u32) -> Nanos {
        // bits / (Gbit/s) = ns exactly: bytes*8 / gbps.
        (bytes as u64 * 8) / gbps.max(1) as u64
    }

    /// CPU cost of one syscall under the given TEE mode. SCONE replaces the
    /// world switch with an asynchronous syscall (still dearer than native).
    pub fn syscall_ns(&self, tee: TeeMode) -> Nanos {
        match tee {
            TeeMode::Native => self.native_syscall_ns,
            TeeMode::Scone => self.scone_syscall_ns,
        }
    }

    /// CPU cost of copying `bytes` across the enclave boundary (one way).
    /// Zero for native.
    pub fn boundary_copy_ns(&self, tee: TeeMode, bytes: usize) -> Nanos {
        match tee {
            TeeMode::Native => 0,
            TeeMode::Scone => per_kib(bytes, self.copy_ns_per_kib),
        }
    }

    /// Applies the MEE multiplier to enclave-resident CPU work.
    pub fn enclave_cpu(&self, tee: TeeMode, ns: Nanos) -> Nanos {
        match tee {
            TeeMode::Native => ns,
            TeeMode::Scone => ns * self.mee_cpu_pct as u64 / 100,
        }
    }

    /// Applies the (milder) SCONE multiplier to network-library CPU work.
    pub fn enclave_net_cpu(&self, tee: TeeMode, ns: Nanos) -> Nanos {
        match tee {
            TeeMode::Native => ns,
            TeeMode::Scone => ns * self.scone_net_cpu_pct as u64 / 100,
        }
    }

    /// Charge for AES-GCM over `bytes` (encrypt or decrypt — symmetric).
    pub fn aes_ns(&self, bytes: usize) -> Nanos {
        self.aes_setup_ns + per_kib(bytes, self.aes_ns_per_kib)
    }

    /// Charge for SHA-256/HMAC over `bytes`.
    pub fn sha_ns(&self, bytes: usize) -> Nanos {
        self.sha_setup_ns + per_kib(bytes, self.sha_ns_per_kib)
    }

    /// Charge for appending `bytes` to a log and flushing it to the SSD.
    pub fn ssd_append_ns(&self, tee: TeeMode, bytes: usize) -> Nanos {
        // One write syscall + one fsync + device time; under SCONE the data
        // additionally crosses the enclave boundary.
        self.syscall_ns(tee) * 2
            + self.boundary_copy_ns(tee, bytes)
            + self.ssd_flush_ns
            + per_kib(bytes, self.ssd_write_ns_per_kib)
    }

    /// Charge for reading a storage block assumed page-cache resident:
    /// one syscall, the page-cache copy (~10 GiB/s), and under SCONE the
    /// extra enclave boundary copy.
    pub fn storage_read_ns(&self, tee: TeeMode, bytes: usize) -> Nanos {
        self.syscall_ns(tee)
            + self.boundary_copy_ns(tee, bytes)
            + self.page_cache_read_ns
            + per_kib(bytes, 100)
    }

    /// Full one-way network charge for a message of `bytes` on `transport`
    /// under `tee`.
    ///
    /// Captures the Fig. 8 regimes:
    /// * kernel transports pay per-message syscalls and, under SCONE, two
    ///   extra data copies (enclave↔host↔kernel) that grow with the message,
    /// * DPDK pays no syscalls; under SCONE it only pays the single
    ///   enclave↔host copy because buffers live in (untrusted) host memory,
    /// * UDP above the MTU is dropped.
    pub fn net_send(&self, transport: Transport, tee: TeeMode, bytes: usize) -> NetCharge {
        let (per_msg, syscalls) = match transport {
            Transport::KernelTcp => (self.tcp_per_msg_ns, 1u64),
            Transport::KernelUdp => (self.udp_per_msg_ns, 1),
            Transport::Dpdk => (self.dpdk_per_msg_ns, 0),
        };
        let side = |_dir: ()| -> Nanos {
            let mut cpu = per_msg + syscalls * self.syscall_ns(tee);
            if tee == TeeMode::Scone {
                cpu += match transport {
                    // enclave -> host -> kernel: two copies
                    Transport::KernelTcp | Transport::KernelUdp => {
                        2 * per_kib(bytes, self.copy_ns_per_kib)
                    }
                    // message buffers already live in host memory: one
                    // copy, plus the in-enclave polling surcharge.
                    Transport::Dpdk => {
                        per_kib(bytes, self.copy_ns_per_kib) + self.scone_dpdk_msg_extra_ns
                    }
                };
            }
            cpu
        };
        let dropped = transport == Transport::KernelUdp && bytes > self.mtu_bytes;
        NetCharge {
            sender_cpu: side(()),
            wire: self.wire_ns(bytes),
            receiver_cpu: side(()),
            dropped,
        }
    }
}

/// Scales a per-KiB cost to `bytes`, rounding up and never charging less
/// than one byte's share for a non-empty payload.
pub fn per_kib(bytes: usize, ns_per_kib: Nanos) -> Nanos {
    if bytes == 0 {
        return 0;
    }
    (bytes as u64 * ns_per_kib).div_ceil(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kib_scales() {
        assert_eq!(per_kib(0, 1000), 0);
        assert_eq!(per_kib(1024, 1000), 1000);
        assert_eq!(per_kib(2048, 1000), 2000);
        assert!(per_kib(1, 1000) >= 1);
    }

    #[test]
    fn wire_time_matches_link_rate() {
        let m = CostModel::default();
        // 40 Gb/s = 5 bytes per ns: 5000 bytes -> 1000 ns + propagation.
        assert_eq!(m.wire_ns(5000), 1000 + m.propagation_ns);
    }

    #[test]
    fn scone_syscalls_cost_more_than_native() {
        let m = CostModel::default();
        assert!(m.syscall_ns(TeeMode::Scone) > m.syscall_ns(TeeMode::Native));
    }

    #[test]
    fn udp_drops_above_mtu_only() {
        let m = CostModel::default();
        assert!(
            !m.net_send(Transport::KernelUdp, TeeMode::Native, 1_000)
                .dropped
        );
        assert!(
            m.net_send(Transport::KernelUdp, TeeMode::Native, 2_048)
                .dropped
        );
        assert!(
            !m.net_send(Transport::KernelTcp, TeeMode::Native, 4_096)
                .dropped
        );
        assert!(!m.net_send(Transport::Dpdk, TeeMode::Native, 4_096).dropped);
    }

    #[test]
    fn scone_hurts_kernel_transports_more_than_dpdk() {
        let m = CostModel::default();
        let bytes = 4096;
        let tcp_native = m
            .net_send(Transport::KernelTcp, TeeMode::Native, bytes)
            .sender_cpu;
        let tcp_scone = m
            .net_send(Transport::KernelTcp, TeeMode::Scone, bytes)
            .sender_cpu;
        let dpdk_native = m
            .net_send(Transport::Dpdk, TeeMode::Native, bytes)
            .sender_cpu;
        let dpdk_scone = m
            .net_send(Transport::Dpdk, TeeMode::Scone, bytes)
            .sender_cpu;
        let tcp_ratio = tcp_scone as f64 / tcp_native as f64;
        let dpdk_ratio = dpdk_scone as f64 / dpdk_native as f64;
        assert!(
            tcp_ratio > dpdk_ratio,
            "SCONE must deteriorate kernel transports more (tcp {tcp_ratio:.2} vs dpdk {dpdk_ratio:.2})"
        );
    }

    #[test]
    fn enclave_cpu_multiplier() {
        let m = CostModel::default();
        assert_eq!(m.enclave_cpu(TeeMode::Native, 1000), 1000);
        assert_eq!(m.enclave_cpu(TeeMode::Scone, 1000), 1900);
    }
}
