//! Fiber-aware observability glue: spans, instants and metrics that stamp
//! themselves from the virtual clock and the current fiber's context.
//!
//! The hub itself lives in the zero-dependency `treaty-obs` crate; this
//! module binds it to the runtime. A harness installs one hub per `Sim`
//! with [`install`] (from inside the root fiber); instrumented layers then
//! call [`span`]/[`instant`]/[`counter_add`] without threading any handle —
//! the runtime resolves `(hub, now, node, fiber, txn)` from the calling
//! fiber. Every call is a no-op when no hub is installed or when made
//! outside a fiber, so instrumentation is always-on and free to sprinkle.
//!
//! Context propagation: [`set_node`] tags a fiber (and everything it later
//! spawns) as executing for a fabric endpoint — the trace `pid`; `set_txn`
//! (via [`TxnScope`]) puts a distributed transaction id in scope. Both are
//! inherited across `spawn`/`spawn_daemon`, so helper fibers report under
//! their creator's transaction.
//!
//! Secrecy: payloads are `(&'static str, u64)` pairs — numeric only, no
//! value bytes, no user keys (see treaty-lint rule L005).

use std::sync::Arc;

pub use treaty_obs::{EventKind, Obs};

use crate::runtime;

/// Installs `obs` as the current simulation's hub. Call from the root
/// fiber, before the workload spawns.
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn install(obs: &Arc<Obs>) {
    runtime::obs_install(Some(Arc::clone(obs)));
}

/// Removes the installed hub (subsequent calls no-op again).
///
/// # Panics
///
/// Panics when called outside a fiber.
pub fn uninstall() {
    runtime::obs_install(None);
}

/// Tags the current fiber as executing for fabric endpoint `node`.
/// Inherited by fibers spawned afterwards. No-op outside a fiber.
pub fn set_node(node: u32) {
    runtime::obs_set_node(node);
}

/// Puts transaction `txn` in scope for the current fiber until the guard
/// drops (restoring the previous scope). No-op outside a fiber.
pub fn txn_scope(txn: u64) -> TxnScope {
    TxnScope {
        prev: runtime::obs_set_txn(txn),
    }
}

/// RAII guard restoring the previous transaction scope. See [`txn_scope`].
#[derive(Debug)]
pub struct TxnScope {
    prev: u64,
}

impl Drop for TxnScope {
    fn drop(&mut self) {
        runtime::obs_set_txn(self.prev);
    }
}

/// Opens a span: records an enter event now and the matching exit when the
/// returned guard drops — balanced even when the fiber unwinds at shutdown.
/// No-op (and allocation-free) when no hub is installed.
pub fn span(phase: &'static str) -> SpanGuard {
    match runtime::obs_ctx() {
        Some((obs, now, node, fiber, txn)) => {
            obs.record(EventKind::Enter, now, node, fiber, txn, phase, &[]);
            SpanGuard { phase: Some(phase) }
        }
        None => SpanGuard { phase: None },
    }
}

/// Like [`span`] with a numeric payload on the enter event.
pub fn span_with(phase: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    match runtime::obs_ctx() {
        Some((obs, now, node, fiber, txn)) => {
            obs.record(EventKind::Enter, now, node, fiber, txn, phase, args);
            SpanGuard { phase: Some(phase) }
        }
        None => SpanGuard { phase: None },
    }
}

/// RAII guard closing a span. See [`span`].
#[derive(Debug)]
#[must_use = "dropping the guard immediately produces a zero-length span"]
pub struct SpanGuard {
    phase: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(phase) = self.phase {
            if let Some((obs, now, node, fiber, txn)) = runtime::obs_ctx() {
                obs.record(EventKind::Exit, now, node, fiber, txn, phase, &[]);
            }
        }
    }
}

/// Records a point event with a numeric payload. No-op without a hub.
pub fn instant(phase: &'static str, args: &[(&'static str, u64)]) {
    if let Some((obs, now, node, fiber, txn)) = runtime::obs_ctx() {
        obs.record(EventKind::Instant, now, node, fiber, txn, phase, args);
    }
}

/// Adds `v` to registry counter `name`, stamped with the virtual clock so
/// it also lands in the windowed time series when one is enabled. No-op
/// without a hub.
pub fn counter_add(name: &str, v: u64) {
    if let Some((obs, now, ..)) = runtime::obs_ctx() {
        obs.metrics().counter_add_at(name, now, v);
    }
}

/// Sets registry gauge `name` (virtual-time stamped; see [`counter_add`]).
/// No-op without a hub.
pub fn gauge_set(name: &str, v: u64) {
    if let Some((obs, now, ..)) = runtime::obs_ctx() {
        obs.metrics().gauge_set_at(name, now, v);
    }
}

/// Records a virtual-time sample into registry histogram `name`
/// (virtual-time stamped; see [`counter_add`]). No-op without a hub.
pub fn hist_record(name: &str, v: u64) {
    if let Some((obs, now, ..)) = runtime::obs_ctx() {
        obs.metrics().hist_record_at(name, now, v);
    }
}

/// Writes a flight-recorder post-mortem for the current fiber's node at
/// the current virtual time. No-op without a hub, when the recorder is
/// unarmed, or on I/O failure — callable from crash handlers.
pub fn flight_dump(reason: &str, detail: &str) {
    if let Some((obs, now, node, ..)) = runtime::obs_ctx() {
        let _ = obs.flight_dump(node, now, reason, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{sleep, spawn, Sim};
    use treaty_obs::check_invariants;

    #[test]
    fn spans_balance_and_nest_with_virtual_time() {
        let obs = Obs::with_default_cap();
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                set_node(3);
                let _txn = txn_scope(42);
                let outer = span("2pc.commit");
                sleep(100);
                {
                    let _inner = span("clog.log_start");
                    sleep(50);
                }
                instant("net.send", &[("bytes", 128)]);
                drop(outer);
            })
            .unwrap();
        let events = obs.events();
        assert_eq!(events.len(), 5);
        let forest = check_invariants(&events).unwrap();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.phase, "2pc.commit");
        assert_eq!(root.node, 3);
        assert_eq!(root.txn, 42);
        assert_eq!(root.duration(), 150);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].duration(), 50);
    }

    #[test]
    fn context_is_inherited_by_spawned_fibers() {
        let obs = Obs::with_default_cap();
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                set_node(7);
                let _txn = txn_scope(9);
                let child = spawn(|| {
                    instant("child.mark", &[]);
                });
                crate::runtime::join(child);
            })
            .unwrap();
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].node, 7);
        assert_eq!(events[0].txn, 9);
        assert_ne!(events[0].fiber, 0, "ran on the child fiber");
    }

    #[test]
    fn txn_scope_restores_previous() {
        let obs = Obs::with_default_cap();
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                let _a = txn_scope(1);
                {
                    let _b = txn_scope(2);
                    instant("x", &[]);
                }
                instant("y", &[]);
            })
            .unwrap();
        let events = obs.events();
        assert_eq!(events[0].txn, 2);
        assert_eq!(events[1].txn, 1);
    }

    #[test]
    fn everything_is_a_noop_without_a_hub() {
        Sim::new()
            .run(|| {
                set_node(1);
                let _t = txn_scope(5);
                let _s = span("phase");
                instant("i", &[]);
                counter_add("c", 1);
                gauge_set("g", 1);
                hist_record("h", 1);
            })
            .unwrap();
    }

    #[test]
    fn noop_outside_fibers_too() {
        // Never panics even though no simulation is running.
        set_node(1);
        instant("i", &[]);
        counter_add("c", 1);
        let _s = span("phase");
    }

    #[test]
    fn metrics_flow_into_the_registry() {
        let obs = Obs::with_default_cap();
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                counter_add("store.block_cache.hit", 2);
                counter_add("store.block_cache.hit", 1);
                hist_record("2pc.prepare", 500);
            })
            .unwrap();
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counters["store.block_cache.hit"], 3);
        assert_eq!(snap.hists["2pc.prepare"].count, 1);
    }

    #[test]
    fn glue_metrics_feed_the_time_series() {
        let obs = Obs::with_default_cap();
        obs.metrics().enable_series(1_000, 64);
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                counter_add("txn.committed", 1);
                sleep(1_500);
                counter_add("txn.committed", 2);
                gauge_set("queue.depth", 4);
            })
            .unwrap();
        let series = obs.metrics().series_snapshot().expect("series enabled");
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[0].1.counters["txn.committed"], 1);
        assert_eq!(series.windows[1].1.counters["txn.committed"], 2);
        assert_eq!(series.windows[1].1.gauges["queue.depth"], 4);
    }

    #[test]
    fn glue_flight_dump_writes_for_current_node() {
        let dir = std::env::temp_dir().join(format!("treaty-glue-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let obs = Obs::with_default_cap();
        obs.configure_flight(&dir, 8);
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                set_node(2);
                instant("store.flush", &[]);
                flight_dump("slo.breach", "p99 over budget");
            })
            .unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let body =
            std::fs::read_to_string(entries[0].as_ref().unwrap().path()).unwrap();
        assert!(body.contains("\"reason\": \"slo.breach\""));
        assert!(body.contains("\"node\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_unwind_still_balances_spans() {
        let obs = Obs::with_default_cap();
        let obs2 = Arc::clone(&obs);
        Sim::new()
            .run(move || {
                install(&obs2);
                // Daemon parks forever inside a span; when the root ends the
                // sim unwinds it and the guard must still record the exit.
                crate::runtime::spawn_daemon(|| {
                    let _s = span("daemon.loop");
                    crate::runtime::park();
                });
                sleep(10);
            })
            .unwrap();
        let events = obs.events();
        check_invariants(&events).unwrap();
    }
}
