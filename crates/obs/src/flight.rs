//! Per-node flight recorder: post-mortem dumps of the last K trace
//! events plus a metrics snapshot, written when something goes wrong —
//! a crash point fires, a recovery re-drive fails, or a bench SLO is
//! breached.
//!
//! The recorder rides the existing trace ring: it does not buffer
//! anything itself. A dump filters the sink to the affected node's most
//! recent `last_k` events and serializes them with a reason header and
//! the full metrics snapshot, as one self-contained JSON file under the
//! configured directory. Dump files are numbered in fire order, so the
//! 29-cell fault matrix leaves one artifact per crash cell.
//!
//! Dumping must never make a bad situation worse: every I/O error is
//! swallowed (`None` returned) and nothing here panics — crash handlers
//! call this mid-unwind-setup (treaty-lint L002 territory).

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::{EventKind, Nanos, Obs};

/// Flight-recorder configuration + dump counter.
#[derive(Debug)]
pub(crate) struct FlightState {
    dir: PathBuf,
    last_k: usize,
    dumps: u64,
}

/// Handle returned by [`Obs::flight_dump`]: where the dump landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Path of the written JSON artifact.
    pub path: PathBuf,
    /// Dump ordinal within the run (0-based).
    pub ordinal: u64,
    /// Events included.
    pub events: usize,
}

fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Obs {
    /// Arms the flight recorder: dumps go to `dir` (created on demand),
    /// each carrying the affected node's `last_k` most recent events.
    pub fn configure_flight(&self, dir: impl AsRef<Path>, last_k: usize) {
        let mut flight = self.flight.lock().expect("flight state poisoned");
        *flight = Some(FlightState {
            dir: dir.as_ref().to_path_buf(),
            last_k: last_k.max(1),
            dumps: 0,
        });
    }

    /// True when [`Obs::configure_flight`] was called.
    pub fn flight_armed(&self) -> bool {
        self.flight.lock().map(|f| f.is_some()).unwrap_or(false)
    }

    /// Writes one post-mortem dump for `node` at virtual time `ts`:
    /// `reason` is the trigger class (`"crash.fired"`,
    /// `"recovery.redrive_failed"`, `"slo.breach"`), `detail` the specific
    /// crash point or breach description. No-op (returns `None`) when the
    /// recorder is unarmed or any I/O fails — this is called from failure
    /// paths and must never add a second failure.
    pub fn flight_dump(&self, node: u32, ts: Nanos, reason: &str, detail: &str) -> Option<FlightDump> {
        let (dir, last_k, ordinal) = {
            let mut flight = self.flight.lock().ok()?;
            let state = flight.as_mut()?;
            let ordinal = state.dumps;
            state.dumps += 1;
            (state.dir.clone(), state.last_k, ordinal)
        };

        let events = self.events();
        let dropped = self.dropped();
        // The affected node's most recent window; node 0 (untagged) events
        // are kept too when dumping for node 0.
        let mine: Vec<_> = events.iter().filter(|e| e.node == node).collect();
        let tail = &mine[mine.len().saturating_sub(last_k)..];

        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"flight_dump\": {{\"reason\": \"{}\", \"detail\": \"{}\", \"node\": {}, \"ts\": {}, \"ordinal\": {}, \"dropped_events\": {}}},\n",
            escape(reason),
            escape(detail),
            node,
            ts,
            ordinal,
            dropped
        ));
        out.push_str("  \"events\": [\n");
        for (i, e) in tail.iter().enumerate() {
            let ph = match e.kind {
                EventKind::Enter => "B",
                EventKind::Exit => "E",
                EventKind::Instant => "i",
            };
            out.push_str(&format!(
                "    {{\"seq\": {}, \"ts\": {}, \"fiber\": {}, \"txn\": {}, \"ph\": \"{}\", \"phase\": \"{}\"",
                e.seq, e.ts, e.fiber, e.txn, ph, e.phase
            ));
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{k}\": {v}"));
                }
                out.push('}');
            }
            out.push('}');
            if i + 1 < tail.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        let snap = self.metrics().snapshot();
        out.push_str("  \"counters\": {");
        for (j, (k, v)) in snap.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": {}", escape(k), v));
        }
        out.push_str("},\n  \"gauges\": {");
        for (j, (k, v)) in snap.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": {}", escape(k), v));
        }
        out.push_str("}\n}\n");

        let file = dir.join(format!("flight-{ordinal:04}-{}.json", sanitize(reason)));
        std::fs::create_dir_all(&dir).ok()?;
        std::fs::write(&file, out).ok()?;
        Some(FlightDump {
            path: file,
            ordinal,
            events: tail.len(),
        })
    }
}

pub(crate) fn new_state() -> Mutex<Option<FlightState>> {
    Mutex::new(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("treaty-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unarmed_recorder_is_a_noop() {
        let obs = Obs::new(16);
        assert!(!obs.flight_armed());
        assert!(obs.flight_dump(1, 10, "crash.fired", "x").is_none());
    }

    #[test]
    fn dump_keeps_last_k_events_of_the_node() {
        let dir = temp_dir("lastk");
        let obs = Obs::new(64);
        obs.configure_flight(&dir, 3);
        for i in 0..5 {
            obs.record(EventKind::Instant, i * 10, 1, 0, 0, "store.flush", &[("n", i)]);
        }
        obs.record(EventKind::Instant, 99, 2, 0, 0, "other.node", &[]);
        obs.metrics().counter_add("crash.fired", 1);
        let dump = obs
            .flight_dump(1, 100, "crash.fired", "clog.pre_decision_append")
            .expect("armed recorder dumps");
        assert_eq!(dump.events, 3, "only the last K of node 1");
        let body = std::fs::read_to_string(&dump.path).unwrap();
        assert!(body.contains("\"reason\": \"crash.fired\""));
        assert!(body.contains("clog.pre_decision_append"));
        assert!(body.contains("\"crash.fired\": 1"));
        assert!(!body.contains("other.node"), "foreign-node events excluded");
        // Oldest two node-1 events were trimmed.
        assert!(!body.contains("\"ts\": 0,"));
        assert!(body.contains("\"ts\": 40"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dumps_are_numbered_in_fire_order() {
        let dir = temp_dir("order");
        let obs = Obs::new(16);
        obs.configure_flight(&dir, 8);
        obs.record(EventKind::Instant, 1, 1, 0, 0, "x", &[]);
        let a = obs.flight_dump(1, 1, "crash.fired", "a").unwrap();
        let b = obs.flight_dump(1, 2, "slo.breach", "b").unwrap();
        assert_eq!(a.ordinal, 0);
        assert_eq!(b.ordinal, 1);
        assert!(a.path.ends_with("flight-0000-crash_fired.json"));
        assert!(b.path.ends_with("flight-0001-slo_breach.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
