//! The metrics registry: named counters, gauges and virtual-time
//! histograms behind one deterministic snapshot API.
//!
//! This absorbs the scattered per-subsystem stats structs (`NodeStats`,
//! `EngineStats`, `FabricStats`, `AccelReport`, RPC counters): live
//! increments flow in during the run, and at the end the bench harness
//! mirrors the legacy structs into gauges so one [`MetricsSnapshot`] tells
//! the whole story.
//!
//! Keys are free-form strings by convention `layer.metric` (e.g.
//! `store.block_cache.hit`, `core.decision_retries`) or
//! `nodeN.metric` for per-node mirrors. Storage is `BTreeMap`-backed so
//! snapshots and renders iterate in key order — deterministic across runs.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::Nanos;

/// Incremental histogram of virtual-time durations: tracks count/sum/min/max
/// exactly and keeps raw samples (up to a cap) for quantiles.
#[derive(Debug, Clone, Default)]
struct VtHistogram {
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
    samples: Vec<Nanos>,
    sample_cap: usize,
}

/// Cap on raw samples retained per histogram; count/sum/min/max stay exact
/// past it, quantiles degrade to the retained prefix.
const SAMPLE_CAP: usize = 1 << 16;

impl VtHistogram {
    fn record(&mut self, v: Nanos) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
            self.sample_cap = SAMPLE_CAP;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
        if self.samples.len() < self.sample_cap {
            self.samples.push(v);
        }
    }

    fn summary(&self) -> HistSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = |f: f64| -> Nanos {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((f * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        HistSummary {
            count: self.count,
            sum: self.sum.min(u64::MAX as u128) as u64,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 {
                0
            } else {
                (self.sum / self.count as u128) as Nanos
            },
            p50: q(0.50),
            p99: q(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating at `u64::MAX` for display).
    pub sum: u64,
    /// Smallest sample; 0 when empty.
    pub min: Nanos,
    /// Largest sample; 0 when empty.
    pub max: Nanos,
    /// Arithmetic mean; 0 when empty.
    pub mean: Nanos,
    /// Median (nearest-rank over retained samples).
    pub p50: Nanos,
    /// 99th percentile (nearest-rank over retained samples).
    pub p99: Nanos,
}

/// Named counters, gauges and histograms. All methods take `&self`; storage
/// sits behind locks that are uncontended under the cooperative scheduler.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, VtHistogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut counters = self.counters.lock().expect("counter map poisoned");
        match counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(v),
            None => {
                counters.insert(name.to_string(), v);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter map poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: u64) {
        self.gauges
            .lock()
            .expect("gauge map poisoned")
            .insert(name.to_string(), v);
    }

    /// Records one virtual-time sample into histogram `name`.
    pub fn hist_record(&self, name: &str, v: Nanos) {
        let mut hists = self.hists.lock().expect("hist map poisoned");
        hists.entry(name.to_string()).or_default().record(v);
    }

    /// Deterministic point-in-time snapshot of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counter map poisoned").clone(),
            gauges: self.gauges.lock().expect("gauge map poisoned").clone(),
            hists: self
                .hists
                .lock()
                .expect("hist map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Deterministic snapshot: `BTreeMap`s iterate in key order, so rendering
/// the same state always produces the same bytes.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// Renders a fixed-width text report (key order, byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {v:>14}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (virtual ns):\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k:<44} n={} mean={} p50={} p99={} max={}\n",
                    h.count, h.mean, h.p50, h.p99, h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = MetricsRegistry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("b", u64::MAX);
        r.counter_add("b", 1);
        assert_eq!(r.counter("b"), u64::MAX);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 10);
        r.gauge_set("g", 4);
        assert_eq!(r.snapshot().gauges["g"], 4);
    }

    #[test]
    fn histogram_summary_is_exact_for_small_sets() {
        let r = MetricsRegistry::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.hist_record("lat", v);
        }
        let s = r.snapshot().hists["lat"];
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 550);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 55);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 100);
    }

    #[test]
    fn snapshot_iterates_in_key_order() {
        let r = MetricsRegistry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        r.counter_add("mid", 1);
        let keys: Vec<_> = r.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let r = MetricsRegistry::new();
            r.counter_add("net.sent", 42);
            r.gauge_set("node1.committed", 7);
            r.hist_record("2pc.prepare", 1000);
            r.hist_record("2pc.prepare", 3000);
            r.snapshot().render()
        };
        assert_eq!(build(), build());
        assert!(build().contains("net.sent"));
    }
}
