//! The metrics registry: named counters, gauges and virtual-time
//! histograms behind one deterministic snapshot API.
//!
//! This absorbs the scattered per-subsystem stats structs (`NodeStats`,
//! `EngineStats`, `FabricStats`, `AccelReport`, RPC counters): live
//! increments flow in during the run, and at the end the bench harness
//! mirrors the legacy structs into gauges so one [`MetricsSnapshot`] tells
//! the whole story.
//!
//! Keys are free-form strings by convention `layer.metric` (e.g.
//! `store.block_cache.hit`, `core.decision_retries`) or
//! `nodeN.metric` for per-node mirrors. Storage is `BTreeMap`-backed so
//! snapshots and renders iterate in key order — deterministic across runs.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::Nanos;

/// Incremental histogram of virtual-time durations: tracks count/sum/min/max
/// exactly and keeps raw samples (up to a cap) for quantiles.
#[derive(Debug, Clone, Default)]
struct VtHistogram {
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
    samples: Vec<Nanos>,
    sample_cap: usize,
}

/// Cap on raw samples retained per histogram; count/sum/min/max stay exact
/// past it, quantiles degrade to the retained prefix.
const SAMPLE_CAP: usize = 1 << 16;

impl VtHistogram {
    fn record(&mut self, v: Nanos) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
            self.sample_cap = SAMPLE_CAP;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
        if self.samples.len() < self.sample_cap {
            self.samples.push(v);
        }
    }

    fn summary(&self) -> HistSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = |f: f64| -> Nanos {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((f * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        HistSummary {
            count: self.count,
            sum: self.sum.min(u64::MAX as u128) as u64,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 {
                0
            } else {
                (self.sum / self.count as u128) as Nanos
            },
            p50: q(0.50),
            p99: q(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating at `u64::MAX` for display).
    pub sum: u64,
    /// Smallest sample; 0 when empty.
    pub min: Nanos,
    /// Largest sample; 0 when empty.
    pub max: Nanos,
    /// Arithmetic mean; 0 when empty.
    pub mean: Nanos,
    /// Median (nearest-rank over retained samples).
    pub p50: Nanos,
    /// 99th percentile (nearest-rank over retained samples).
    pub p99: Nanos,
}

/// One fixed virtual-time window's worth of metric activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowCell {
    /// Counter *deltas* within the window (not running totals).
    pub counters: BTreeMap<String, u64>,
    /// Last gauge value written within the window.
    pub gauges: BTreeMap<String, u64>,
    /// Per-histogram `(count, sum, max)` of samples within the window.
    pub hists: BTreeMap<String, (u64, u128, Nanos)>,
}

#[derive(Debug)]
struct SeriesState {
    window_ns: Nanos,
    max_windows: usize,
    windows: BTreeMap<u64, WindowCell>,
    evicted: u64,
}

impl SeriesState {
    fn cell(&mut self, ts: Nanos) -> &mut WindowCell {
        let idx = ts / self.window_ns;
        if !self.windows.contains_key(&idx) {
            self.windows.insert(idx, WindowCell::default());
            while self.windows.len() > self.max_windows {
                self.windows.pop_first();
                self.evicted += 1;
            }
        }
        self.windows.get_mut(&idx).expect("cell just inserted")
    }
}

/// Named counters, gauges and histograms. All methods take `&self`; storage
/// sits behind locks that are uncontended under the cooperative scheduler.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, VtHistogram>>,
    series: Mutex<Option<SeriesState>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut counters = self.counters.lock().expect("counter map poisoned");
        match counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(v),
            None => {
                counters.insert(name.to_string(), v);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter map poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: u64) {
        self.gauges
            .lock()
            .expect("gauge map poisoned")
            .insert(name.to_string(), v);
    }

    /// Records one virtual-time sample into histogram `name`.
    pub fn hist_record(&self, name: &str, v: Nanos) {
        let mut hists = self.hists.lock().expect("hist map poisoned");
        hists.entry(name.to_string()).or_default().record(v);
    }

    /// Turns on windowed time-series collection: the `*_at` recording
    /// variants additionally bucket activity into fixed `window_ns`-wide
    /// virtual-time windows, keeping at most `max_windows` (oldest evicted
    /// and counted). Windows deliver the data for throughput-vs-latency
    /// curves: counter deltas, last gauge value and histogram
    /// `(count, sum, max)` per window.
    pub fn enable_series(&self, window_ns: Nanos, max_windows: usize) {
        let mut series = self.series.lock().expect("series poisoned");
        *series = Some(SeriesState {
            window_ns: window_ns.max(1),
            max_windows: max_windows.max(1),
            windows: BTreeMap::new(),
            evicted: 0,
        });
    }

    /// [`Self::counter_add`] that also feeds the time series at `ts`.
    pub fn counter_add_at(&self, name: &str, ts: Nanos, v: u64) {
        self.counter_add(name, v);
        let mut series = self.series.lock().expect("series poisoned");
        if let Some(s) = series.as_mut() {
            let cell = s.cell(ts);
            let c = cell.counters.entry(name.to_string()).or_insert(0);
            *c = c.saturating_add(v);
        }
    }

    /// [`Self::gauge_set`] that also feeds the time series at `ts`.
    pub fn gauge_set_at(&self, name: &str, ts: Nanos, v: u64) {
        self.gauge_set(name, v);
        let mut series = self.series.lock().expect("series poisoned");
        if let Some(s) = series.as_mut() {
            s.cell(ts).gauges.insert(name.to_string(), v);
        }
    }

    /// [`Self::hist_record`] that also feeds the time series at `ts`.
    pub fn hist_record_at(&self, name: &str, ts: Nanos, v: Nanos) {
        self.hist_record(name, v);
        let mut series = self.series.lock().expect("series poisoned");
        if let Some(s) = series.as_mut() {
            let cell = s.cell(ts);
            let h = cell.hists.entry(name.to_string()).or_insert((0, 0, 0));
            h.0 += 1;
            h.1 += v as u128;
            h.2 = h.2.max(v);
        }
    }

    /// Snapshot of the time series; `None` unless [`Self::enable_series`]
    /// was called.
    pub fn series_snapshot(&self) -> Option<SeriesSnapshot> {
        let series = self.series.lock().expect("series poisoned");
        series.as_ref().map(|s| SeriesSnapshot {
            window_ns: s.window_ns,
            evicted: s.evicted,
            windows: s.windows.iter().map(|(k, v)| (*k, v.clone())).collect(),
        })
    }

    /// Deterministic point-in-time snapshot of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counter map poisoned").clone(),
            gauges: self.gauges.lock().expect("gauge map poisoned").clone(),
            hists: self
                .hists
                .lock()
                .expect("hist map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Deterministic snapshot: `BTreeMap`s iterate in key order, so rendering
/// the same state always produces the same bytes.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// Renders a fixed-width text report (key order, byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {v:>14}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (virtual ns):\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k:<44} n={} mean={} p50={} p99={} max={}\n",
                    h.count, h.mean, h.p50, h.p99, h.max
                ));
            }
        }
        out
    }
}

/// Deterministic snapshot of the windowed time series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Window width on the virtual clock.
    pub window_ns: Nanos,
    /// Windows evicted because `max_windows` was exceeded.
    pub evicted: u64,
    /// `(window index, activity)` ascending; window `i` covers
    /// `[i * window_ns, (i + 1) * window_ns)`.
    pub windows: Vec<(u64, WindowCell)>,
}

impl SeriesSnapshot {
    /// Fixed-width text render (byte-deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "time series: window={}ns, {} windows, {} evicted\n",
            self.window_ns,
            self.windows.len(),
            self.evicted
        ));
        for (idx, cell) in &self.windows {
            out.push_str(&format!("window {idx} [{}ns..{}ns):\n", idx * self.window_ns, (idx + 1) * self.window_ns));
            for (k, v) in &cell.counters {
                out.push_str(&format!("  +{k:<43} {v:>14}\n"));
            }
            for (k, v) in &cell.gauges {
                out.push_str(&format!("  ={k:<43} {v:>14}\n"));
            }
            for (k, (n, sum, max)) in &cell.hists {
                let mean = if *n == 0 { 0 } else { (sum / *n as u128) as u64 };
                out.push_str(&format!("  ~{k:<43} n={n} mean={mean} max={max}\n"));
            }
        }
        out
    }

    /// Deterministic JSON export (integers only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"window_ns\":{},\"evicted\":{},\"windows\":[",
            self.window_ns, self.evicted
        ));
        for (i, (idx, cell)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"index\":{idx},\"counters\":{{"));
            for (j, (k, v)) in cell.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("},\"gauges\":{");
            for (j, (k, v)) in cell.gauges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("},\"hists\":{");
            for (j, (k, (n, sum, max))) in cell.hists.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{k}\":{{\"count\":{n},\"sum\":{sum},\"max\":{max}}}"
                ));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = MetricsRegistry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("b", u64::MAX);
        r.counter_add("b", 1);
        assert_eq!(r.counter("b"), u64::MAX);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 10);
        r.gauge_set("g", 4);
        assert_eq!(r.snapshot().gauges["g"], 4);
    }

    #[test]
    fn histogram_summary_is_exact_for_small_sets() {
        let r = MetricsRegistry::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.hist_record("lat", v);
        }
        let s = r.snapshot().hists["lat"];
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 550);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 55);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 100);
    }

    #[test]
    fn snapshot_iterates_in_key_order() {
        let r = MetricsRegistry::new();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 1);
        r.counter_add("mid", 1);
        let keys: Vec<_> = r.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn series_windows_bucket_by_virtual_time() {
        let r = MetricsRegistry::new();
        r.enable_series(1_000, 16);
        r.counter_add_at("tx", 100, 1);
        r.counter_add_at("tx", 900, 2);
        r.counter_add_at("tx", 1_500, 5);
        r.gauge_set_at("depth", 950, 7);
        r.gauge_set_at("depth", 990, 9);
        r.hist_record_at("lat", 2_200, 40);
        r.hist_record_at("lat", 2_300, 60);
        let s = r.series_snapshot().expect("series enabled");
        assert_eq!(s.window_ns, 1_000);
        assert_eq!(s.windows.len(), 3);
        assert_eq!(s.windows[0].0, 0);
        assert_eq!(s.windows[0].1.counters["tx"], 3, "window 0 delta");
        assert_eq!(s.windows[0].1.gauges["depth"], 9, "last write in window");
        assert_eq!(s.windows[1].1.counters["tx"], 5);
        assert_eq!(s.windows[2].1.hists["lat"], (2, 100, 60));
        // The `_at` variants still feed the cumulative registry.
        assert_eq!(r.counter("tx"), 8);
        assert_eq!(r.snapshot().hists["lat"].count, 2);
    }

    #[test]
    fn series_evicts_oldest_windows() {
        let r = MetricsRegistry::new();
        r.enable_series(10, 2);
        r.counter_add_at("c", 5, 1);
        r.counter_add_at("c", 15, 1);
        r.counter_add_at("c", 25, 1);
        let s = r.series_snapshot().unwrap();
        assert_eq!(s.evicted, 1);
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.windows[0].0, 1, "window 0 was evicted");
        assert_eq!(s.to_json(), r.series_snapshot().unwrap().to_json());
        assert!(s.to_json().contains("\"evicted\":1"));
    }

    #[test]
    fn series_disabled_by_default() {
        let r = MetricsRegistry::new();
        r.counter_add_at("c", 5, 1);
        assert!(r.series_snapshot().is_none());
        assert_eq!(r.counter("c"), 1, "cumulative path still records");
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let r = MetricsRegistry::new();
            r.counter_add("net.sent", 42);
            r.gauge_set("node1.committed", 7);
            r.hist_record("2pc.prepare", 1000);
            r.hist_record("2pc.prepare", 3000);
            r.snapshot().render()
        };
        assert_eq!(build(), build());
        assert!(build().contains("net.sent"));
    }
}
