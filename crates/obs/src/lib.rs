//! Deterministic tracing and metrics for the Treaty reproduction.
//!
//! The paper's evaluation decomposes transaction latency into 2PC phases,
//! enclave transitions, shielding charges and network time (Figs. 4–8).
//! This crate provides the substrate for that attribution:
//!
//! * a [`TraceEvent`] span model — balanced enter/exit events keyed by
//!   `(txn, node, phase)` and stamped with the simulator's *virtual* clock;
//! * a per-`Sim` [`Obs`] sink with a ring-buffer cap, cheap enough to be
//!   always-on;
//! * a [`MetricsRegistry`] of named counters/gauges/virtual-time histograms
//!   behind one deterministic snapshot API;
//! * exporters: Chrome `trace_event` JSON (loadable in `chrome://tracing` /
//!   Perfetto) and a text phase-breakdown table ([`export`]);
//! * a span-tree builder with invariant checks for tests ([`tree`]).
//!
//! # Determinism
//!
//! Nothing in this crate reads a clock, an RNG or the environment: every
//! timestamp is handed in by the caller (the simulator's virtual clock), and
//! every export iterates `BTreeMap`s or the recorded event order. Two runs
//! with the same seed therefore serialize to byte-identical artifacts —
//! which the test suite asserts.
//!
//! # Secrecy
//!
//! Trace payloads are *structurally* numeric: an event carries a static
//! phase name and `(&'static str, u64)` arguments, so plaintext values, user
//! keys or key material cannot be interpolated into a trace (treaty-lint
//! rule L005 enforces the same property for format strings in trusted
//! regions).
//!
//! This crate has **zero dependencies** (std only) so it can sit underneath
//! `treaty-sim` and keep compiling in registry-less environments.

pub mod attribution;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod tree;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub use attribution::{attribute, AttributionReport, Category, TxnAttribution};
pub use export::{chrome_trace_json, chrome_trace_json_with_meta, phase_breakdown};
pub use flight::FlightDump;
pub use metrics::{HistSummary, MetricsRegistry, MetricsSnapshot, SeriesSnapshot, WindowCell};
pub use tree::{build_forest, build_forest_lossy, check_invariants, LossyForest, Span};

/// Virtual nanoseconds — mirrors `treaty_sim::Nanos` without the dependency.
pub type Nanos = u64;

/// Default ring-buffer capacity: enough for a few thousand transactions'
/// worth of spans across every layer.
pub const DEFAULT_CAP: usize = 1 << 20;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (Chrome `"B"`).
    Enter,
    /// The most recent open span on this fiber closes (Chrome `"E"`).
    Exit,
    /// A point event with no duration (Chrome `"i"`).
    Instant,
}

/// One trace record. Events are totally ordered by `seq` (assignment order
/// under the sink lock — deterministic because the simulator runs exactly
/// one fiber at a time).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Deterministic global sequence number.
    pub seq: u64,
    /// Virtual-clock timestamp.
    pub ts: Nanos,
    /// Node (fabric endpoint) the fiber was executing for; 0 if untagged.
    pub node: u32,
    /// Fiber id within the simulation.
    pub fiber: u64,
    /// Distributed transaction id; 0 if none is in scope.
    pub txn: u64,
    /// Enter, exit or instant.
    pub kind: EventKind,
    /// Static phase name, e.g. `"2pc.prepare"`. The `"layer."` prefix
    /// groups phases in the breakdown table.
    pub phase: &'static str,
    /// Numeric-only payload — secrets cannot ride along.
    pub args: Vec<(&'static str, u64)>,
}

/// Ring buffer of [`TraceEvent`]s with a hard cap; the oldest events are
/// dropped (and counted) when full.
#[derive(Debug)]
struct TraceSink {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

/// Per-`Sim` observability hub: a trace sink plus a metrics registry.
///
/// Thread-safe: fibers are OS threads, so both halves sit behind locks —
/// uncontended in practice because the simulator is cooperative.
#[derive(Debug)]
pub struct Obs {
    sink: Mutex<TraceSink>,
    metrics: MetricsRegistry,
    pub(crate) flight: Mutex<Option<flight::FlightState>>,
}

impl Obs {
    /// Creates a hub with the given ring-buffer capacity (events).
    pub fn new(cap: usize) -> Arc<Obs> {
        Arc::new(Obs {
            sink: Mutex::new(TraceSink {
                events: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                next_seq: 0,
            }),
            metrics: MetricsRegistry::new(),
            flight: flight::new_state(),
        })
    }

    /// Creates a hub with [`DEFAULT_CAP`].
    pub fn with_default_cap() -> Arc<Obs> {
        Self::new(DEFAULT_CAP)
    }

    /// Records one event. `args` is copied; keep it short.
    pub fn record(
        &self,
        kind: EventKind,
        ts: Nanos,
        node: u32,
        fiber: u64,
        txn: u64,
        phase: &'static str,
        args: &[(&'static str, u64)],
    ) {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        let seq = sink.next_seq;
        sink.next_seq += 1;
        if sink.events.len() == sink.cap {
            sink.events.pop_front();
            sink.dropped += 1;
        }
        sink.events.push_back(TraceEvent {
            seq,
            ts,
            node,
            fiber,
            txn,
            phase,
            kind,
            args: args.to_vec(),
        });
    }

    /// Snapshot of all retained events, in `seq` order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let sink = self.sink.lock().expect("trace sink poisoned");
        sink.events.iter().cloned().collect()
    }

    /// Events dropped because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.sink.lock().expect("trace sink poisoned").dropped
    }

    /// Total events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.sink.lock().expect("trace sink poisoned").next_seq
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(obs: &Obs, kind: EventKind, ts: Nanos, phase: &'static str) {
        obs.record(kind, ts, 1, 0, 7, phase, &[]);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let obs = Obs::new(3);
        for i in 0..5 {
            ev(&obs, EventKind::Instant, i, "x");
        }
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(obs.dropped(), 2);
        assert_eq!(obs.recorded(), 5);
        assert_eq!(events[0].seq, 2, "oldest events were evicted");
        assert_eq!(events[2].ts, 4);
    }

    #[test]
    fn events_keep_seq_order_and_payload() {
        let obs = Obs::new(16);
        obs.record(
            EventKind::Enter,
            10,
            2,
            3,
            99,
            "2pc.prepare",
            &[("peers", 2)],
        );
        obs.record(EventKind::Exit, 25, 2, 3, 99, "2pc.prepare", &[]);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Enter);
        assert_eq!(events[0].args, vec![("peers", 2)]);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].ts, 25);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let obs = Obs::new(0);
        ev(&obs, EventKind::Instant, 1, "x");
        assert_eq!(obs.events().len(), 1);
    }
}
