//! Span-tree reconstruction and trace invariants.
//!
//! Enter/exit events recorded by one fiber form a properly-nested bracket
//! sequence (spans are RAII guards), so per `(node, fiber)` a stack rebuilds
//! the tree. [`check_invariants`] is the test-suite workhorse: every enter
//! has a matching exit, children nest inside parents, and virtual
//! timestamps are monotone per fiber.

use std::collections::BTreeMap;

use crate::{EventKind, Nanos, TraceEvent};

/// One reconstructed span. `start == end` for instants.
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name (`"layer.phase"`).
    pub phase: &'static str,
    /// Node the span executed on.
    pub node: u32,
    /// Fiber that recorded it.
    pub fiber: u64,
    /// Transaction in scope (0 = none).
    pub txn: u64,
    /// Virtual enter time.
    pub start: Nanos,
    /// Virtual exit time.
    pub end: Nanos,
    /// Properly nested children, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// Duration in virtual nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// This span plus all descendants, depth-first.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }
}

struct Frame {
    span: Span,
}

/// Rebuilds the span forest from an event slice (must be in `seq` order).
///
/// # Errors
///
/// Returns a description of the first violated invariant: an exit without a
/// matching enter, a phase-mismatched exit, a non-monotone timestamp within
/// a fiber, or an unclosed span at end of trace.
pub fn build_forest(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    // Per-(node, fiber) open-span stack and last-seen timestamp.
    let mut stacks: BTreeMap<(u32, u64), Vec<Frame>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u32, u64), Nanos> = BTreeMap::new();
    let mut roots: Vec<Span> = Vec::new();

    for e in events {
        let key = (e.node, e.fiber);
        if let Some(&prev) = last_ts.get(&key) {
            if e.ts < prev {
                return Err(format!(
                    "non-monotone timestamp on node {} fiber {}: {} after {} (phase {})",
                    e.node, e.fiber, e.ts, prev, e.phase
                ));
            }
        }
        last_ts.insert(key, e.ts);
        let stack = stacks.entry(key).or_default();
        match e.kind {
            EventKind::Enter => stack.push(Frame {
                span: Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    children: Vec::new(),
                },
            }),
            EventKind::Exit => {
                let Some(mut frame) = stack.pop() else {
                    return Err(format!(
                        "exit without enter on node {} fiber {}: phase {} at {}",
                        e.node, e.fiber, e.phase, e.ts
                    ));
                };
                if frame.span.phase != e.phase {
                    return Err(format!(
                        "mismatched exit on node {} fiber {}: open span {} closed as {}",
                        e.node, e.fiber, frame.span.phase, e.phase
                    ));
                }
                frame.span.end = e.ts;
                match stack.last_mut() {
                    Some(parent) => parent.span.children.push(frame.span),
                    None => roots.push(frame.span),
                }
            }
            EventKind::Instant => {
                let leaf = Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.span.children.push(leaf),
                    None => roots.push(leaf),
                }
            }
        }
    }

    for ((node, fiber), stack) in &stacks {
        if let Some(frame) = stack.last() {
            return Err(format!(
                "unclosed span on node {node} fiber {fiber}: {}",
                frame.span.phase
            ));
        }
    }
    Ok(roots)
}

fn check_nesting(span: &Span) -> Result<(), String> {
    for child in &span.children {
        if child.start < span.start || child.end > span.end {
            return Err(format!(
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                child.phase, child.start, child.end, span.phase, span.start, span.end
            ));
        }
        check_nesting(child)?;
    }
    Ok(())
}

/// Checks every trace invariant: balanced enter/exit, per-fiber timestamp
/// monotonicity (both via [`build_forest`]) and child-inside-parent
/// intervals. Returns the forest on success so tests can assert structure.
///
/// # Errors
///
/// The first violated invariant, as text.
pub fn check_invariants(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    let forest = build_forest(events)?;
    for root in &forest {
        check_nesting(root)?;
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(seq: u64, ts: Nanos, fiber: u64, kind: EventKind, phase: &'static str) -> TraceEvent {
        TraceEvent {
            seq,
            ts,
            node: 1,
            fiber,
            txn: 9,
            phase,
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn builds_nested_forest() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "2pc.commit"),
            e(1, 12, 0, EventKind::Enter, "2pc.prepare"),
            e(2, 13, 0, EventKind::Instant, "net.send"),
            e(3, 20, 0, EventKind::Exit, "2pc.prepare"),
            e(4, 30, 0, EventKind::Exit, "2pc.commit"),
        ];
        let forest = check_invariants(&events).unwrap();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.phase, "2pc.commit");
        assert_eq!(root.duration(), 20);
        assert_eq!(root.count(), 3);
        assert_eq!(root.children[0].children[0].phase, "net.send");
    }

    #[test]
    fn fibers_are_independent_stacks() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "a"),
            e(1, 11, 1, EventKind::Enter, "b"),
            e(2, 12, 0, EventKind::Exit, "a"),
            e(3, 13, 1, EventKind::Exit, "b"),
        ];
        let forest = check_invariants(&events).unwrap();
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn detects_unbalanced_exit() {
        let events = vec![e(0, 10, 0, EventKind::Exit, "a")];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("exit without enter"));
    }

    #[test]
    fn detects_mismatched_exit() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "a"),
            e(1, 12, 0, EventKind::Exit, "b"),
        ];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("mismatched exit"));
    }

    #[test]
    fn detects_unclosed_span() {
        let events = vec![e(0, 10, 0, EventKind::Enter, "a")];
        assert!(build_forest(&events).unwrap_err().contains("unclosed span"));
    }

    #[test]
    fn detects_non_monotone_timestamps() {
        let events = vec![
            e(0, 10, 0, EventKind::Instant, "a"),
            e(1, 5, 0, EventKind::Instant, "b"),
        ];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("non-monotone timestamp"));
    }
}
