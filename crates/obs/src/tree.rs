//! Span-tree reconstruction and trace invariants.
//!
//! Enter/exit events recorded by one fiber form a properly-nested bracket
//! sequence (spans are RAII guards), so per `(node, fiber)` a stack rebuilds
//! the tree. [`check_invariants`] is the test-suite workhorse: every enter
//! has a matching exit, children nest inside parents, and virtual
//! timestamps are monotone per fiber.

use std::collections::BTreeMap;

use crate::{EventKind, Nanos, TraceEvent};

/// One reconstructed span. `start == end` for instants.
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name (`"layer.phase"`).
    pub phase: &'static str,
    /// Node the span executed on.
    pub node: u32,
    /// Fiber that recorded it.
    pub fiber: u64,
    /// Transaction in scope (0 = none).
    pub txn: u64,
    /// Virtual enter time.
    pub start: Nanos,
    /// Virtual exit time.
    pub end: Nanos,
    /// Numeric payload from the enter (or instant) event.
    pub args: Vec<(&'static str, u64)>,
    /// Properly nested children, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// Duration in virtual nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// This span plus all descendants, depth-first.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }
}

struct Frame {
    span: Span,
}

/// Rebuilds the span forest from an event slice (must be in `seq` order).
///
/// # Errors
///
/// Returns a description of the first violated invariant: an exit without a
/// matching enter, a phase-mismatched exit, a non-monotone timestamp within
/// a fiber, or an unclosed span at end of trace.
pub fn build_forest(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    // Per-(node, fiber) open-span stack and last-seen timestamp.
    let mut stacks: BTreeMap<(u32, u64), Vec<Frame>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u32, u64), Nanos> = BTreeMap::new();
    let mut roots: Vec<Span> = Vec::new();

    for e in events {
        let key = (e.node, e.fiber);
        if let Some(&prev) = last_ts.get(&key) {
            if e.ts < prev {
                return Err(format!(
                    "non-monotone timestamp on node {} fiber {}: {} after {} (phase {})",
                    e.node, e.fiber, e.ts, prev, e.phase
                ));
            }
        }
        last_ts.insert(key, e.ts);
        let stack = stacks.entry(key).or_default();
        match e.kind {
            EventKind::Enter => stack.push(Frame {
                span: Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    args: e.args.clone(),
                    children: Vec::new(),
                },
            }),
            EventKind::Exit => {
                let Some(mut frame) = stack.pop() else {
                    return Err(format!(
                        "exit without enter on node {} fiber {}: phase {} at {}",
                        e.node, e.fiber, e.phase, e.ts
                    ));
                };
                if frame.span.phase != e.phase {
                    return Err(format!(
                        "mismatched exit on node {} fiber {}: open span {} closed as {}",
                        e.node, e.fiber, frame.span.phase, e.phase
                    ));
                }
                frame.span.end = e.ts;
                match stack.last_mut() {
                    Some(parent) => parent.span.children.push(frame.span),
                    None => roots.push(frame.span),
                }
            }
            EventKind::Instant => {
                let leaf = Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    args: e.args.clone(),
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.span.children.push(leaf),
                    None => roots.push(leaf),
                }
            }
        }
    }

    for ((node, fiber), stack) in &stacks {
        if let Some(frame) = stack.last() {
            return Err(format!(
                "unclosed span on node {node} fiber {fiber}: {}",
                frame.span.phase
            ));
        }
    }
    Ok(roots)
}

/// A span forest rebuilt best-effort from a trace that may have lost its
/// oldest events to the ring buffer ([`crate::Obs::dropped`]).
///
/// Where [`build_forest`] hard-errors on the first inconsistency, this
/// builder degrades: exits whose enters were evicted are skipped and
/// counted, spans still open at the end of the trace are closed at the
/// fiber's last-seen timestamp, and the whole result carries an explicit
/// `truncated` marker so downstream reports can say so instead of failing.
#[derive(Debug, Clone)]
pub struct LossyForest {
    /// Partial per-txn span trees, best effort.
    pub roots: Vec<Span>,
    /// True when any repair was applied (or the caller reported drops).
    pub truncated: bool,
    /// Exit events without a matching open span (enter evicted).
    pub orphan_exits: u64,
    /// Spans force-closed at end of trace (exit evicted or never recorded).
    pub unclosed_spans: u64,
    /// Events skipped for non-monotone timestamps within a fiber.
    pub skipped_events: u64,
}

/// Rebuilds the span forest tolerantly; never errors. `dropped` is the
/// ring-buffer drop count from [`crate::Obs::dropped`] — a nonzero value
/// marks the result truncated even when every retained event still pairs.
pub fn build_forest_lossy(events: &[TraceEvent], dropped: u64) -> LossyForest {
    let mut stacks: BTreeMap<(u32, u64), Vec<Frame>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u32, u64), Nanos> = BTreeMap::new();
    let mut roots: Vec<Span> = Vec::new();
    let mut orphan_exits = 0u64;
    let mut skipped_events = 0u64;

    for e in events {
        let key = (e.node, e.fiber);
        if last_ts.get(&key).is_some_and(|&prev| e.ts < prev) {
            skipped_events += 1;
            continue;
        }
        last_ts.insert(key, e.ts);
        let stack = stacks.entry(key).or_default();
        match e.kind {
            EventKind::Enter => stack.push(Frame {
                span: Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    args: e.args.clone(),
                    children: Vec::new(),
                },
            }),
            EventKind::Exit => {
                if stack.last().is_some_and(|f| f.span.phase == e.phase) {
                    let mut frame = stack.pop().expect("matched above");
                    frame.span.end = e.ts;
                    match stack.last_mut() {
                        Some(parent) => parent.span.children.push(frame.span),
                        None => roots.push(frame.span),
                    }
                } else {
                    // The matching enter fell out of the ring buffer.
                    orphan_exits += 1;
                }
            }
            EventKind::Instant => {
                let leaf = Span {
                    phase: e.phase,
                    node: e.node,
                    fiber: e.fiber,
                    txn: e.txn,
                    start: e.ts,
                    end: e.ts,
                    args: e.args.clone(),
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.span.children.push(leaf),
                    None => roots.push(leaf),
                }
            }
        }
    }

    // Close anything still open at the fiber's last-seen timestamp so the
    // partial tree stays well-nested (children never escape parents).
    let mut unclosed_spans = 0u64;
    for ((node, fiber), stack) in stacks {
        let end = last_ts.get(&(node, fiber)).copied().unwrap_or(0);
        let mut pending: Option<Span> = None;
        for mut frame in stack.into_iter().rev() {
            unclosed_spans += 1;
            frame.span.end = end;
            if let Some(child) = pending.take() {
                frame.span.children.push(child);
            }
            pending = Some(frame.span);
        }
        if let Some(span) = pending {
            roots.push(span);
        }
    }
    roots.sort_by_key(|s| (s.start, s.node, s.fiber));

    LossyForest {
        roots,
        truncated: dropped > 0 || orphan_exits > 0 || unclosed_spans > 0 || skipped_events > 0,
        orphan_exits,
        unclosed_spans,
        skipped_events,
    }
}

fn check_nesting(span: &Span) -> Result<(), String> {
    for child in &span.children {
        if child.start < span.start || child.end > span.end {
            return Err(format!(
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                child.phase, child.start, child.end, span.phase, span.start, span.end
            ));
        }
        check_nesting(child)?;
    }
    Ok(())
}

/// Checks every trace invariant: balanced enter/exit, per-fiber timestamp
/// monotonicity (both via [`build_forest`]) and child-inside-parent
/// intervals. Returns the forest on success so tests can assert structure.
///
/// # Errors
///
/// The first violated invariant, as text.
pub fn check_invariants(events: &[TraceEvent]) -> Result<Vec<Span>, String> {
    let forest = build_forest(events)?;
    for root in &forest {
        check_nesting(root)?;
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(seq: u64, ts: Nanos, fiber: u64, kind: EventKind, phase: &'static str) -> TraceEvent {
        TraceEvent {
            seq,
            ts,
            node: 1,
            fiber,
            txn: 9,
            phase,
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn builds_nested_forest() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "2pc.commit"),
            e(1, 12, 0, EventKind::Enter, "2pc.prepare"),
            e(2, 13, 0, EventKind::Instant, "net.send"),
            e(3, 20, 0, EventKind::Exit, "2pc.prepare"),
            e(4, 30, 0, EventKind::Exit, "2pc.commit"),
        ];
        let forest = check_invariants(&events).unwrap();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.phase, "2pc.commit");
        assert_eq!(root.duration(), 20);
        assert_eq!(root.count(), 3);
        assert_eq!(root.children[0].children[0].phase, "net.send");
    }

    #[test]
    fn fibers_are_independent_stacks() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "a"),
            e(1, 11, 1, EventKind::Enter, "b"),
            e(2, 12, 0, EventKind::Exit, "a"),
            e(3, 13, 1, EventKind::Exit, "b"),
        ];
        let forest = check_invariants(&events).unwrap();
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn detects_unbalanced_exit() {
        let events = vec![e(0, 10, 0, EventKind::Exit, "a")];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("exit without enter"));
    }

    #[test]
    fn detects_mismatched_exit() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "a"),
            e(1, 12, 0, EventKind::Exit, "b"),
        ];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("mismatched exit"));
    }

    #[test]
    fn detects_unclosed_span() {
        let events = vec![e(0, 10, 0, EventKind::Enter, "a")];
        assert!(build_forest(&events).unwrap_err().contains("unclosed span"));
    }

    #[test]
    fn lossy_skips_orphan_exits_and_marks_truncated() {
        // The enter for the first exit fell out of the ring buffer.
        let events = vec![
            e(0, 10, 0, EventKind::Exit, "evicted"),
            e(1, 11, 0, EventKind::Enter, "a"),
            e(2, 12, 0, EventKind::Exit, "a"),
        ];
        let lossy = build_forest_lossy(&events, 5);
        assert!(lossy.truncated);
        assert_eq!(lossy.orphan_exits, 1);
        assert_eq!(lossy.roots.len(), 1);
        assert_eq!(lossy.roots[0].phase, "a");
    }

    #[test]
    fn lossy_closes_unclosed_spans_at_last_seen_ts() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "outer"),
            e(1, 12, 0, EventKind::Enter, "inner"),
            e(2, 15, 0, EventKind::Instant, "mark"),
        ];
        let lossy = build_forest_lossy(&events, 0);
        assert!(lossy.truncated);
        assert_eq!(lossy.unclosed_spans, 2);
        assert_eq!(lossy.roots.len(), 1);
        let outer = &lossy.roots[0];
        assert_eq!(outer.phase, "outer");
        assert_eq!(outer.end, 15, "closed at the fiber's last timestamp");
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].phase, "inner");
        assert_eq!(outer.children[0].children[0].phase, "mark");
    }

    #[test]
    fn lossy_matches_strict_on_clean_traces() {
        let events = vec![
            e(0, 10, 0, EventKind::Enter, "2pc.commit"),
            e(1, 12, 0, EventKind::Enter, "2pc.prepare"),
            e(2, 20, 0, EventKind::Exit, "2pc.prepare"),
            e(3, 30, 0, EventKind::Exit, "2pc.commit"),
        ];
        let strict = build_forest(&events).unwrap();
        let lossy = build_forest_lossy(&events, 0);
        assert!(!lossy.truncated);
        assert_eq!(lossy.roots.len(), strict.len());
        assert_eq!(lossy.roots[0].count(), strict[0].count());
        // A reported drop count alone marks the result truncated.
        assert!(build_forest_lossy(&events, 1).truncated);
    }

    #[test]
    fn detects_non_monotone_timestamps() {
        let events = vec![
            e(0, 10, 0, EventKind::Instant, "a"),
            e(1, 5, 0, EventKind::Instant, "b"),
        ];
        assert!(build_forest(&events)
            .unwrap_err()
            .contains("non-monotone timestamp"));
    }
}
