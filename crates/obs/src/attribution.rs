//! Critical-path extraction and tail-latency attribution.
//!
//! The paper's evaluation answers "how fast is a secure transaction"; this
//! module answers *why is a slow one slow*. For every committed
//! transaction it walks the cross-node span forest — client → coordinator
//! 2PC phases → participants → Clog → store, with RPC handler spans
//! bridging nodes — extracts the critical path, and attributes every
//! virtual nanosecond of the client-observed latency to one of a small
//! closed [`Category`] set. Attributions aggregate per latency bucket
//! (≤p50, p50–p90, p90–p99, ≥p99) into a "why is p99 slow" report with
//! top-N slow-transaction exemplars, exported as text and deterministic
//! JSON.
//!
//! # The walk
//!
//! A transaction's anchor is its client-side root spans (`client.op`,
//! `client.commit`), found via the `client.committed` instant that also
//! carries the measured end-to-end latency. Time inside a span is carved
//! by its same-fiber children (recursing into each); the remaining *self*
//! time is refined by projecting the transaction's *service-root* spans —
//! spans recorded on another `(node, fiber)`, i.e. the RPC handler doing
//! this transaction's work on a remote node. A covered sub-interval
//! recurses into that handler (when concurrent handlers overlap, the one
//! ending last is the critical branch — the fan-in waits for it); the
//! uncovered remainder of a *waiting* span is the wire: network flight,
//! minus any `queue_ns`/`open_ns` the handler reported, which become
//! queueing and TEE-boundary time respectively. Self time of a
//! non-waiting span keeps the span's own category. Every nanosecond of
//! the window is attributed exactly once, so per-transaction coverage of
//! the measured latency is structural, not sampled.
//!
//! Determinism: the walk and every export iterate the event order and
//! `BTreeMap`s; ties break on fixed category order and span ids. Same
//! events, same bytes — asserted by test.

use std::collections::BTreeMap;

use crate::tree::{build_forest_lossy, Span};
use crate::{Nanos, TraceEvent};

/// Number of attribution categories.
pub const CATEGORY_COUNT: usize = 8;

/// The closed category set every critical-path nanosecond maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Blocked in the 2PC lock table (`store.lock_wait`).
    LockWait,
    /// Commit-log durability: log writes and counter stabilization.
    ClogDurability,
    /// Wire time: NIC serialization spans plus uncovered remote-wait gaps.
    Network,
    /// Store read path (point gets, snapshot reads/validation).
    StoreRead,
    /// Store write path (commit apply, flush, compaction on-path).
    StoreWrite,
    /// TEE boundary: shielded RPC open/seal and handler crypto overhead.
    Tee,
    /// Queueing: RPC worker backlog and decision-dispatch batching.
    Queueing,
    /// Everything else (coordinator CPU, client-side think time).
    Other,
}

impl Category {
    /// All categories, in the fixed report order.
    pub const ALL: [Category; CATEGORY_COUNT] = [
        Category::LockWait,
        Category::ClogDurability,
        Category::Network,
        Category::StoreRead,
        Category::StoreWrite,
        Category::Tee,
        Category::Queueing,
        Category::Other,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::LockWait => "lock-wait",
            Category::ClogDurability => "clog-durability",
            Category::Network => "network",
            Category::StoreRead => "store-read",
            Category::StoreWrite => "store-write",
            Category::Tee => "tee",
            Category::Queueing => "queueing",
            Category::Other => "other",
        }
    }

    /// Index into a `[u64; CATEGORY_COUNT]` accumulator.
    pub fn index(self) -> usize {
        Category::ALL.iter().position(|c| *c == self).expect("ALL is total")
    }

    /// Maps a span phase to its category (the span's *self* time).
    pub fn of_phase(phase: &str) -> Category {
        if phase == "store.lock_wait" {
            Category::LockWait
        } else if phase.starts_with("clog.") {
            Category::ClogDurability
        } else if phase.starts_with("net.") {
            Category::Network
        } else if phase == "store.get" || phase.starts_with("core.snapshot_") {
            Category::StoreRead
        } else if phase.starts_with("store.") {
            Category::StoreWrite
        } else if phase.starts_with("tee.") || phase == "rpc.handle" {
            Category::Tee
        } else if phase == "2pc.dispatch_decisions" {
            Category::Queueing
        } else {
            Category::Other
        }
    }
}

/// Phases whose self time means "parked waiting for a remote reply": the
/// uncovered remainder (after projecting remote handler spans) is wire
/// time, not local work.
fn is_waiting(phase: &str) -> bool {
    matches!(
        phase,
        "client.op"
            | "client.commit"
            | "client.snapshot_read"
            | "client.snapshot_validate"
            | "2pc.prepare"
            | "2pc.coordinate_op"
            | "2pc.send_decision"
            | "2pc.rollback"
    )
}

/// Flattened span arena node.
struct Flat {
    phase: &'static str,
    node: u32,
    fiber: u64,
    start: Nanos,
    end: Nanos,
    /// Reported time the request sat in the RPC worker queue before this
    /// handler span opened (`queue_ns` arg on `rpc.handle`).
    queue_ns: u64,
    /// Reported boundary-crypto time immediately before this handler span
    /// opened (`open_ns` arg on `rpc.handle`).
    open_ns: u64,
    children: Vec<usize>,
}

fn arg(span: &Span, key: &str) -> u64 {
    span.args.iter().find(|(k, _)| *k == key).map_or(0, |(_, v)| *v)
}

fn flatten(
    span: &Span,
    parent_txn: u64,
    arena: &mut Vec<Flat>,
    roots_by_txn: &mut BTreeMap<u64, Vec<usize>>,
) {
    let idx = arena.len();
    arena.push(Flat {
        phase: span.phase,
        node: span.node,
        fiber: span.fiber,
        start: span.start,
        end: span.end,
        queue_ns: arg(span, "queue_ns"),
        open_ns: arg(span, "open_ns"),
        children: Vec::new(),
    });
    if span.txn != 0 && span.txn != parent_txn && span.end > span.start {
        // A span entering a transaction's scope fresh on this fiber: the
        // unit of remote work the critical path can jump into.
        roots_by_txn.entry(span.txn).or_default().push(idx);
    }
    for child in &span.children {
        let c = arena.len();
        flatten(child, span.txn, arena, roots_by_txn);
        arena[idx].children.push(c);
    }
}

/// Per-transaction accumulator: category totals plus per-(category, phase)
/// segments for exemplars.
#[derive(Default)]
struct Acc {
    by_category: [u64; CATEGORY_COUNT],
    segments: BTreeMap<(usize, &'static str), u64>,
}

impl Acc {
    fn add(&mut self, cat: Category, phase: &'static str, ns: u64) {
        if ns == 0 {
            return;
        }
        self.by_category[cat.index()] += ns;
        *self.segments.entry((cat.index(), phase)).or_insert(0) += ns;
    }
}

struct Walker<'a> {
    arena: &'a [Flat],
    /// Service roots of the transaction under attribution, by arena index.
    roots: &'a [usize],
}

impl Walker<'_> {
    fn walk(&self, idx: usize, lo: Nanos, hi: Nanos, path: &mut Vec<usize>, acc: &mut Acc) {
        let s = &self.arena[idx];
        let lo = lo.max(s.start);
        let hi = hi.min(s.end);
        if lo >= hi {
            return;
        }
        path.push(idx);
        let self_cat = Category::of_phase(s.phase);
        // Does this span overlap remote work for the transaction at all?
        // If not, its uncovered time is local work even for waiting spans.
        let waiting = is_waiting(s.phase)
            && self.roots.iter().any(|&r| {
                let f = &self.arena[r];
                (f.node, f.fiber) != (s.node, s.fiber)
                    && f.start < s.end
                    && f.end > s.start
                    && !path.contains(&r)
            });
        let mut cursor = lo;
        for &c in &s.children {
            let cf = &self.arena[c];
            if cf.end <= cursor || cf.start >= hi {
                continue;
            }
            let cs = cf.start.max(cursor);
            let ce = cf.end.min(hi);
            self.gap(idx, self_cat, waiting, cursor, cs, path, acc);
            self.walk(c, cs, ce, path, acc);
            cursor = ce.max(cursor);
        }
        self.gap(idx, self_cat, waiting, cursor, hi, path, acc);
        path.pop();
    }

    /// Attributes one self-time interval `[a, b)` of span `idx`.
    #[allow(clippy::too_many_arguments)]
    fn gap(
        &self,
        idx: usize,
        self_cat: Category,
        waiting: bool,
        a: Nanos,
        b: Nanos,
        path: &mut Vec<usize>,
        acc: &mut Acc,
    ) {
        if a >= b {
            return;
        }
        let s = &self.arena[idx];
        // The critical remote branch: among the transaction's service
        // roots overlapping this interval on another fiber, the one that
        // ends last — a fan-in waits for its slowest member.
        let mut best: Option<usize> = None;
        for &r in self.roots {
            let f = &self.arena[r];
            if (f.node, f.fiber) == (s.node, s.fiber) || path.contains(&r) {
                continue;
            }
            if f.start >= b || f.end <= a {
                continue;
            }
            best = Some(match best {
                None => r,
                Some(p) => {
                    let pf = &self.arena[p];
                    if (f.end, f.start, r) > (pf.end, pf.start, p) {
                        r
                    } else {
                        p
                    }
                }
            });
        }
        let Some(r) = best else {
            if waiting {
                acc.add(Category::Network, "(remote wait)", b - a);
            } else {
                acc.add(self_cat, s.phase, b - a);
            }
            return;
        };
        let (r_start, r_end, queue_ns, open_ns) = {
            let f = &self.arena[r];
            (f.start, f.end, f.queue_ns, f.open_ns)
        };
        let seg_lo = r_start.max(a);
        let seg_hi = r_end.min(b);
        if seg_hi < b {
            // After the critical remote finished: the reply in flight.
            acc.add(Category::Network, "(remote wait)", b - seg_hi);
        }
        self.walk(r, seg_lo, seg_hi, path, acc);
        if seg_lo > a {
            // Immediately before the handler opened: reported worker-queue
            // wait, then boundary crypto, then (recursively) whatever else
            // precedes — possibly an earlier-finishing remote branch.
            let mut rest = seg_lo - a;
            let q = queue_ns.min(rest);
            rest -= q;
            acc.add(Category::Queueing, "(rpc queue)", q);
            let o = open_ns.min(rest);
            rest -= o;
            acc.add(Category::Tee, "(rpc open)", o);
            if rest > 0 {
                self.gap(idx, self_cat, waiting, a, a + rest, path, acc);
            }
        }
    }
}

/// One committed transaction's attribution.
#[derive(Debug, Clone)]
pub struct TxnAttribution {
    /// Distributed transaction id.
    pub txn: u64,
    /// Client-measured end-to-end latency (begin → commit ack).
    pub measured_ns: u64,
    /// Total attributed critical-path time (the client span window).
    pub attributed_ns: u64,
    /// `[window start, window end)` on the virtual clock.
    pub window: (Nanos, Nanos),
    /// Per-category nanoseconds, indexed by [`Category::index`].
    pub by_category: [u64; CATEGORY_COUNT],
    /// Largest attributed segments, `(category, phase, ns)`, descending.
    pub top_segments: Vec<(Category, &'static str, u64)>,
}

impl TxnAttribution {
    /// The category holding the most critical-path time (fixed-order ties).
    pub fn dominant(&self) -> Category {
        let mut best = Category::Other;
        let mut best_ns = 0u64;
        for c in Category::ALL {
            let ns = self.by_category[c.index()];
            if ns > best_ns {
                best = c;
                best_ns = ns;
            }
        }
        best
    }

    /// Attributed share of the measured latency, in basis points.
    pub fn coverage_bp(&self) -> u64 {
        if self.measured_ns == 0 {
            return 10_000;
        }
        ((self.attributed_ns as u128 * 10_000) / self.measured_ns as u128) as u64
    }
}

/// Aggregate over one latency bucket.
#[derive(Debug, Clone)]
pub struct BucketAgg {
    /// Bucket name: `"le_p50"`, `"p50_p90"`, `"p90_p99"`, `"ge_p99"`.
    pub name: &'static str,
    /// Transactions in the bucket.
    pub txns: u64,
    /// Summed measured latency.
    pub measured_ns: u64,
    /// Summed attributed time.
    pub attributed_ns: u64,
    /// Per-category sums.
    pub by_category: [u64; CATEGORY_COUNT],
}

impl BucketAgg {
    /// The bucket's dominant category.
    pub fn dominant(&self) -> Category {
        let mut best = Category::Other;
        let mut best_ns = 0u64;
        for c in Category::ALL {
            let ns = self.by_category[c.index()];
            if ns > best_ns {
                best = c;
                best_ns = ns;
            }
        }
        best
    }
}

/// The full attribution report for one traced run.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Per-transaction attributions, ascending by transaction id.
    pub txns: Vec<TxnAttribution>,
    /// Ring-buffer drops reported by the sink.
    pub dropped_events: u64,
    /// True when the forest was repaired (drops, orphan exits, unclosed).
    pub truncated: bool,
    /// Whole-run per-category sums.
    pub by_category: [u64; CATEGORY_COUNT],
    /// Latency buckets: ≤p50, p50–p90, p90–p99, ≥p99 (slowest txn always
    /// lands in ≥p99, so the tail bucket is never empty).
    pub buckets: Vec<BucketAgg>,
    /// Slowest transactions, descending by measured latency.
    pub exemplars: Vec<TxnAttribution>,
}

/// How many slow-transaction exemplars the report keeps.
pub const EXEMPLARS: usize = 3;

/// How many top segments each exemplar keeps.
pub const TOP_SEGMENTS: usize = 5;

/// Walks every committed transaction (identified by its
/// `client.committed` instant, which carries the measured `elapsed_ns`)
/// and attributes its critical path. Never errors: under ring-buffer
/// pressure the forest degrades to partial trees and the report is marked
/// `truncated`.
pub fn attribute(events: &[TraceEvent], dropped: u64) -> AttributionReport {
    let lossy = build_forest_lossy(events, dropped);
    let mut arena: Vec<Flat> = Vec::new();
    let mut roots_by_txn: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for root in &lossy.roots {
        flatten(root, 0, &mut arena, &mut roots_by_txn);
    }

    // Committed transactions: client.committed instants carry the
    // client-measured latency and identify the client (node, fiber).
    let mut committed: BTreeMap<u64, (u64, (u32, u64))> = BTreeMap::new();
    for e in events {
        if e.phase == "client.committed" && e.txn != 0 {
            let elapsed = e.args.iter().find(|(k, _)| *k == "elapsed_ns").map_or(0, |(_, v)| *v);
            committed.insert(e.txn, (elapsed, (e.node, e.fiber)));
        }
    }

    let mut txns: Vec<TxnAttribution> = Vec::new();
    for (&txn, &(measured_ns, client_nf)) in &committed {
        let roots = match roots_by_txn.get(&txn) {
            Some(r) => r.as_slice(),
            None => continue,
        };
        // The client-side anchor spans, in start order.
        let mut client_roots: Vec<usize> = roots
            .iter()
            .copied()
            .filter(|&i| {
                let f = &arena[i];
                (f.node, f.fiber) == client_nf && f.phase.starts_with("client.")
            })
            .collect();
        if client_roots.is_empty() {
            continue;
        }
        client_roots.sort_by_key(|&i| (arena[i].start, i));
        let w_lo = arena[client_roots[0]].start;
        let w_hi = client_roots.iter().map(|&i| arena[i].end).max().unwrap_or(w_lo);

        let walker = Walker { arena: &arena, roots };
        let mut acc = Acc::default();
        let mut path = Vec::new();
        let mut cursor = w_lo;
        for &i in &client_roots {
            let f = &arena[i];
            if f.start > cursor {
                // Between client calls: client-side think/loop time.
                acc.add(Category::Other, "(client idle)", f.start - cursor);
            }
            walker.walk(i, f.start, f.end, &mut path, &mut acc);
            cursor = cursor.max(f.end);
        }

        let mut segments: Vec<(Category, &'static str, u64)> = acc
            .segments
            .iter()
            .map(|(&(ci, phase), &ns)| (Category::ALL[ci], phase, ns))
            .collect();
        segments.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(b.1)));
        segments.truncate(TOP_SEGMENTS);

        txns.push(TxnAttribution {
            txn,
            measured_ns,
            attributed_ns: acc.by_category.iter().sum(),
            window: (w_lo, w_hi),
            by_category: acc.by_category,
            top_segments: segments,
        });
    }

    // Whole-run totals.
    let mut by_category = [0u64; CATEGORY_COUNT];
    for t in &txns {
        for i in 0..CATEGORY_COUNT {
            by_category[i] += t.by_category[i];
        }
    }

    // Latency buckets by rank: the slowest transaction always lands in
    // ≥p99 so the tail report is never empty.
    let mut by_latency: Vec<usize> = (0..txns.len()).collect();
    by_latency.sort_by_key(|&i| (txns[i].measured_ns, txns[i].txn));
    let n = by_latency.len();
    let bound = |pct: usize| -> usize { (n * pct).div_ceil(100) };
    let b99 = bound(99).min(n.saturating_sub(1));
    let b90 = bound(90).min(b99);
    let b50 = bound(50).min(b90);
    let names = ["le_p50", "p50_p90", "p90_p99", "ge_p99"];
    let ranges = [(0, b50), (b50, b90), (b90, b99), (b99, n)];
    let mut buckets = Vec::with_capacity(4);
    for (name, (lo, hi)) in names.iter().zip(ranges) {
        let mut agg = BucketAgg {
            name,
            txns: 0,
            measured_ns: 0,
            attributed_ns: 0,
            by_category: [0; CATEGORY_COUNT],
        };
        for &i in &by_latency[lo..hi] {
            let t = &txns[i];
            agg.txns += 1;
            agg.measured_ns += t.measured_ns;
            agg.attributed_ns += t.attributed_ns;
            for c in 0..CATEGORY_COUNT {
                agg.by_category[c] += t.by_category[c];
            }
        }
        buckets.push(agg);
    }

    let mut exemplars: Vec<TxnAttribution> = by_latency
        .iter()
        .rev()
        .take(EXEMPLARS)
        .map(|&i| txns[i].clone())
        .collect();
    exemplars.sort_by(|a, b| b.measured_ns.cmp(&a.measured_ns).then(a.txn.cmp(&b.txn)));

    AttributionReport {
        txns,
        dropped_events: dropped,
        truncated: lossy.truncated,
        by_category,
        buckets,
        exemplars,
    }
}

impl AttributionReport {
    /// Summed measured latency over all committed transactions.
    pub fn measured_total(&self) -> u64 {
        self.txns.iter().map(|t| t.measured_ns).sum()
    }

    /// Summed attributed time over all committed transactions.
    pub fn attributed_total(&self) -> u64 {
        self.txns.iter().map(|t| t.attributed_ns).sum()
    }

    /// Run-wide coverage in basis points.
    pub fn coverage_bp(&self) -> u64 {
        let m = self.measured_total();
        if m == 0 {
            return 10_000;
        }
        ((self.attributed_total() as u128 * 10_000) / m as u128) as u64
    }

    /// The worst per-transaction coverage in basis points (10000 if no
    /// transactions committed) — the SLO gate: attribution must explain
    /// ≥95% of *every* committed transaction's measured latency.
    pub fn min_coverage_bp(&self) -> u64 {
        self.txns.iter().map(TxnAttribution::coverage_bp).min().unwrap_or(10_000)
    }

    /// Dominant category of the tail (≥p99) bucket; `None` with no txns.
    pub fn p99_dominant(&self) -> Option<Category> {
        self.buckets.iter().find(|b| b.name == "ge_p99" && b.txns > 0).map(BucketAgg::dominant)
    }

    /// Deterministic JSON export (integers only — shares are basis points).
    pub fn to_json(&self) -> String {
        fn cats(out: &mut String, by: &[u64; CATEGORY_COUNT], total: u64) {
            out.push('[');
            for (i, c) in Category::ALL.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let ns = by[c.index()];
                let bp = if total == 0 { 0 } else { (ns as u128 * 10_000 / total as u128) as u64 };
                out.push_str(&format!(
                    "{{\"category\":\"{}\",\"ns\":{},\"share_bp\":{}}}",
                    c.name(),
                    ns,
                    bp
                ));
            }
            out.push(']');
        }
        let mut out = String::new();
        out.push_str("{\"report\":\"attribution\",");
        out.push_str(&format!(
            "\"txns\":{},\"dropped_events\":{},\"truncated\":{},",
            self.txns.len(),
            self.dropped_events,
            self.truncated
        ));
        out.push_str(&format!(
            "\"totals\":{{\"measured_ns\":{},\"attributed_ns\":{},\"coverage_bp\":{},\"min_txn_coverage_bp\":{}}},",
            self.measured_total(),
            self.attributed_total(),
            self.coverage_bp(),
            self.min_coverage_bp()
        ));
        out.push_str("\"categories\":");
        cats(&mut out, &self.by_category, self.attributed_total());
        out.push_str(",\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"bucket\":\"{}\",\"txns\":{},\"measured_ns\":{},\"attributed_ns\":{},\"dominant\":\"{}\",\"categories\":",
                b.name,
                b.txns,
                b.measured_ns,
                b.attributed_ns,
                if b.txns == 0 { "none" } else { b.dominant().name() }
            ));
            cats(&mut out, &b.by_category, b.attributed_ns);
            out.push('}');
        }
        out.push_str("],\"exemplars\":[");
        for (i, t) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"txn\":{},\"measured_ns\":{},\"attributed_ns\":{},\"dominant\":\"{}\",\"categories\":",
                t.txn,
                t.measured_ns,
                t.attributed_ns,
                t.dominant().name()
            ));
            cats(&mut out, &t.by_category, t.attributed_ns);
            out.push_str(",\"top_segments\":[");
            for (j, (c, phase, ns)) in t.top_segments.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"phase\":\"{}\",\"category\":\"{}\",\"ns\":{}}}",
                    phase,
                    c.name(),
                    ns
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Fixed-width text report (byte-deterministic).
    pub fn render(&self) -> String {
        fn us(ns: u64) -> String {
            format!("{}.{:03}us", ns / 1_000, ns % 1_000)
        }
        let mut out = String::new();
        out.push_str(&format!(
            "critical-path attribution: {} committed txns, coverage {}.{:02}% (min txn {}.{:02}%)\n",
            self.txns.len(),
            self.coverage_bp() / 100,
            self.coverage_bp() % 100,
            self.min_coverage_bp() / 100,
            self.min_coverage_bp() % 100,
        ));
        if self.truncated {
            out.push_str(&format!(
                "  TRUNCATED: {} events dropped by the ring buffer; partial trees\n",
                self.dropped_events
            ));
        }
        out.push_str(&format!("{:<18} {:>8} {:>16} {:>16}  dominant\n", "bucket", "txns", "measured", "attributed"));
        for b in &self.buckets {
            out.push_str(&format!(
                "{:<18} {:>8} {:>16} {:>16}  {}\n",
                b.name,
                b.txns,
                us(b.measured_ns),
                us(b.attributed_ns),
                if b.txns == 0 { "none" } else { b.dominant().name() }
            ));
        }
        out.push_str("\nper-category critical-path time:\n");
        let total = self.attributed_total();
        for c in Category::ALL {
            let ns = self.by_category[c.index()];
            let bp = if total == 0 { 0 } else { (ns as u128 * 10_000 / total as u128) as u64 };
            out.push_str(&format!(
                "  {:<18} {:>16} {:>3}.{:02}%\n",
                c.name(),
                us(ns),
                bp / 100,
                bp % 100
            ));
        }
        out.push_str("\nslowest transactions:\n");
        for t in &self.exemplars {
            out.push_str(&format!(
                "  txn {:<12} measured {:>14} dominant {}\n",
                t.txn,
                us(t.measured_ns),
                t.dominant().name()
            ));
            for (c, phase, ns) in &t.top_segments {
                out.push_str(&format!("    {:<28} {:<16} {:>14}\n", phase, c.name(), us(*ns)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TraceEvent};

    struct Tracer {
        events: Vec<TraceEvent>,
        seq: u64,
    }

    impl Tracer {
        fn new() -> Self {
            Tracer { events: Vec::new(), seq: 0 }
        }

        fn ev(
            &mut self,
            ts: Nanos,
            node: u32,
            fiber: u64,
            txn: u64,
            kind: EventKind,
            phase: &'static str,
            args: &[(&'static str, u64)],
        ) {
            let seq = self.seq;
            self.seq += 1;
            self.events.push(TraceEvent {
                seq,
                ts,
                node,
                fiber,
                txn,
                kind,
                phase,
                args: args.to_vec(),
            });
        }
    }

    /// One committed txn: client [0, 100) commit span, coordinator handler
    /// [20, 80) with a clog child [30, 50) and a lock-wait child [50, 70).
    /// Expected: clog 20, lock-wait 20, coordinator self (Other) 20
    /// ([20,30)+[70,80)), network 40 ([0,20) request + [80,100) reply).
    fn single_coordinator_trace() -> Vec<TraceEvent> {
        let mut t = Tracer::new();
        let txn = 7;
        t.ev(0, 9, 1, txn, EventKind::Enter, "client.commit", &[]);
        // Coordinator node 1, worker fiber 2.
        t.ev(20, 1, 2, txn, EventKind::Enter, "2pc.commit", &[]);
        t.ev(30, 1, 2, txn, EventKind::Enter, "clog.log_decision", &[]);
        t.ev(50, 1, 2, txn, EventKind::Exit, "clog.log_decision", &[]);
        t.ev(50, 1, 2, txn, EventKind::Enter, "store.lock_wait", &[]);
        t.ev(70, 1, 2, txn, EventKind::Exit, "store.lock_wait", &[]);
        t.ev(80, 1, 2, txn, EventKind::Exit, "2pc.commit", &[]);
        t.ev(100, 9, 1, txn, EventKind::Instant, "client.committed", &[("elapsed_ns", 100)]);
        t.ev(100, 9, 1, txn, EventKind::Exit, "client.commit", &[]);
        t.events
    }

    #[test]
    fn attributes_known_critical_path_exactly() {
        let report = attribute(&single_coordinator_trace(), 0);
        assert_eq!(report.txns.len(), 1);
        let t = &report.txns[0];
        assert_eq!(t.measured_ns, 100);
        assert_eq!(t.attributed_ns, 100, "every nanosecond attributed");
        assert_eq!(t.by_category[Category::ClogDurability.index()], 20);
        assert_eq!(t.by_category[Category::LockWait.index()], 20);
        assert_eq!(t.by_category[Category::Other.index()], 20);
        assert_eq!(t.by_category[Category::Network.index()], 40);
        assert_eq!(t.dominant(), Category::Network);
        assert_eq!(t.coverage_bp(), 10_000);
    }

    /// Parallel prepare fan-out: the coordinator's 2pc.prepare [10, 100)
    /// overlaps participant handlers on node 2 [20, 40) and node 3
    /// [30, 90). The branch ending last (node 3) is critical; its store
    /// work [40, 80) counts, the rest of the overlap is participant self
    /// time (Other), and uncovered prepare time is network.
    #[test]
    fn concurrent_branches_pick_latest_end() {
        let mut tr = Tracer::new();
        let txn = 5;
        tr.ev(0, 9, 1, txn, EventKind::Enter, "client.commit", &[]);
        tr.ev(10, 1, 2, txn, EventKind::Enter, "2pc.prepare", &[]);
        tr.ev(20, 2, 3, txn, EventKind::Enter, "2pc.participant.prepare", &[]);
        tr.ev(30, 3, 4, txn, EventKind::Enter, "2pc.participant.prepare", &[]);
        tr.ev(40, 2, 3, txn, EventKind::Exit, "2pc.participant.prepare", &[]);
        tr.ev(40, 3, 4, txn, EventKind::Enter, "store.commit", &[]);
        tr.ev(80, 3, 4, txn, EventKind::Exit, "store.commit", &[]);
        tr.ev(90, 3, 4, txn, EventKind::Exit, "2pc.participant.prepare", &[]);
        tr.ev(100, 1, 2, txn, EventKind::Exit, "2pc.prepare", &[]);
        tr.ev(110, 9, 1, txn, EventKind::Instant, "client.committed", &[("elapsed_ns", 110)]);
        tr.ev(110, 9, 1, txn, EventKind::Exit, "client.commit", &[]);
        let report = attribute(&tr.events, 0);
        assert_eq!(report.txns.len(), 1);
        let t = &report.txns[0];
        assert_eq!(t.attributed_ns, 110);
        // Critical chain: node-3 participant [30, 90): store.commit 40ns
        // (StoreWrite), participant self [30,40)+[80,90) = 20ns (Other).
        // Left of it, node-2 participant [20, 30): 10ns Other.
        // Uncovered inside 2pc.prepare: [10,20)+[90,100) = 20ns Network.
        // Client gaps [0,10)+[100,110) = 20ns Network.
        assert_eq!(t.by_category[Category::StoreWrite.index()], 40);
        assert_eq!(t.by_category[Category::Other.index()], 30);
        assert_eq!(t.by_category[Category::Network.index()], 40);
        assert_eq!(t.by_category[Category::LockWait.index()], 0);
    }

    /// rpc.handle roots report queue_ns/open_ns: the uncovered run-up to
    /// the handler splits into queueing, TEE boundary, then network.
    #[test]
    fn queue_and_open_time_split_out_of_the_wire_gap() {
        let mut tr = Tracer::new();
        let txn = 3;
        tr.ev(0, 9, 1, txn, EventKind::Enter, "client.op", &[]);
        // Handler opens at 50: 10ns queue wait, 5ns open reported.
        tr.ev(50, 1, 2, txn, EventKind::Enter, "rpc.handle", &[("queue_ns", 10), ("open_ns", 5)]);
        tr.ev(55, 1, 2, txn, EventKind::Enter, "2pc.coordinate_op", &[]);
        tr.ev(70, 1, 2, txn, EventKind::Exit, "2pc.coordinate_op", &[]);
        tr.ev(75, 1, 2, txn, EventKind::Exit, "rpc.handle", &[]);
        tr.ev(90, 9, 1, txn, EventKind::Exit, "client.op", &[]);
        tr.ev(90, 9, 1, txn, EventKind::Enter, "client.commit", &[]);
        tr.ev(95, 9, 1, txn, EventKind::Instant, "client.committed", &[("elapsed_ns", 95)]);
        tr.ev(95, 9, 1, txn, EventKind::Exit, "client.commit", &[]);
        let report = attribute(&tr.events, 0);
        let t = &report.txns[0];
        assert_eq!(t.attributed_ns, 95);
        assert_eq!(t.by_category[Category::Queueing.index()], 10);
        // rpc.handle self time [50,55)+[70,75) = 10ns plus open_ns 5.
        assert_eq!(t.by_category[Category::Tee.index()], 15);
        // [0,35) request flight + [75,90) reply flight = 50ns network.
        assert_eq!(t.by_category[Category::Network.index()], 50);
        // coordinate_op with no remote overlap: 15ns local work (Other),
        // client.commit with no remote root: 5ns Other.
        assert_eq!(t.by_category[Category::Other.index()], 20);
    }

    #[test]
    fn json_is_deterministic_and_names_p99_dominant() {
        let a = attribute(&single_coordinator_trace(), 0);
        let b = attribute(&single_coordinator_trace(), 0);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.p99_dominant(), Some(Category::Network));
        assert!(a.to_json().contains("\"dominant\":\"network\""));
        assert!(a.to_json().contains("\"min_txn_coverage_bp\":10000"));
    }

    #[test]
    fn truncated_traces_still_report() {
        let mut events = single_coordinator_trace();
        // Evict the first event (client.commit enter): the client anchor
        // span is force-closed by the lossy builder, but the report still
        // produces a (marked) answer instead of erroring.
        events.remove(0);
        let report = attribute(&events, 1);
        assert!(report.truncated);
        let json = report.to_json();
        assert!(json.contains("\"truncated\":true"));
        assert!(json.contains("\"dropped_events\":1"));
    }

    #[test]
    fn buckets_partition_all_txns_and_tail_is_nonempty() {
        let mut tr = Tracer::new();
        for i in 0..20u64 {
            let txn = i + 1;
            let base = i * 1_000;
            let lat = 100 + i * 10;
            tr.ev(base, 9, 1, txn, EventKind::Enter, "client.commit", &[]);
            tr.ev(base + lat, 9, 1, txn, EventKind::Instant, "client.committed", &[("elapsed_ns", lat)]);
            tr.ev(base + lat, 9, 1, txn, EventKind::Exit, "client.commit", &[]);
        }
        let report = attribute(&tr.events, 0);
        assert_eq!(report.txns.len(), 20);
        let total: u64 = report.buckets.iter().map(|b| b.txns).sum();
        assert_eq!(total, 20, "every txn in exactly one bucket");
        let tail = report.buckets.iter().find(|b| b.name == "ge_p99").unwrap();
        assert!(tail.txns >= 1, "slowest txn always lands in the tail bucket");
        assert_eq!(report.exemplars.len(), EXEMPLARS);
        assert_eq!(report.exemplars[0].measured_ns, 290, "slowest first");
    }
}
