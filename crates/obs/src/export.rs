//! Exporters: Chrome `trace_event` JSON and a text phase-breakdown table.
//!
//! Both are byte-deterministic functions of the event list — no clocks, no
//! hash-map iteration, hand-rolled fixed-point formatting (no float
//! `Display`). The JSON loads directly in `chrome://tracing` and Perfetto:
//! `pid` is the Treaty node (fabric endpoint), `tid` the fiber, and
//! timestamps are the virtual clock expressed in microseconds.

use std::collections::BTreeMap;

use crate::tree::{build_forest_lossy, Span};
use crate::{EventKind, Nanos, TraceEvent};

/// Virtual nanoseconds as a Chrome-trace microsecond literal ("12.345").
fn micros(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes events to Chrome `trace_event` JSON (object format).
///
/// Events must be in `seq` order (as returned by `Obs::events`). The
/// output is deterministic: same events, same bytes.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_with_meta(events, 0)
}

/// [`chrome_trace_json`] with ring-buffer drop metadata: `dropped` (from
/// `Obs::dropped()`) lands in `otherData.droppedEvents` so a viewer knows
/// the trace is a suffix, not the whole run.
pub fn chrome_trace_json_with_meta(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str(&format!(
        "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"droppedEvents\":{dropped}}},\"traceEvents\":[\n"
    ));
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match e.kind {
            EventKind::Enter => "B",
            EventKind::Exit => "E",
            EventKind::Instant => "i",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"treaty\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            escape(e.phase),
            ph,
            micros(e.ts),
            e.node,
            e.fiber
        ));
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        if e.txn != 0 {
            out.push_str(&format!("\"txn\":{}", e.txn));
            first = false;
        }
        for (k, v) in &e.args {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), v));
            first = false;
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseAgg {
    count: u64,
    total: u128,
    self_time: u128,
    max: Nanos,
}

fn aggregate(
    span: &Span,
    agg: &mut BTreeMap<&'static str, PhaseAgg>,
    per_node: &mut BTreeMap<&'static str, BTreeMap<u32, u128>>,
) {
    let child_total: u128 = span.children.iter().map(|c| c.duration() as u128).sum();
    let entry = agg.entry(span.phase).or_default();
    entry.count += 1;
    entry.total += span.duration() as u128;
    entry.self_time += (span.duration() as u128).saturating_sub(child_total);
    entry.max = entry.max.max(span.duration());
    *per_node
        .entry(span.phase)
        .or_default()
        .entry(span.node)
        .or_insert(0) += span.duration() as u128;
    for child in &span.children {
        aggregate(child, agg, per_node);
    }
}

/// Nanoseconds as a fixed-point microsecond column ("   123.456us").
fn us_col(ns: u128) -> String {
    format!("{}.{:03}us", ns / 1_000, ns % 1_000)
}

/// Renders the paper-style per-phase latency breakdown: for every phase,
/// how many spans ran, their total and *self* virtual time (total minus
/// child spans), mean and max. Sorted by total time descending (phase name
/// breaks ties) — deterministic. Followed by a per-node totals section
/// (one column per node, capped at [`MAX_NODE_COLUMNS`]) and an instants
/// section (crash points, snapshot rejections, …) with per-node counts,
/// so one text file covers the whole cluster.
///
/// Damaged traces degrade instead of erroring: the forest is rebuilt
/// lossily (orphan exits skipped, unclosed spans force-closed) and the
/// table carries a truncation note, so harnesses never lose the whole
/// report to one unbalanced fiber.
pub fn phase_breakdown(events: &[TraceEvent]) -> String {
    phase_breakdown_with_drops(events, 0)
}

/// Node columns shown in the per-node section before eliding.
pub const MAX_NODE_COLUMNS: usize = 6;

/// [`phase_breakdown`] with the sink's drop count (from `Obs::dropped()`)
/// folded into the truncation note.
pub fn phase_breakdown_with_drops(events: &[TraceEvent], dropped: u64) -> String {
    let lossy = build_forest_lossy(events, dropped);
    let mut agg: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    let mut per_node: BTreeMap<&'static str, BTreeMap<u32, u128>> = BTreeMap::new();
    for root in &lossy.roots {
        aggregate(root, &mut agg, &mut per_node);
    }
    let mut rows: Vec<(&'static str, PhaseAgg)> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));

    let mut out = String::new();
    if lossy.truncated {
        out.push_str(&format!(
            "NOTE: trace truncated (dropped={} orphan_exits={} unclosed={} skipped={}); totals are lower bounds\n",
            dropped, lossy.orphan_exits, lossy.unclosed_spans, lossy.skipped_events
        ));
    }
    out.push_str(&format!(
        "{:<34} {:>8} {:>16} {:>16} {:>14} {:>14}\n",
        "phase", "count", "total", "self", "mean", "max"
    ));
    for (phase, a) in &rows {
        let mean = if a.count == 0 {
            0
        } else {
            a.total / a.count as u128
        };
        out.push_str(&format!(
            "{:<34} {:>8} {:>16} {:>16} {:>14} {:>14}\n",
            phase,
            a.count,
            us_col(a.total),
            us_col(a.self_time),
            us_col(mean),
            us_col(a.max as u128),
        ));
    }

    // Per-node totals: one column per node id, in node order.
    let mut nodes: Vec<u32> = Vec::new();
    for cols in per_node.values() {
        for &n in cols.keys() {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    nodes.sort_unstable();
    if !nodes.is_empty() {
        let elided = nodes.len().saturating_sub(MAX_NODE_COLUMNS);
        nodes.truncate(MAX_NODE_COLUMNS);
        out.push_str("\nper-node total:\n");
        out.push_str(&format!("{:<34}", "phase"));
        for n in &nodes {
            out.push_str(&format!(" {:>14}", format!("node{n}")));
        }
        if elided > 0 {
            out.push_str(&format!("  (+{elided} more)"));
        }
        out.push('\n');
        for (phase, _) in &rows {
            out.push_str(&format!("{phase:<34}"));
            let cols = &per_node[phase];
            for n in &nodes {
                match cols.get(n) {
                    Some(total) => out.push_str(&format!(" {:>14}", us_col(*total))),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
    }

    // Instants: point events (crash points, rejections) with per-node
    // counts, straight from the event list — instants never enter spans.
    let mut instants: BTreeMap<&'static str, BTreeMap<u32, u64>> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::Instant {
            *instants.entry(e.phase).or_default().entry(e.node).or_insert(0) += 1;
        }
    }
    if !instants.is_empty() {
        out.push_str("\ninstants:\n");
        for (phase, by_node) in &instants {
            let total: u64 = by_node.values().sum();
            out.push_str(&format!("{phase:<34} {total:>8} "));
            for (n, c) in by_node {
                out.push_str(&format!(" node{n}={c}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(seq: u64, ts: Nanos, kind: EventKind, phase: &'static str) -> TraceEvent {
        TraceEvent {
            seq,
            ts,
            node: 1,
            fiber: 0,
            txn: 42,
            phase,
            kind,
            args: if kind == EventKind::Enter {
                vec![("peers", 2)]
            } else {
                Vec::new()
            },
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            e(0, 1_000, EventKind::Enter, "2pc.commit"),
            e(1, 1_500, EventKind::Enter, "clog.log_start"),
            e(2, 2_500, EventKind::Exit, "clog.log_start"),
            e(3, 2_600, EventKind::Instant, "net.send"),
            e(4, 9_000, EventKind::Exit, "2pc.commit"),
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with(
            "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":0},\"traceEvents\":["
        ));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"ts\":2.600"));
        assert!(json.contains("\"txn\":42"));
        assert!(json.contains("\"peers\":2"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn micros_formatting_is_fixed_point() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(12_345_678), "12345.678");
    }

    #[test]
    fn breakdown_attributes_self_time() {
        let table = phase_breakdown(&sample());
        // 2pc.commit: total 8000ns, self 8000-1000 = 7000ns.
        assert!(table.contains("2pc.commit"), "{table}");
        assert!(table.contains("8.000us"), "{table}");
        assert!(table.contains("7.000us"), "{table}");
        assert!(table.contains("clog.log_start"), "{table}");
        // Sorted by total: 2pc.commit first.
        let commit_at = table.find("2pc.commit").unwrap();
        let clog_at = table.find("clog.log_start").unwrap();
        assert!(commit_at < clog_at);
    }

    #[test]
    fn breakdown_survives_unbalanced_trace() {
        let events = vec![e(0, 10, EventKind::Enter, "a")];
        let table = phase_breakdown(&events);
        assert!(table.contains("NOTE: trace truncated"), "{table}");
        assert!(table.contains("unclosed=1"), "{table}");
        assert!(table.contains('a'), "repaired span still reported: {table}");
    }

    #[test]
    fn chrome_json_meta_embeds_drop_count() {
        let json = chrome_trace_json_with_meta(&sample(), 17);
        assert!(json.contains("\"otherData\":{\"droppedEvents\":17}"));
        assert_eq!(
            chrome_trace_json_with_meta(&sample(), 17),
            chrome_trace_json_with_meta(&sample(), 17)
        );
    }

    #[test]
    fn breakdown_has_per_node_and_instants_sections() {
        let mut events = sample();
        // A second node running the same phase, plus a crash instant.
        events.push(TraceEvent {
            seq: 5,
            ts: 10_000,
            node: 2,
            fiber: 9,
            txn: 0,
            phase: "2pc.commit",
            kind: EventKind::Enter,
            args: Vec::new(),
        });
        events.push(TraceEvent {
            seq: 6,
            ts: 12_000,
            node: 2,
            fiber: 9,
            txn: 0,
            phase: "2pc.commit",
            kind: EventKind::Exit,
            args: Vec::new(),
        });
        events.push(TraceEvent {
            seq: 7,
            ts: 12_500,
            node: 2,
            fiber: 9,
            txn: 0,
            phase: "crash.fired",
            kind: EventKind::Instant,
            args: Vec::new(),
        });
        let table = phase_breakdown(&events);
        assert!(table.contains("per-node total:"), "{table}");
        assert!(table.contains("node1"), "{table}");
        assert!(table.contains("node2"), "{table}");
        assert!(table.contains("instants:"), "{table}");
        assert!(table.contains("crash.fired"), "{table}");
        assert!(table.contains("net.send"), "instants include net.send: {table}");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
