//! Userland scheduling primitives for Treaty fibers (§VII-C of the paper).
//!
//! Treaty runs one fiber per connected client inside the enclave and
//! schedules them cooperatively to avoid timer interrupts (which would cost
//! a world switch each). This crate provides the primitives that scheduler
//! exposes to the rest of the system, built on the deterministic fiber
//! runtime in [`treaty_sim`]:
//!
//! * [`WaitQueue`] — condition-variable-style FIFO sleeping queue,
//! * [`Channel`] — blocking MPMC queue used for RPC plumbing,
//! * [`CorePool`] — models a node's limited CPU cores: fibers *charge*
//!   virtual CPU time and queue when all cores are busy, which is what
//!   produces realistic saturation curves in the benchmarks,
//! * [`FiberMutex`] — a mutex that may be held across yield points,
//! * [`IdleBackoff`] — the adaptive sleep the paper's scheduler uses to
//!   yield to SCONE when no fiber is runnable.
//!
//! All primitives rely on the runtime's cooperative atomicity: between two
//! yield points no other fiber runs, so check-then-park sequences are
//! race-free by construction.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use treaty_sim::runtime::{self, FiberId, Sim, WakeReason};
use treaty_sim::Nanos;

/// Runs `f` as the only fiber of a fresh simulation and returns its value.
///
/// Convenience for tests and single-shot experiments.
///
/// # Panics
///
/// Panics if the simulation fails (fiber panic or deadlock).
pub fn block_on<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    Sim::new()
        .run(move || {
            let v = f();
            *out2.lock() = Some(v);
        })
        .expect("simulation failed");
    let mut guard = out.lock();
    guard.take().expect("root fiber did not produce a value")
}

/// A FIFO wait queue (condition-variable flavour).
///
/// Waiters park in arrival order; [`WaitQueue::notify_one`] wakes the oldest.
/// There are no wakeup tokens: a notify with no waiters is lost, so callers
/// must re-check their predicate in a loop, as with any condition variable.
#[derive(Debug, Default)]
pub struct WaitQueue {
    waiters: Mutex<VecDeque<FiberId>>,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the calling fiber until notified.
    pub fn wait(&self) {
        let me = runtime::current();
        self.waiters.lock().push_back(me);
        runtime::park();
    }

    /// Parks the calling fiber until notified or until `ns` elapses.
    /// Returns `true` if notified, `false` on timeout.
    pub fn wait_timeout(&self, ns: Nanos) -> bool {
        let me = runtime::current();
        self.waiters.lock().push_back(me);
        match runtime::park_timeout(ns) {
            WakeReason::Signal => true,
            WakeReason::Timeout => {
                // Remove ourselves; we were not notified.
                self.waiters.lock().retain(|&f| f != me);
                false
            }
        }
    }

    /// Wakes the oldest waiter, if any. Returns whether one was woken.
    pub fn notify_one(&self) -> bool {
        let next = self.waiters.lock().pop_front();
        match next {
            Some(f) => {
                runtime::unpark(f);
                true
            }
            None => false,
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let all: Vec<FiberId> = self.waiters.lock().drain(..).collect();
        for f in all {
            runtime::unpark(f);
        }
    }

    /// Number of fibers currently parked on the queue.
    pub fn len(&self) -> usize {
        self.waiters.lock().len()
    }

    /// True if no fiber is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.lock().is_empty()
    }
}

/// Error returned by [`Receiver::recv`] when the channel is closed and empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, thiserror::Error)]
#[error("channel closed")]
pub struct RecvError;

/// Outcome of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// A message arrived.
    Ok(T),
    /// The timeout elapsed first.
    TimedOut,
    /// The channel is closed and drained.
    Closed,
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// An unbounded blocking MPMC channel for fibers.
pub struct Channel<T> {
    inner: Mutex<ChanInner<T>>,
    recv_q: WaitQueue,
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Channel<T> {
    /// Creates an empty open channel.
    pub fn new() -> Self {
        Channel {
            inner: Mutex::new(ChanInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            recv_q: WaitQueue::new(),
        }
    }

    /// Creates a connected `(Sender, Receiver)` pair sharing one channel.
    pub fn pair() -> (Sender<T>, Receiver<T>) {
        let ch = Arc::new(Channel::new());
        (
            Sender {
                ch: Arc::clone(&ch),
            },
            Receiver { ch },
        )
    }

    /// Enqueues a message, waking one receiver. Returns `Err` with the
    /// message if the channel is closed.
    pub fn send(&self, msg: T) -> Result<(), T> {
        {
            let mut inner = self.inner.lock();
            if inner.closed {
                return Err(msg);
            }
            inner.queue.push_back(msg);
        }
        self.recv_q.notify_one();
        Ok(())
    }

    /// Blocks until a message is available.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] if the channel is closed and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.closed {
                    return Err(RecvError);
                }
            }
            self.recv_q.wait();
        }
    }

    /// Blocks until a message is available or `ns` elapses.
    pub fn recv_timeout(&self, ns: Nanos) -> RecvTimeout<T> {
        let deadline = runtime::now().saturating_add(ns);
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return RecvTimeout::Ok(v);
                }
                if inner.closed {
                    return RecvTimeout::Closed;
                }
            }
            let now = runtime::now();
            if now >= deadline {
                return RecvTimeout::TimedOut;
            }
            self.recv_q.wait_timeout(deadline - now);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Closes the channel: senders fail, receivers drain then get
    /// [`RecvError`].
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.recv_q.notify_all();
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

/// Sending half of [`Channel::pair`].
pub struct Sender<T> {
    ch: Arc<Channel<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            ch: Arc::clone(&self.ch),
        }
    }
}

impl<T> Sender<T> {
    /// See [`Channel::send`].
    pub fn send(&self, msg: T) -> Result<(), T> {
        self.ch.send(msg)
    }
    /// See [`Channel::close`].
    pub fn close(&self) {
        self.ch.close()
    }
}

/// Receiving half of [`Channel::pair`].
pub struct Receiver<T> {
    ch: Arc<Channel<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            ch: Arc::clone(&self.ch),
        }
    }
}

impl<T> Receiver<T> {
    /// See [`Channel::recv`].
    pub fn recv(&self) -> Result<T, RecvError> {
        self.ch.recv()
    }
    /// See [`Channel::recv_timeout`].
    pub fn recv_timeout(&self, ns: Nanos) -> RecvTimeout<T> {
        self.ch.recv_timeout(ns)
    }
    /// See [`Channel::try_recv`].
    pub fn try_recv(&self) -> Option<T> {
        self.ch.try_recv()
    }
}

#[derive(Debug)]
struct CoreInner {
    free: u32,
    waiters: VecDeque<FiberId>,
}

/// Models a node's CPU cores as a preemption-free processor pool.
///
/// A fiber *charges* virtual CPU time with [`CorePool::charge`]: it occupies
/// one core for the duration, queueing FIFO behind other fibers when all
/// cores are busy. This is how the closed-loop benchmarks saturate — beyond
/// the knee, added clients only add queueing delay, which is the behaviour
/// the paper's throughput/latency plots show.
#[derive(Debug)]
pub struct CorePool {
    inner: Mutex<CoreInner>,
    capacity: u32,
}

impl CorePool {
    /// Creates a pool of `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "a node needs at least one core");
        CorePool {
            inner: Mutex::new(CoreInner {
                free: cores,
                waiters: VecDeque::new(),
            }),
            capacity: cores,
        }
    }

    /// Total number of cores.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Occupies one core for `ns` of virtual time, queueing if necessary.
    pub fn charge(&self, ns: Nanos) {
        if ns == 0 {
            return;
        }
        self.acquire();
        runtime::sleep(ns);
        self.release();
    }

    fn acquire(&self) {
        {
            let mut inner = self.inner.lock();
            if inner.free > 0 {
                inner.free -= 1;
                return;
            }
        }
        // Contended: requires fiber context.
        let me = runtime::current();
        let must_wait = {
            let mut inner = self.inner.lock();
            if inner.free > 0 {
                inner.free -= 1;
                false
            } else {
                inner.waiters.push_back(me);
                true
            }
        };
        if must_wait {
            // The releasing fiber transfers its core to us directly.
            runtime::park();
        }
    }

    fn release(&self) {
        let next = {
            let mut inner = self.inner.lock();
            match inner.waiters.pop_front() {
                Some(f) => Some(f),
                None => {
                    inner.free += 1;
                    None
                }
            }
        };
        if let Some(f) = next {
            runtime::unpark(f);
        }
    }
}

#[derive(Debug)]
struct MutexInner {
    locked: bool,
    waiters: VecDeque<FiberId>,
}

/// A fiber-aware mutex that may be held across yield points.
///
/// `parking_lot` locks would deadlock the whole simulation if a fiber
/// parked while holding one; use this type whenever the critical section
/// sleeps, performs I/O charges, or sends RPCs (e.g. the WAL group-commit
/// leader).
#[derive(Debug)]
pub struct FiberMutex {
    inner: Mutex<MutexInner>,
}

impl Default for FiberMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl FiberMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        FiberMutex {
            inner: Mutex::new(MutexInner {
                locked: false,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// Acquires the lock, parking FIFO behind other fibers. The
    /// uncontended path works outside the simulation runtime too (plain
    /// unit tests); contention requires fiber context.
    pub fn lock(&self) -> FiberMutexGuard<'_> {
        {
            let mut inner = self.inner.lock();
            if !inner.locked {
                inner.locked = true;
                return FiberMutexGuard { mutex: self };
            }
        }
        let me = runtime::current();
        let must_wait = {
            let mut inner = self.inner.lock();
            if !inner.locked {
                inner.locked = true;
                false
            } else {
                inner.waiters.push_back(me);
                true
            }
        };
        if must_wait {
            runtime::park(); // ownership is transferred by unlock
        }
        FiberMutexGuard { mutex: self }
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> Option<FiberMutexGuard<'_>> {
        let mut inner = self.inner.lock();
        if inner.locked {
            None
        } else {
            inner.locked = true;
            drop(inner);
            Some(FiberMutexGuard { mutex: self })
        }
    }

    fn unlock(&self) {
        let next = {
            let mut inner = self.inner.lock();
            match inner.waiters.pop_front() {
                Some(f) => Some(f), // keep locked: transferred to f
                None => {
                    inner.locked = false;
                    None
                }
            }
        };
        if let Some(f) = next {
            runtime::unpark(f);
        }
    }
}

/// RAII guard for [`FiberMutex`].
///
/// Unlike a std `MutexGuard`, dropping during an unwind releases the
/// lock cleanly — there is no poisoning. Crash-point unwinding
/// (`CrashUnwind`) therefore cannot wedge a `FiberMutex`, which is the
/// contract the `LINT-CRASH-SAFE` audit markers (lint rule L008) rely
/// on; do not add poisoning here without revisiting those markers.
#[must_use = "the lock is released when the guard is dropped"]
#[derive(Debug)]
pub struct FiberMutexGuard<'a> {
    mutex: &'a FiberMutex,
}

impl Drop for FiberMutexGuard<'_> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// The adaptive idle strategy of Treaty's userland scheduler: when no fiber
/// is runnable the scheduler sleeps, doubling the interval up to a cap so an
/// idle enclave thread stops burning syscalls (§VII-C).
#[derive(Debug, Clone)]
pub struct IdleBackoff {
    current: Nanos,
    min: Nanos,
    max: Nanos,
}

impl Default for IdleBackoff {
    fn default() -> Self {
        Self::new(1_000, 1_000_000)
    }
}

impl IdleBackoff {
    /// Creates a backoff sleeping `min`..`max` nanoseconds.
    pub fn new(min: Nanos, max: Nanos) -> Self {
        IdleBackoff {
            current: min,
            min,
            max,
        }
    }

    /// Sleeps for the current interval and doubles it (capped).
    pub fn idle(&mut self) {
        runtime::sleep(self.current);
        self.current = (self.current * 2).min(self.max);
    }

    /// Resets the interval after useful work was found.
    pub fn reset(&mut self) {
        self.current = self.min;
    }

    /// The next idle sleep duration.
    pub fn current(&self) -> Nanos {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use treaty_sim::runtime::{join, now, sleep, spawn};

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(|| 41 + 1), 42);
    }

    #[test]
    fn waitqueue_fifo_notify_one() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        block_on(move || {
            let q = Arc::new(WaitQueue::new());
            let mut handles = Vec::new();
            for i in 0..3 {
                let q = Arc::clone(&q);
                let o = Arc::clone(&o);
                handles.push(spawn(move || {
                    q.wait();
                    o.lock().push(i);
                }));
            }
            sleep(10); // let all three park
            assert_eq!(q.len(), 3);
            q.notify_one();
            sleep(1);
            q.notify_all();
            for h in handles {
                join(h);
            }
            assert_eq!(*o.lock(), vec![0, 1, 2]);
        });
    }

    #[test]
    fn waitqueue_timeout_removes_waiter() {
        block_on(|| {
            let q = WaitQueue::new();
            let signaled = q.wait_timeout(100);
            assert!(!signaled);
            assert_eq!(now(), 100);
            assert!(q.is_empty(), "timed-out waiter must deregister");
        });
    }

    #[test]
    fn channel_send_recv_across_fibers() {
        block_on(|| {
            let (tx, rx) = Channel::pair();
            let producer = spawn(move || {
                for i in 0..10 {
                    sleep(5);
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(rx.recv().unwrap());
            }
            join(producer);
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn channel_recv_timeout() {
        block_on(|| {
            let (tx, rx) = Channel::<u32>::pair();
            assert!(matches!(rx.recv_timeout(50), RecvTimeout::TimedOut));
            assert_eq!(now(), 50);
            tx.send(7).unwrap();
            assert!(matches!(rx.recv_timeout(50), RecvTimeout::Ok(7)));
            tx.close();
            assert!(matches!(rx.recv_timeout(50), RecvTimeout::Closed));
        });
    }

    #[test]
    fn channel_close_fails_send_and_drains() {
        block_on(|| {
            let ch = Channel::new();
            ch.send(1u8).unwrap();
            ch.close();
            assert_eq!(ch.send(2), Err(2));
            assert_eq!(ch.recv(), Ok(1));
            assert_eq!(ch.recv(), Err(RecvError));
        });
    }

    #[test]
    fn corepool_serializes_beyond_capacity() {
        // 2 cores, 4 fibers each charging 100ns => finishes at 200ns.
        block_on(|| {
            let pool = Arc::new(CorePool::new(2));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&pool);
                    spawn(move || p.charge(100))
                })
                .collect();
            for h in handles {
                join(h);
            }
            assert_eq!(now(), 200);
        });
    }

    #[test]
    fn corepool_parallel_within_capacity() {
        block_on(|| {
            let pool = Arc::new(CorePool::new(4));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&pool);
                    spawn(move || p.charge(100))
                })
                .collect();
            for h in handles {
                join(h);
            }
            assert_eq!(now(), 100);
        });
    }

    #[test]
    fn corepool_zero_charge_is_free() {
        block_on(|| {
            let pool = CorePool::new(1);
            pool.charge(0);
            assert_eq!(now(), 0);
        });
    }

    #[test]
    fn fiber_mutex_mutual_exclusion_across_sleeps() {
        let max_inside = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU64::new(0));
        let m = Arc::clone(&max_inside);
        let i = Arc::clone(&inside);
        block_on(move || {
            let mutex = Arc::new(FiberMutex::new());
            let handles: Vec<_> = (0..5)
                .map(|_| {
                    let mutex = Arc::clone(&mutex);
                    let inside = Arc::clone(&i);
                    let max = Arc::clone(&m);
                    spawn(move || {
                        let _g = mutex.lock();
                        let n = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max.fetch_max(n, Ordering::SeqCst);
                        sleep(10); // hold across a yield point
                        inside.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                join(h);
            }
        });
        assert_eq!(max_inside.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fiber_mutex_try_lock() {
        block_on(|| {
            let mutex = FiberMutex::new();
            let g = mutex.try_lock().unwrap();
            assert!(mutex.try_lock().is_none());
            drop(g);
            assert!(mutex.try_lock().is_some());
        });
    }

    #[test]
    fn idle_backoff_doubles_and_resets() {
        block_on(|| {
            let mut b = IdleBackoff::new(10, 50);
            b.idle();
            assert_eq!(b.current(), 20);
            b.idle();
            b.idle();
            assert_eq!(b.current(), 50); // capped
            b.reset();
            assert_eq!(b.current(), 10);
            assert_eq!(now(), 10 + 20 + 40);
        });
    }
}
