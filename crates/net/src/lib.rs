//! Treaty's secure network library for transactions (§VII-A).
//!
//! Real Treaty extends eRPC over DPDK so the enclave can do network I/O
//! without syscalls, and wraps every message in the secure format of
//! §VII-A. This crate reproduces that library over the deterministic fiber
//! runtime:
//!
//! * [`Fabric`] is the simulated network: endpoints, per-sender NIC ports
//!   (link serialization), transport cost models, and an [`Adversary`]
//!   able to drop, delay, duplicate and tamper with traffic — the §III
//!   threat model,
//! * [`Rpc`] is the eRPC-flavoured endpoint: request handlers keyed by a
//!   request type, one server fiber per connected peer (the paper's
//!   fiber-per-client design), asynchronous `enqueue_request`/`tx_burst`
//!   and a blocking [`Rpc::call`] convenience built on them,
//! * every message is sealed with [`treaty_crypto::SecureEnvelope`] and
//!   replayed `(node, tx, op)` tuples are suppressed with a memoized
//!   response — at-most-once execution in the presence of the adversary.

pub mod fabric;
pub mod rpc;

pub use fabric::{Adversary, EndpointConfig, EndpointId, Fabric, FabricStats};
pub use rpc::{PendingReply, ReqHandler, Rpc, RpcConfig};

use treaty_crypto::CryptoError;
use treaty_sim::Nanos;

/// Default RPC timeout: generous, because prepared transactions may wait
/// for a stabilization round (~2 ms) plus queueing.
pub const DEFAULT_RPC_TIMEOUT: Nanos = 200 * treaty_sim::MILLIS;

/// Errors surfaced by the networking library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, thiserror::Error)]
pub enum NetError {
    /// No response arrived before the timeout (message dropped, peer dead,
    /// or peer overloaded).
    #[error("rpc timed out")]
    Timeout,
    /// The destination endpoint is not registered on the fabric.
    #[error("destination endpoint {0} unreachable")]
    Unreachable(u32),
    /// The local endpoint was shut down.
    #[error("endpoint closed")]
    Closed,
    /// Decryption/authentication of an incoming message failed.
    #[error("message rejected: {0}")]
    Crypto(#[from] CryptoError),
}
