//! The simulated network fabric: endpoints, NIC ports, transports and the
//! adversary.

use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treaty_sched::{FiberMutex, WaitQueue};
use treaty_sim::runtime;
use treaty_sim::{CostModel, Nanos, TeeMode, Transport};
use treaty_tee::HostBytes;

use crate::NetError;

/// Identifies an endpoint (node or client) on the fabric.
pub type EndpointId = u32;

/// Ethernet + IP + UDP framing added to every wire message.
pub const FRAME_HEADER_BYTES: usize = 64;

/// Per-endpoint network configuration.
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Transport used when this endpoint sends.
    pub transport: Transport,
    /// TEE mode of the sending/receiving software stack.
    pub tee: TeeMode,
    /// Egress link rate in Gbit/s (servers: 40, paper's clients: 1).
    pub link_gbps: u32,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            transport: Transport::Dpdk,
            tee: TeeMode::Native,
            link_gbps: 40,
        }
    }
}

/// A raw message in flight.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Request-type for handler dispatch (eRPC `req_type`).
    pub req_type: u8,
    /// Correlates a response to its request.
    pub rpc_id: u64,
    /// Session routing hint (plaintext, like an eRPC session id): requests
    /// with the same `(src, session)` execute in order on one server fiber;
    /// different sessions run concurrently. Carries no payload data.
    pub session: u64,
    /// True for responses.
    pub is_response: bool,
    /// Sealed wire bytes (secure envelope). Message buffers live in
    /// untrusted host memory (the eRPC model), so the wire is a
    /// boundary-typed [`HostBytes`], not a raw buffer.
    pub wire: HostBytes,
    /// Receiver-side CPU cost to charge on delivery.
    pub receiver_cpu: Nanos,
}

struct Queued {
    arrival: Nanos,
    seq: u64,
    dg: Datagram,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.arrival, self.seq) == (other.arrival, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want earliest arrival first.
        (other.arrival, other.seq).cmp(&(self.arrival, self.seq))
    }
}

struct Inbox {
    queue: Mutex<BinaryHeap<Queued>>,
    waiters: WaitQueue,
    closed: Mutex<bool>,
}

impl Inbox {
    fn new() -> Arc<Self> {
        Arc::new(Inbox {
            queue: Mutex::new(BinaryHeap::new()),
            waiters: WaitQueue::new(),
            closed: Mutex::new(false),
        })
    }
}

struct EndpointEntry {
    cfg: EndpointConfig,
    inbox: Arc<Inbox>,
    nic: Arc<FiberMutex>,
}

/// Knobs for the network adversary of the §III threat model.
///
/// Probabilistic knobs use the fabric's deterministic RNG; the `*_next`
/// counters force the next N matching events regardless of probability,
/// which tests use for targeted attacks.
#[derive(Debug, Clone, Default)]
pub struct Adversary {
    /// Probability of silently dropping a message.
    pub drop_prob: f64,
    /// Probability of duplicating a message (delivered twice).
    pub dup_prob: f64,
    /// Probability of flipping a byte in the sealed wire bytes.
    pub tamper_prob: f64,
    /// Extra one-way delay added to every delivery.
    pub extra_delay_ns: Nanos,
    /// Force-drop the next N messages.
    pub drop_next: u32,
    /// Force-tamper the next N messages.
    pub tamper_next: u32,
    /// Force-duplicate the next N messages.
    pub dup_next: u32,
    /// Unidirectional partitions: messages from `.0` to `.1` are dropped.
    pub partitions: HashSet<(EndpointId, EndpointId)>,
}

impl Adversary {
    /// An honest network.
    pub fn honest() -> Self {
        Self::default()
    }
}

#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped_adversary: AtomicU64,
    dropped_mtu: AtomicU64,
    dropped_unreachable: AtomicU64,
    tampered: AtomicU64,
    duplicated: AtomicU64,
}

/// Snapshot of fabric counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages handed to the fabric.
    pub sent: u64,
    /// Messages delivered to an inbox (duplicates count).
    pub delivered: u64,
    /// Messages the adversary dropped (including partitions).
    pub dropped_adversary: u64,
    /// UDP messages dropped for exceeding the MTU.
    pub dropped_mtu: u64,
    /// Messages to unknown/stopped endpoints.
    pub dropped_unreachable: u64,
    /// Messages the adversary tampered with.
    pub tampered: u64,
    /// Messages the adversary duplicated.
    pub duplicated: u64,
}

/// The simulated datacenter network.
pub struct Fabric {
    costs: CostModel,
    endpoints: Mutex<HashMap<EndpointId, EndpointEntry>>,
    adversary: Mutex<Adversary>,
    rng: Mutex<ChaCha8Rng>,
    seq: AtomicU64,
    counters: Counters,
    capture: Mutex<Option<Vec<Datagram>>>,
}

impl Fabric {
    /// Creates a fabric with the given cost model and adversary RNG seed.
    pub fn new(costs: CostModel, seed: u64) -> Arc<Self> {
        Arc::new(Fabric {
            costs,
            endpoints: Mutex::new(HashMap::new()),
            adversary: Mutex::new(Adversary::honest()),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            seq: AtomicU64::new(0),
            counters: Counters::default(),
            capture: Mutex::new(None),
        })
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Replaces the adversary configuration.
    pub fn set_adversary(&self, adv: Adversary) {
        *self.adversary.lock() = adv;
    }

    /// Mutates the adversary configuration in place.
    pub fn with_adversary(&self, f: impl FnOnce(&mut Adversary)) {
        f(&mut self.adversary.lock());
    }

    /// Starts capturing every wire message (for confidentiality tests and
    /// replay attacks). Capturing is off by default.
    pub fn start_capture(&self) {
        *self.capture.lock() = Some(Vec::new());
    }

    /// Returns the captured datagrams so far (clones).
    pub fn captured(&self) -> Vec<Datagram> {
        self.capture.lock().clone().unwrap_or_default()
    }

    /// All captured wire bytes concatenated — what a network sniffer sees.
    pub fn captured_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for dg in self.captured() {
            out.extend_from_slice(dg.wire.as_slice());
        }
        out
    }

    /// Registers an endpoint. Re-registering an id replaces it (node
    /// restart).
    pub(crate) fn register(&self, id: EndpointId, cfg: EndpointConfig) {
        let entry = EndpointEntry {
            cfg,
            inbox: Inbox::new(),
            nic: Arc::new(FiberMutex::new()),
        };
        self.endpoints.lock().insert(id, entry);
    }

    /// Removes an endpoint; in-flight and future messages to it vanish.
    pub(crate) fn deregister(&self, id: EndpointId) {
        let entry = self.endpoints.lock().remove(&id);
        if let Some(e) = entry {
            *e.inbox.closed.lock() = true;
            e.inbox.waiters.notify_all();
        }
    }

    /// Whether an endpoint is currently registered.
    pub fn is_registered(&self, id: EndpointId) -> bool {
        self.endpoints.lock().contains_key(&id)
    }

    fn endpoint_cfg(&self, id: EndpointId) -> Option<EndpointConfig> {
        self.endpoints.lock().get(&id).map(|e| e.cfg)
    }

    fn inbox_of(&self, id: EndpointId) -> Option<Arc<Inbox>> {
        self.endpoints.lock().get(&id).map(|e| Arc::clone(&e.inbox))
    }

    fn nic_of(&self, id: EndpointId) -> Option<Arc<FiberMutex>> {
        self.endpoints.lock().get(&id).map(|e| Arc::clone(&e.nic))
    }

    /// Sends a datagram. Blocks the calling fiber for the NIC serialization
    /// time (the egress link is a shared resource). Sender CPU is *not*
    /// charged here — the RPC layer charges it against the node's cores.
    ///
    /// Messages to unknown endpoints are silently dropped, like packets to
    /// a crashed machine.
    pub(crate) fn send(&self, mut dg: Datagram) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        treaty_sim::obs::counter_add("net.sent", 1);
        let src_cfg = match self.endpoint_cfg(dg.src) {
            Some(c) => c,
            None => return, // sender gone: nothing to do
        };
        let wire_bytes = dg.wire.len() + FRAME_HEADER_BYTES;
        // Covers NIC serialization: the span length is the time the egress
        // link (a shared resource) was held by this message.
        let _span = treaty_sim::obs::span_with(
            "net.send",
            &[("dst", u64::from(dg.dst)), ("bytes", wire_bytes as u64)],
        );
        let charge = self
            .costs
            .net_send(src_cfg.transport, src_cfg.tee, wire_bytes);
        // The receive cost depends on the *receiver's* stack: a SCONE node
        // taking delivery of native-client TCP traffic still pays shielded
        // syscalls and boundary copies.
        dg.receiver_cpu = match self.endpoint_cfg(dg.dst) {
            Some(dst_cfg) => {
                self.costs
                    .net_send(src_cfg.transport, dst_cfg.tee, wire_bytes)
                    .receiver_cpu
            }
            None => charge.receiver_cpu,
        };

        if let Some(cap) = self.capture.lock().as_mut() {
            cap.push(dg.clone());
        }

        // MTU behaviour (Fig. 8): oversized UDP messages never arrive.
        if charge.dropped {
            self.counters.dropped_mtu.fetch_add(1, Ordering::Relaxed);
            treaty_sim::obs::counter_add("net.dropped_mtu", 1);
            return;
        }

        // Occupy the egress NIC for the serialization time.
        if let Some(nic) = self.nic_of(dg.src) {
            let ser = self.costs.serialize_ns(wire_bytes, src_cfg.link_gbps);
            if ser > 0 {
                let guard = nic.lock();
                runtime::sleep(ser);
                drop(guard);
            }
        }

        // Adversary decisions.
        let (drop_it, tamper_it, dup_it, extra_delay) = {
            let mut adv = self.adversary.lock();
            let mut rng = self.rng.lock();
            let partitioned = adv.partitions.contains(&(dg.src, dg.dst));
            let drop_it = partitioned
                || adv.drop_next > 0
                || (adv.drop_prob > 0.0 && rng.gen_bool(adv.drop_prob));
            if adv.drop_next > 0 && !partitioned {
                adv.drop_next -= 1;
            }
            let tamper_it = !drop_it
                && (adv.tamper_next > 0
                    || (adv.tamper_prob > 0.0 && rng.gen_bool(adv.tamper_prob)));
            if tamper_it && adv.tamper_next > 0 {
                adv.tamper_next -= 1;
            }
            let dup_it = !drop_it
                && (adv.dup_next > 0 || (adv.dup_prob > 0.0 && rng.gen_bool(adv.dup_prob)));
            if dup_it && adv.dup_next > 0 {
                adv.dup_next -= 1;
            }
            (drop_it, tamper_it, dup_it, adv.extra_delay_ns)
        };

        if drop_it {
            self.counters
                .dropped_adversary
                .fetch_add(1, Ordering::Relaxed);
            treaty_sim::obs::counter_add("net.dropped_adversary", 1);
            return;
        }
        if tamper_it {
            self.counters.tampered.fetch_add(1, Ordering::Relaxed);
            treaty_sim::obs::counter_add("net.tampered", 1);
            if !dg.wire.is_empty() {
                let idx = {
                    let mut rng = self.rng.lock();
                    rng.gen_range(0..dg.wire.len())
                };
                dg.wire.tamper(idx, 0x55);
            }
        }

        let arrival = runtime::now() + self.costs.propagation_ns + extra_delay;
        if dup_it {
            self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
            treaty_sim::obs::counter_add("net.duplicated", 1);
            self.deliver(dg.clone(), arrival + 1);
        }
        self.deliver(dg, arrival);
    }

    /// Re-injects a previously captured datagram — a replay attack.
    pub fn inject(&self, dg: Datagram) {
        let arrival = runtime::now() + self.costs.propagation_ns;
        self.deliver(dg, arrival);
    }

    fn deliver(&self, dg: Datagram, arrival: Nanos) {
        let inbox = match self.inbox_of(dg.dst) {
            Some(i) => i,
            None => {
                self.counters
                    .dropped_unreachable
                    .fetch_add(1, Ordering::Relaxed);
                treaty_sim::obs::counter_add("net.dropped_unreachable", 1);
                return;
            }
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        inbox.queue.lock().push(Queued { arrival, seq, dg });
        self.counters.delivered.fetch_add(1, Ordering::Relaxed);
        treaty_sim::obs::counter_add("net.delivered", 1);
        inbox.waiters.notify_one();
    }

    /// Blocking receive for `id`'s inbox, honouring message arrival times.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if the endpoint was deregistered,
    /// [`NetError::Timeout`] if `timeout` elapses first.
    pub(crate) fn recv(&self, id: EndpointId, timeout: Nanos) -> Result<Datagram, NetError> {
        let inbox = self.inbox_of(id).ok_or(NetError::Closed)?;
        let deadline = runtime::now().saturating_add(timeout);
        loop {
            if *inbox.closed.lock() {
                return Err(NetError::Closed);
            }
            let now = runtime::now();
            enum Next {
                Ready(Datagram),
                WaitUntil(Nanos),
                Empty,
            }
            let next = {
                let mut q = inbox.queue.lock();
                match q.peek() {
                    Some(head) if head.arrival <= now => Next::Ready(q.pop().unwrap().dg),
                    Some(head) => Next::WaitUntil(head.arrival),
                    None => Next::Empty,
                }
            };
            match next {
                Next::Ready(dg) => {
                    treaty_sim::obs::instant(
                        "net.recv",
                        &[("src", u64::from(dg.src)), ("bytes", dg.wire.len() as u64)],
                    );
                    return Ok(dg);
                }
                Next::WaitUntil(arrival) => {
                    if arrival >= deadline {
                        if deadline <= now {
                            return Err(NetError::Timeout);
                        }
                        inbox.waiters.wait_timeout(deadline - now);
                        if runtime::now() >= deadline {
                            return Err(NetError::Timeout);
                        }
                    } else {
                        // Sleep to the head's arrival; earlier messages can
                        // only appear with arrival >= now, so re-check then.
                        inbox.waiters.wait_timeout(arrival - now);
                    }
                }
                Next::Empty => {
                    if now >= deadline {
                        return Err(NetError::Timeout);
                    }
                    inbox.waiters.wait_timeout(deadline - now);
                    if runtime::now() >= deadline && inbox.queue.lock().is_empty() {
                        return Err(NetError::Timeout);
                    }
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            sent: self.counters.sent.load(Ordering::Relaxed),
            delivered: self.counters.delivered.load(Ordering::Relaxed),
            dropped_adversary: self.counters.dropped_adversary.load(Ordering::Relaxed),
            dropped_mtu: self.counters.dropped_mtu.load(Ordering::Relaxed),
            dropped_unreachable: self.counters.dropped_unreachable.load(Ordering::Relaxed),
            tampered: self.counters.tampered.load(Ordering::Relaxed),
            duplicated: self.counters.duplicated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treaty_sched::block_on;

    fn dg(src: EndpointId, dst: EndpointId, bytes: usize) -> Datagram {
        Datagram {
            src,
            dst,
            req_type: 1,
            rpc_id: 0,
            session: 0,
            is_response: false,
            // LINT-DECLASSIFY: synthetic fabric unit-test frames carry no
            // secrets — they exercise delivery, not the envelope.
            wire: HostBytes::declassified(vec![0xAB; bytes], "fabric unit-test frame"),
            receiver_cpu: 0,
        }
    }

    fn fabric_with(a: EndpointConfig, b: EndpointConfig) -> Arc<Fabric> {
        let f = Fabric::new(CostModel::default(), 1);
        f.register(1, a);
        f.register(2, b);
        f
    }

    #[test]
    fn send_recv_roundtrip_with_latency() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.send(dg(1, 2, 100));
            let start = runtime::now();
            let got = f.recv(2, treaty_sim::SECONDS).unwrap();
            assert_eq!(got.wire.len(), 100);
            assert!(runtime::now() > start, "delivery must take virtual time");
        });
    }

    #[test]
    fn recv_timeout_when_silent() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            let r = f.recv(2, 1_000);
            assert_eq!(r.unwrap_err(), NetError::Timeout);
            assert_eq!(runtime::now(), 1_000);
        });
    }

    #[test]
    fn messages_to_unknown_endpoint_vanish() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.send(dg(1, 99, 10));
            assert_eq!(f.stats().dropped_unreachable, 1);
        });
    }

    #[test]
    fn udp_above_mtu_dropped() {
        block_on(|| {
            let cfg = EndpointConfig {
                transport: Transport::KernelUdp,
                ..EndpointConfig::default()
            };
            let f = fabric_with(cfg, cfg);
            f.send(dg(1, 2, 4096));
            assert_eq!(f.stats().dropped_mtu, 1);
            assert!(f.recv(2, 1_000).is_err());
        });
    }

    #[test]
    fn adversary_force_drop() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.with_adversary(|a| a.drop_next = 1);
            f.send(dg(1, 2, 10));
            assert_eq!(f.stats().dropped_adversary, 1);
            f.send(dg(1, 2, 10));
            assert!(f.recv(2, treaty_sim::SECONDS).is_ok());
        });
    }

    #[test]
    fn adversary_tamper_flips_wire_byte() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.with_adversary(|a| a.tamper_next = 1);
            f.send(dg(1, 2, 64));
            let got = f.recv(2, treaty_sim::SECONDS).unwrap();
            assert!(got.wire.as_slice().iter().any(|&b| b != 0xAB));
            assert_eq!(f.stats().tampered, 1);
        });
    }

    #[test]
    fn adversary_duplicates() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.with_adversary(|a| a.dup_next = 1);
            f.send(dg(1, 2, 10));
            assert!(f.recv(2, treaty_sim::SECONDS).is_ok());
            assert!(f.recv(2, treaty_sim::SECONDS).is_ok());
            assert_eq!(f.stats().duplicated, 1);
        });
    }

    #[test]
    fn partition_blocks_one_direction() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.with_adversary(|a| {
                a.partitions.insert((1, 2));
            });
            f.send(dg(1, 2, 10));
            assert!(f.recv(2, 1_000).is_err());
            f.send(dg(2, 1, 10));
            assert!(f.recv(1, treaty_sim::SECONDS).is_ok());
        });
    }

    #[test]
    fn capture_records_wire_bytes() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.start_capture();
            f.send(dg(1, 2, 32));
            let cap = f.captured();
            assert_eq!(cap.len(), 1);
            assert_eq!(cap[0].wire.as_slice(), &[0xAB; 32][..]);
        });
    }

    #[test]
    fn inject_replays_captured_message() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.start_capture();
            f.send(dg(1, 2, 16));
            let _ = f.recv(2, treaty_sim::SECONDS).unwrap();
            let cap = f.captured();
            f.inject(cap[0].clone());
            let replayed = f.recv(2, treaty_sim::SECONDS).unwrap();
            assert_eq!(replayed.wire, cap[0].wire);
        });
    }

    #[test]
    fn deregistered_endpoint_recv_closed() {
        block_on(|| {
            let f = fabric_with(EndpointConfig::default(), EndpointConfig::default());
            f.deregister(2);
            assert_eq!(f.recv(2, 1_000).unwrap_err(), NetError::Closed);
            f.send(dg(1, 2, 10));
            assert_eq!(f.stats().dropped_unreachable, 1);
        });
    }

    #[test]
    fn slow_link_serializes_longer() {
        block_on(|| {
            let fast = EndpointConfig {
                link_gbps: 40,
                ..EndpointConfig::default()
            };
            let slow = EndpointConfig {
                link_gbps: 1,
                ..EndpointConfig::default()
            };
            let f = Fabric::new(CostModel::default(), 1);
            f.register(1, fast);
            f.register(2, slow);
            f.register(3, fast);

            let t0 = runtime::now();
            f.send(dg(1, 3, 10_000));
            let fast_elapsed = runtime::now() - t0;

            let t1 = runtime::now();
            f.send(dg(2, 3, 10_000));
            let slow_elapsed = runtime::now() - t1;
            assert!(
                slow_elapsed > 10 * fast_elapsed,
                "1 Gb/s must serialize ~40x slower ({slow_elapsed} vs {fast_elapsed})"
            );
        });
    }
}
