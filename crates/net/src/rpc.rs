//! The eRPC-flavoured endpoint: handlers, sessions, continuations.
//!
//! Mirrors the programming model of §V-A / §VII-A: requests are *enqueued*
//! ([`Rpc::enqueue_request`]) and only hit the wire on [`Rpc::tx_burst`];
//! the caller then polls/blocks on a [`PendingReply`] — the continuation.
//! On the server side a dispatcher fiber demultiplexes the NIC and hands
//! each peer's requests to that peer's dedicated worker fiber (the paper's
//! fiber-per-client design, §VII-C).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use treaty_crypto::{Key, MsgKind, NonceSeq, SecureEnvelope, TxMeta, WireCrypto};
use treaty_sched::{Channel, CorePool, Receiver, Sender};
use treaty_sim::runtime::{self, FiberId};
use treaty_sim::{Nanos, TeeMode};
use treaty_tee::HostBytes;

use crate::fabric::{Datagram, EndpointConfig, EndpointId, Fabric};
use crate::{NetError, DEFAULT_RPC_TIMEOUT};

/// A request handler: `(src_endpoint, meta, payload) -> Option<(reply_meta,
/// reply_payload)>`. Returning `None` sends no reply (one-way traffic).
///
/// Handlers run on the per-peer worker fiber and may block (acquire locks,
/// wait for stabilization, issue nested RPCs).
pub type ReqHandler =
    Arc<dyn Fn(EndpointId, TxMeta, Vec<u8>) -> Option<(TxMeta, Vec<u8>)> + Send + Sync>;

/// Endpoint configuration for [`Rpc::new`].
#[derive(Clone)]
pub struct RpcConfig {
    /// Fabric-level endpoint parameters (transport, TEE, link rate).
    pub endpoint: EndpointConfig,
    /// Message protection level.
    pub crypto: WireCrypto,
    /// Network key (distributed by the CAS).
    pub key: Key,
    /// CPU cores that processing on this endpoint consumes. `None` models
    /// an uncontended client machine.
    pub cores: Option<Arc<CorePool>>,
    /// Default timeout for [`Rpc::call`].
    pub timeout: Nanos,
}

impl RpcConfig {
    /// A client configuration: plain transport parameters, given protection
    /// level, no core contention.
    pub fn client(crypto: WireCrypto, key: Key) -> Self {
        RpcConfig {
            endpoint: EndpointConfig::default(),
            crypto,
            key,
            cores: None,
            timeout: DEFAULT_RPC_TIMEOUT,
        }
    }
}

impl std::fmt::Debug for RpcConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcConfig")
            .field("endpoint", &self.endpoint)
            .field("crypto", &self.crypto)
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

struct PendingSlot {
    /// Set only while the requesting fiber is actually parked in
    /// [`Rpc::wait_reply`]; unparking a fiber that is sleeping elsewhere
    /// (e.g. charging CPU) would corrupt its timeline.
    waiter: Option<FiberId>,
    response: Option<Result<Datagram, NetError>>,
}

struct HandlerEntry {
    handler: ReqHandler,
    /// Whether `(node, tx, op)` replay suppression applies.
    guarded: bool,
}

#[derive(Default)]
struct RpcCounters {
    rejected: AtomicU64,
    replays_suppressed: AtomicU64,
    requests_handled: AtomicU64,
}

/// An RPC endpoint bound to one fabric id.
pub struct Rpc {
    fabric: Arc<Fabric>,
    id: EndpointId,
    cfg: RpcConfig,
    env: SecureEnvelope,
    nonce: Mutex<NonceSeq>,
    next_rpc_id: AtomicU64,
    pending: Mutex<HashMap<u64, PendingSlot>>,
    handlers: Mutex<HashMap<u8, Arc<HandlerEntry>>>,
    workers: Mutex<HashMap<(EndpointId, u64), Sender<(Nanos, Datagram)>>>,
    /// Memoized responses for at-most-once execution. `None` marks a
    /// request still executing; payloads are `Arc`-shared so duplicate
    /// hits resend without copying the buffer.
    replay: Mutex<HashMap<(u64, u64, u64), Option<(u64, TxMeta, Arc<Vec<u8>>)>>>,
    outbox: Mutex<Vec<Datagram>>,
    stopped: Arc<AtomicBool>,
    counters: RpcCounters,
}

impl std::fmt::Debug for Rpc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rpc")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// The continuation for an in-flight request. Obtain from
/// [`Rpc::enqueue_request`]; redeem with [`PendingReply::wait`].
#[derive(Debug)]
#[must_use = "a pending reply must be waited on (or explicitly abandoned)"]
pub struct PendingReply {
    rpc: Arc<Rpc>,
    rpc_id: u64,
    timeout: Nanos,
}

impl PendingReply {
    /// Blocks until the reply arrives or the timeout elapses.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on timeout, [`NetError::Crypto`] if the reply
    /// fails authentication.
    pub fn wait(self) -> Result<(TxMeta, Vec<u8>), NetError> {
        self.rpc.wait_reply(self.rpc_id, self.timeout)
    }
}

impl Rpc {
    /// Creates and registers an endpoint. Call [`Rpc::start`] to serve
    /// requests; pure clients may skip it only if they never receive
    /// unsolicited traffic (responses still require `start`).
    pub fn new(fabric: &Arc<Fabric>, id: EndpointId, cfg: RpcConfig) -> Arc<Self> {
        fabric.register(id, cfg.endpoint);
        Arc::new(Rpc {
            fabric: Arc::clone(fabric),
            id,
            env: SecureEnvelope::new(cfg.crypto),
            nonce: Mutex::new(NonceSeq::new(id)),
            next_rpc_id: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
            handlers: Mutex::new(HashMap::new()),
            workers: Mutex::new(HashMap::new()),
            replay: Mutex::new(HashMap::new()),
            outbox: Mutex::new(Vec::new()),
            stopped: Arc::new(AtomicBool::new(false)),
            counters: RpcCounters::default(),
            cfg,
        })
    }

    /// This endpoint's fabric id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Registers a handler for `req_type`. `guarded` enables `(node, tx,
    /// op)` replay suppression with response memoization — required for all
    /// non-idempotent transaction traffic.
    pub fn register_handler(&self, req_type: u8, guarded: bool, handler: ReqHandler) {
        self.handlers
            .lock()
            .insert(req_type, Arc::new(HandlerEntry { handler, guarded }));
    }

    /// Spawns the dispatcher fiber. Idempotent per endpoint lifetime.
    pub fn start(self: &Arc<Self>) {
        let me = Arc::clone(self);
        runtime::spawn_daemon(move || me.dispatch_loop());
    }

    /// Stops the endpoint: deregisters from the fabric (in-flight messages
    /// to it vanish) and wakes all pending callers with [`NetError::Closed`].
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.fabric.deregister(self.id);
        let mut pending = self.pending.lock();
        for (_, slot) in pending.iter_mut() {
            slot.response = Some(Err(NetError::Closed));
            if let Some(w) = slot.waiter.take() {
                runtime::unpark(w);
            }
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for (_, tx) in workers {
            tx.close();
        }
    }

    /// Number of messages rejected for failed authentication.
    pub fn rejected_count(&self) -> u64 {
        self.counters.rejected.load(Ordering::Relaxed)
    }

    /// Number of duplicate requests suppressed by the replay guard.
    pub fn replays_suppressed(&self) -> u64 {
        self.counters.replays_suppressed.load(Ordering::Relaxed)
    }

    /// Number of requests executed by handlers.
    pub fn requests_handled(&self) -> u64 {
        self.counters.requests_handled.load(Ordering::Relaxed)
    }

    // ---- client side -----------------------------------------------------

    /// Seals and enqueues a request; transmission happens on
    /// [`Rpc::tx_burst`]. The crypto work is charged to the calling fiber
    /// here (it happens in the enclave before the buffer reaches host
    /// memory).
    pub fn enqueue_request(
        self: &Arc<Self>,
        dst: EndpointId,
        req_type: u8,
        meta: &TxMeta,
        payload: &[u8],
    ) -> PendingReply {
        self.enqueue_request_on(dst, req_type, meta, payload, meta.tx_id)
    }

    /// Like [`Rpc::enqueue_request`] with an explicit session id. Requests
    /// sharing `(src, session)` are handled in order by one server fiber;
    /// distinct sessions are served concurrently (one fiber per session,
    /// §VII-C).
    pub fn enqueue_request_on(
        self: &Arc<Self>,
        dst: EndpointId,
        req_type: u8,
        meta: &TxMeta,
        payload: &[u8],
        session: u64,
    ) -> PendingReply {
        let rpc_id = self.next_rpc_id.fetch_add(1, Ordering::Relaxed);
        let wire = self.seal_charged(meta, payload);
        let dg = Datagram {
            src: self.id,
            dst,
            req_type,
            rpc_id,
            session,
            is_response: false,
            wire,
            receiver_cpu: 0,
        };
        self.pending.lock().insert(
            rpc_id,
            PendingSlot {
                waiter: None,
                response: None,
            },
        );
        self.outbox.lock().push(dg);
        PendingReply {
            rpc: Arc::clone(self),
            rpc_id,
            timeout: self.cfg.timeout,
        }
    }

    /// Transmits everything enqueued so far, charging per-message sender
    /// CPU and occupying the NIC for serialization.
    pub fn tx_burst(&self) {
        let msgs = std::mem::take(&mut *self.outbox.lock());
        for dg in msgs {
            let charge = self.fabric.costs().net_send(
                self.cfg.endpoint.transport,
                self.cfg.endpoint.tee,
                dg.wire.len() + crate::fabric::FRAME_HEADER_BYTES,
            );
            self.charge(charge.sender_cpu);
            self.fabric.send(dg);
        }
    }

    /// Sends a one-way message (no reply expected, no pending slot).
    pub fn send_oneway(&self, dst: EndpointId, req_type: u8, meta: &TxMeta, payload: &[u8]) {
        let wire = self.seal_charged(meta, payload);
        let dg = Datagram {
            src: self.id,
            dst,
            req_type,
            rpc_id: 0,
            session: meta.tx_id,
            is_response: false,
            wire,
            receiver_cpu: 0,
        };
        let charge = self.fabric.costs().net_send(
            self.cfg.endpoint.transport,
            self.cfg.endpoint.tee,
            dg.wire.len() + crate::fabric::FRAME_HEADER_BYTES,
        );
        self.charge(charge.sender_cpu);
        self.fabric.send(dg);
    }

    /// Blocking request/response with the default timeout:
    /// enqueue + burst + wait.
    ///
    /// # Errors
    ///
    /// See [`PendingReply::wait`].
    pub fn call(
        self: &Arc<Self>,
        dst: EndpointId,
        req_type: u8,
        meta: &TxMeta,
        payload: &[u8],
    ) -> Result<(TxMeta, Vec<u8>), NetError> {
        let reply = self.enqueue_request(dst, req_type, meta, payload);
        self.tx_burst();
        reply.wait()
    }

    fn wait_reply(&self, rpc_id: u64, timeout: Nanos) -> Result<(TxMeta, Vec<u8>), NetError> {
        let deadline = runtime::now().saturating_add(timeout);
        loop {
            {
                let mut pending = self.pending.lock();
                let slot = pending.get_mut(&rpc_id).ok_or(NetError::Closed)?;
                if let Some(result) = slot.response.take() {
                    pending.remove(&rpc_id);
                    drop(pending);
                    let dg = result?;
                    // Receiver-side CPU + decrypt happen on the caller: the
                    // reply was addressed to this fiber's request.
                    self.charge(dg.receiver_cpu);
                    return self.open_charged(&dg.wire);
                }
                let now = runtime::now();
                if now >= deadline {
                    pending.remove(&rpc_id);
                    return Err(NetError::Timeout);
                }
                // Arm the waiter only for the duration of the park below;
                // cooperative scheduling guarantees nothing runs between
                // this assignment and the park.
                slot.waiter = Some(runtime::current());
            }
            let deadline_left = deadline - runtime::now();
            runtime::park_timeout(deadline_left);
            // Disarm immediately on wake (timeout path); the dispatcher
            // takes the waiter when it delivers, so a Some here is ours.
            if let Some(slot) = self.pending.lock().get_mut(&rpc_id) {
                slot.waiter = None;
            }
        }
    }

    // ---- server side -----------------------------------------------------

    fn dispatch_loop(self: Arc<Self>) {
        runtime::set_tag("rpc-dispatcher");
        treaty_sim::obs::set_node(self.id);
        loop {
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            match self.fabric.recv(self.id, treaty_sim::SECONDS) {
                Ok(dg) => {
                    if dg.is_response {
                        let mut pending = self.pending.lock();
                        if let Some(slot) = pending.get_mut(&dg.rpc_id) {
                            // First response wins; duplicates are dropped.
                            if slot.response.is_none() {
                                slot.response = Some(Ok(dg));
                                if let Some(w) = slot.waiter.take() {
                                    runtime::unpark(w);
                                }
                            }
                        }
                    } else {
                        self.route_request(dg);
                    }
                }
                Err(NetError::Timeout) => continue,
                Err(_) => return,
            }
        }
    }

    fn route_request(self: &Arc<Self>, dg: Datagram) {
        let key = (dg.src, dg.session);
        // Arrival stamp: the span the worker later opens reports the time
        // the request sat in this queue as `queue_ns` — the attribution
        // walker's queueing category.
        let arrived = runtime::now();
        let mut workers = self.workers.lock();
        let tx = workers.entry(key).or_insert_with(|| {
            let (tx, rx) = Channel::pair();
            let me = Arc::clone(self);
            // One worker fiber per session (§VII-C).
            runtime::spawn_daemon(move || me.worker_loop(key, rx));
            tx
        });
        if let Err((arrived, dg)) = tx.send((arrived, dg)) {
            // The worker retired between our lookup and the send; replace.
            let (tx, rx) = Channel::pair();
            let me = Arc::clone(self);
            runtime::spawn_daemon(move || me.worker_loop(key, rx));
            let _ = tx.send((arrived, dg));
            workers.insert(key, tx);
        }
    }

    fn worker_loop(self: Arc<Self>, key: (EndpointId, u64), rx: Receiver<(Nanos, Datagram)>) {
        runtime::set_tag("rpc-worker");
        treaty_sim::obs::set_node(self.id);
        loop {
            match rx.recv_timeout(treaty_sim::SECONDS) {
                treaty_sched::RecvTimeout::Ok((arrived, dg)) => {
                    if self.stopped.load(Ordering::SeqCst) {
                        return;
                    }
                    self.handle_request(dg, arrived);
                }
                treaty_sched::RecvTimeout::Closed => return,
                treaty_sched::RecvTimeout::TimedOut => {
                    // Retire this idle session's fiber so long runs do not
                    // accumulate one parked fiber per past transaction. The
                    // map lock serializes against route_request; a message
                    // that raced the timeout is handled before retiring.
                    let racing = {
                        let mut workers = self.workers.lock();
                        match rx.try_recv() {
                            Some(dg) => Some(dg),
                            None => {
                                workers.remove(&key);
                                None
                            }
                        }
                    };
                    match racing {
                        Some((arrived, dg)) => self.handle_request(dg, arrived),
                        None => return,
                    }
                }
            }
        }
    }

    fn handle_request(self: &Arc<Self>, dg: Datagram, arrived: Nanos) {
        // Receiver CPU for taking delivery.
        runtime::set_tag("w:recv-charge");
        let started = runtime::now();
        let queue_ns = started.saturating_sub(arrived);
        self.charge(dg.receiver_cpu);
        runtime::set_tag("w:open");
        let (meta, payload) = match self.open_charged(&dg.wire) {
            Ok(x) => x,
            Err(_) => {
                // Tampered or replay-of-garbage: reject silently; the
                // sender will time out and retry. Integrity holds.
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let entry = match self.handlers.lock().get(&dg.req_type) {
            Some(e) => Arc::clone(e),
            None => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };

        if entry.guarded {
            let key = meta.replay_key();
            let mut replay = self.replay.lock();
            match replay.get(&key) {
                Some(Some((cached_rpc_id, cached_meta, cached_payload))) => {
                    // Duplicate of a completed request: resend the memoized
                    // response without re-executing (at-most-once). Cloning
                    // the Arc shares the payload buffer instead of copying.
                    self.counters
                        .replays_suppressed
                        .fetch_add(1, Ordering::Relaxed);
                    let resp_meta = *cached_meta;
                    let resp_payload = Arc::clone(cached_payload);
                    let _ = cached_rpc_id;
                    drop(replay);
                    self.send_response(dg.src, dg.req_type, dg.rpc_id, &resp_meta, &resp_payload);
                    return;
                }
                Some(None) => {
                    // Duplicate while the original is still executing.
                    self.counters
                        .replays_suppressed
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                None => {
                    replay.insert(key, None);
                }
            }
        }

        self.counters
            .requests_handled
            .fetch_add(1, Ordering::Relaxed);
        // The handler span: its self time is the shielded-boundary work
        // this layer did (open/seal crypto, replay bookkeeping); the
        // queue wait and boundary time before it opened ride along as
        // args for the critical-path walker to split out. Transaction
        // scope comes from the opened meta, so cross-node forests link.
        let open_ns = runtime::now().saturating_sub(started);
        let _txn = treaty_sim::obs::txn_scope(meta.tx_id);
        let _span = treaty_sim::obs::span_with(
            "rpc.handle",
            &[
                ("req", dg.req_type as u64),
                ("queue_ns", queue_ns),
                ("open_ns", open_ns),
            ],
        );
        runtime::set_tag("w:handler");
        let reply = (entry.handler)(dg.src, meta, payload);
        runtime::set_tag("w:post-handler");

        match reply {
            Some((m, p)) => {
                let p = Arc::new(p);
                if entry.guarded {
                    self.replay
                        .lock()
                        .insert(meta.replay_key(), Some((dg.rpc_id, m, Arc::clone(&p))));
                }
                self.send_response(dg.src, dg.req_type, dg.rpc_id, &m, &p);
            }
            None => {
                if entry.guarded {
                    self.replay.lock().remove(&meta.replay_key());
                }
            }
        }
    }

    fn send_response(
        &self,
        dst: EndpointId,
        req_type: u8,
        rpc_id: u64,
        meta: &TxMeta,
        payload: &[u8],
    ) {
        let wire = self.seal_charged(meta, payload);
        let dg = Datagram {
            src: self.id,
            dst,
            req_type,
            rpc_id,
            session: 0,
            is_response: true,
            wire,
            receiver_cpu: 0,
        };
        let charge = self.fabric.costs().net_send(
            self.cfg.endpoint.transport,
            self.cfg.endpoint.tee,
            dg.wire.len() + crate::fabric::FRAME_HEADER_BYTES,
        );
        self.charge(charge.sender_cpu);
        self.fabric.send(dg);
    }

    // ---- shared helpers ----------------------------------------------------

    fn charge(&self, ns: Nanos) {
        if ns == 0 {
            return;
        }
        // All RPC processing on a SCONE endpoint executes inside the
        // enclave: apply the network-library SCONE multiplier.
        let ns = self
            .fabric
            .costs()
            .enclave_net_cpu(self.cfg.endpoint.tee, ns);
        match &self.cfg.cores {
            Some(pool) => pool.charge(ns),
            None => runtime::sleep(ns),
        }
    }

    fn crypto_cost(&self, bytes: usize) -> Nanos {
        let costs = self.fabric.costs();
        match self.cfg.crypto {
            WireCrypto::Plain => 0,
            WireCrypto::AuthOnly => costs.sha_ns(bytes),
            WireCrypto::Full => costs.aes_ns(bytes),
        }
    }

    /// Seals a message and charges crypto + (SCONE) boundary-copy costs.
    /// The result is boundary-typed: message buffers live in untrusted
    /// host memory, so they must be [`HostBytes`].
    fn seal_charged(&self, meta: &TxMeta, payload: &[u8]) -> HostBytes {
        self.charge(self.crypto_cost(payload.len() + 80));
        // Under SCONE the sealed buffer is written to a message buffer in
        // untrusted host memory (§VII-A): one boundary copy.
        if self.cfg.endpoint.tee == TeeMode::Scone {
            self.charge(
                self.fabric
                    .costs()
                    .boundary_copy_ns(TeeMode::Scone, payload.len()),
            );
        }
        let iv = self.nonce.lock().next();
        HostBytes::from_envelope(self.env.seal(&self.cfg.key, iv, meta, payload))
    }

    fn open_charged(&self, wire: &HostBytes) -> Result<(TxMeta, Vec<u8>), NetError> {
        self.charge(self.crypto_cost(wire.len()));
        Ok(self.env.open(&self.cfg.key, wire.as_slice())?)
    }
}

/// Builds a [`TxMeta`] for RPC-level traffic that is not part of a
/// transaction (benchmarks, control messages).
pub fn control_meta(node_id: u64, seq: u64, kind: MsgKind) -> TxMeta {
    TxMeta {
        node_id,
        tx_id: seq,
        op_id: 0,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treaty_crypto::KeyHierarchy;
    use treaty_sched::block_on;
    use treaty_sim::CostModel;

    const ECHO: u8 = 7;

    fn setup(crypto: WireCrypto) -> (Arc<Fabric>, Arc<Rpc>, Arc<Rpc>) {
        let fabric = Fabric::new(CostModel::default(), 42);
        let key = KeyHierarchy::for_testing().network;
        let server_cfg = RpcConfig {
            endpoint: EndpointConfig::default(),
            crypto,
            key,
            cores: Some(Arc::new(CorePool::new(8))),
            timeout: DEFAULT_RPC_TIMEOUT,
        };
        let client_cfg = RpcConfig::client(crypto, key);
        let server = Rpc::new(&fabric, 1, server_cfg);
        server.register_handler(
            ECHO,
            true,
            Arc::new(|_src, meta, payload| {
                let mut out = payload;
                out.reverse();
                Some((
                    TxMeta {
                        kind: MsgKind::Ack,
                        ..meta
                    },
                    out,
                ))
            }),
        );
        server.start();
        let client = Rpc::new(&fabric, 100, client_cfg);
        client.start();
        (fabric, server, client)
    }

    fn meta(tx: u64, op: u64) -> TxMeta {
        TxMeta {
            node_id: 100,
            tx_id: tx,
            op_id: op,
            kind: MsgKind::Data,
        }
    }

    #[test]
    fn call_roundtrip_encrypted() {
        block_on(|| {
            let (_f, _s, client) = setup(WireCrypto::Full);
            let (m, p) = client.call(1, ECHO, &meta(1, 1), b"abc").unwrap();
            assert_eq!(m.kind, MsgKind::Ack);
            assert_eq!(p, b"cba");
        });
    }

    #[test]
    fn call_roundtrip_all_crypto_modes() {
        for crypto in [WireCrypto::Plain, WireCrypto::AuthOnly, WireCrypto::Full] {
            block_on(move || {
                let (_f, _s, client) = setup(crypto);
                let (_, p) = client.call(1, ECHO, &meta(1, 1), b"xyz").unwrap();
                assert_eq!(p, b"zyx");
            });
        }
    }

    #[test]
    fn enqueue_then_burst_batches() {
        block_on(|| {
            let (_f, _s, client) = setup(WireCrypto::Full);
            let r1 = client.enqueue_request(1, ECHO, &meta(1, 1), b"a1");
            let r2 = client.enqueue_request(1, ECHO, &meta(1, 2), b"b2");
            // Nothing on the wire until the burst.
            client.tx_burst();
            assert_eq!(r1.wait().unwrap().1, b"1a");
            assert_eq!(r2.wait().unwrap().1, b"2b");
        });
    }

    #[test]
    fn timeout_on_dead_server() {
        block_on(|| {
            let (_f, server, client) = setup(WireCrypto::Full);
            server.stop();
            let err = client.call(1, ECHO, &meta(1, 1), b"x").unwrap_err();
            assert_eq!(err, NetError::Timeout);
        });
    }

    #[test]
    fn tampered_request_rejected_and_times_out() {
        block_on(|| {
            let (fabric, server, client) = setup(WireCrypto::Full);
            fabric.with_adversary(|a| a.tamper_next = 1);
            let err = client.call(1, ECHO, &meta(1, 1), b"x").unwrap_err();
            assert_eq!(err, NetError::Timeout);
            assert_eq!(server.rejected_count(), 1);
        });
    }

    #[test]
    fn duplicated_request_executes_once() {
        block_on(|| {
            let (fabric, server, client) = setup(WireCrypto::Full);
            fabric.with_adversary(|a| a.dup_next = 1);
            let (_, p) = client.call(1, ECHO, &meta(9, 1), b"once").unwrap();
            assert_eq!(p, b"ecno");
            // Give the duplicate time to arrive and be suppressed.
            runtime::sleep(treaty_sim::MILLIS);
            assert_eq!(server.requests_handled(), 1);
            assert_eq!(server.replays_suppressed(), 1);
        });
    }

    #[test]
    fn replayed_capture_is_suppressed() {
        block_on(|| {
            let (fabric, server, client) = setup(WireCrypto::Full);
            fabric.start_capture();
            let _ = client.call(1, ECHO, &meta(5, 1), b"hello").unwrap();
            let captured = fabric.captured();
            let req = captured.iter().find(|d| !d.is_response).unwrap();
            fabric.inject(req.clone());
            runtime::sleep(treaty_sim::MILLIS);
            assert_eq!(server.requests_handled(), 1, "replay must not re-execute");
            assert_eq!(server.replays_suppressed(), 1);
        });
    }

    #[test]
    fn encrypted_wire_hides_payload() {
        block_on(|| {
            let (fabric, _s, client) = setup(WireCrypto::Full);
            fabric.start_capture();
            let secret = b"super-secret-kv-value";
            let _ = client.call(1, ECHO, &meta(2, 1), secret).unwrap();
            let sniffed = fabric.captured_bytes();
            assert!(
                !sniffed.windows(secret.len()).any(|w| w == secret),
                "plaintext visible on the wire"
            );
        });
    }

    #[test]
    fn plain_wire_exposes_payload() {
        block_on(|| {
            let (fabric, _s, client) = setup(WireCrypto::Plain);
            fabric.start_capture();
            let secret = b"super-secret-kv-value";
            let _ = client.call(1, ECHO, &meta(2, 1), secret).unwrap();
            let sniffed = fabric.captured_bytes();
            assert!(sniffed.windows(secret.len()).any(|w| w == secret));
        });
    }

    #[test]
    fn dropped_request_times_out_not_hangs() {
        block_on(|| {
            let (fabric, _s, client) = setup(WireCrypto::Full);
            fabric.with_adversary(|a| a.drop_next = 1);
            let t0 = runtime::now();
            let err = client.call(1, ECHO, &meta(3, 1), b"x").unwrap_err();
            assert_eq!(err, NetError::Timeout);
            assert!(runtime::now() - t0 >= DEFAULT_RPC_TIMEOUT);
        });
    }

    #[test]
    fn concurrent_clients_all_served() {
        block_on(|| {
            let (_f, server, _c) = setup(WireCrypto::Full);
            let fabric = Arc::clone(server.fabric());
            let key = KeyHierarchy::for_testing().network;
            let mut handles = Vec::new();
            for cid in 200..232u32 {
                let fabric = Arc::clone(&fabric);
                let cfg = RpcConfig::client(WireCrypto::Full, key);
                handles.push(runtime::spawn(move || {
                    let client = Rpc::new(&fabric, cid, cfg);
                    client.start();
                    for op in 0..5 {
                        let m = TxMeta {
                            node_id: cid as u64,
                            tx_id: 1,
                            op_id: op,
                            kind: MsgKind::Data,
                        };
                        let (_, p) = client.call(1, ECHO, &m, b"ping").unwrap();
                        assert_eq!(p, b"gnip");
                    }
                }));
            }
            for h in handles {
                runtime::join(h);
            }
            assert_eq!(server.requests_handled(), 32 * 5);
        });
    }

    #[test]
    fn oneway_messages_counted_by_handler() {
        block_on(|| {
            let fabric = Fabric::new(CostModel::default(), 7);
            let key = KeyHierarchy::for_testing().network;
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&counter);
            let server = Rpc::new(&fabric, 1, RpcConfig::client(WireCrypto::Full, key));
            server.register_handler(
                9,
                false,
                Arc::new(move |_, _, payload| {
                    c2.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    None
                }),
            );
            server.start();
            let client = Rpc::new(&fabric, 2, RpcConfig::client(WireCrypto::Full, key));
            for i in 0..10 {
                client.send_oneway(1, 9, &meta(i, 0), &vec![0u8; 100]);
            }
            runtime::sleep(treaty_sim::MILLIS);
            assert_eq!(counter.load(Ordering::Relaxed), 1000);
        });
    }
}
