//! The Configuration and Attestation Service (CAS) and the per-node Local
//! Attestation Service (LAS) — Treaty's distributed trust bootstrap (§VI).
//!
//! SGX remote attestation is built for attesting a *single* enclave to a
//! *remote* verifier through the Intel Attestation Service (IAS), which is
//! slow (a WAN round trip) and offers no collective trust for a cluster.
//! Treaty instead:
//!
//! 1. the service provider verifies one CAS enclave over IAS,
//! 2. the CAS verifies one LAS per machine over IAS,
//! 3. each LAS replaces the Quoting Enclave: it signs quotes for every
//!    Treaty instance on its machine *locally*,
//! 4. the CAS verifies those quotes and provisions the verified instance
//!    with the cluster configuration and key hierarchy.
//!
//! After bootstrap, node restarts re-attest via their LAS + CAS only — no
//! IAS round trip — which is what makes recovery fast. The test suite
//! counts IAS calls to pin down exactly that property.
//!
//! The attestation chain here runs as direct calls rather than fabric RPCs:
//! it is a *setup-time* protocol (the data path never touches it), and the
//! quotes/verification are real [`treaty_tee`] operations either way.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treaty_crypto::{Key, KeyHierarchy};
use treaty_tee::{HardwareRoot, Measurement, Quote};

/// Errors from the attestation chain.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum CasError {
    /// A quote failed verification or attested an unexpected measurement.
    #[error("attestation failed: {0}")]
    Attestation(String),
    /// The client credentials were not recognised.
    #[error("client authentication failed")]
    ClientAuth,
    /// The CAS is unavailable (it is a single point of failure for
    /// recovery, as §VI concedes).
    #[error("CAS unavailable")]
    Unavailable,
}

/// Static cluster configuration the CAS distributes to verified nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Fabric endpoint of every Treaty node, in shard order.
    pub node_endpoints: Vec<u32>,
    /// Fabric endpoints of the trusted counter protection group.
    pub counter_replicas: Vec<u32>,
    /// Seed for the shard map hash.
    pub shard_seed: u64,
}

/// Credentials a verified node receives.
#[derive(Debug, Clone)]
pub struct NodeCredentials {
    /// The full key hierarchy.
    pub keys: KeyHierarchy,
    /// The cluster configuration.
    pub config: ClusterConfig,
}

/// Credentials an authenticated client receives (network key only — the
/// storage keys never leave the server enclaves).
#[derive(Debug, Clone)]
pub struct ClientCredentials {
    /// Key protecting client↔node messages.
    pub network_key: Key,
}

/// The simulated Intel Attestation Service: verifies quotes against the
/// hardware root and counts how often it is consulted.
#[derive(Debug)]
pub struct Ias {
    hw: HardwareRoot,
    calls: AtomicU64,
}

impl Ias {
    /// Creates the IAS for a given hardware root.
    pub fn new(hw: HardwareRoot) -> Arc<Self> {
        Arc::new(Ias {
            hw,
            calls: AtomicU64::new(0),
        })
    }

    /// Verifies a quote (one slow WAN round in production).
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Attestation`] on verification failure.
    pub fn verify(&self, quote: &Quote, expected: &Measurement) -> Result<(), CasError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.hw
            .verify_quote(quote, expected)
            .map_err(|e| CasError::Attestation(e.to_string()))
    }

    /// How many times the IAS has been consulted.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// The per-machine Local Attestation Service: replaces the Quoting Enclave,
/// collecting and signing quotes for all Treaty instances on its machine.
#[derive(Debug)]
pub struct Las {
    machine: String,
    hw: HardwareRoot,
    measurement: Measurement,
}

/// Code identity of the LAS enclave.
pub fn las_measurement() -> Measurement {
    Measurement::of_code("treaty-las-v1")
}

/// Code identity of a Treaty node enclave.
pub fn node_measurement() -> Measurement {
    Measurement::of_code("treaty-node-v1")
}

impl Las {
    fn new(machine: impl Into<String>, hw: HardwareRoot) -> Self {
        Las {
            machine: machine.into(),
            hw,
            measurement: las_measurement(),
        }
    }

    /// The machine this LAS serves.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Issues a quote for a local Treaty instance. In production this is a
    /// local (fast) operation — no IAS involved.
    pub fn quote_instance(&self, instance: &Measurement, report_data: Vec<u8>) -> Quote {
        self.hw.issue_quote(*instance, report_data)
    }

    fn self_quote(&self) -> Quote {
        self.hw
            .issue_quote(self.measurement, self.machine.as_bytes().to_vec())
    }
}

struct CasState {
    nodes: HashMap<u32, Measurement>,
    clients: HashMap<u64, Key>,
}

/// The Configuration and Attestation Service.
pub struct Cas {
    ias: Arc<Ias>,
    hw: HardwareRoot,
    master: Key,
    config: ClusterConfig,
    state: Mutex<CasState>,
}

impl std::fmt::Debug for Cas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cas")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cas {
    /// Bootstraps the CAS: the service provider verifies it over IAS once,
    /// then it becomes the cluster's root of configuration and keys.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Attestation`] if the CAS enclave's own quote does
    /// not verify.
    pub fn bootstrap(
        ias: &Arc<Ias>,
        hw: HardwareRoot,
        master: Key,
        config: ClusterConfig,
    ) -> Result<Arc<Self>, CasError> {
        let cas_measurement = Measurement::of_code("treaty-cas-v1");
        let quote = hw.issue_quote(cas_measurement, b"cas-bootstrap".to_vec());
        ias.verify(&quote, &cas_measurement)?;
        Ok(Arc::new(Cas {
            ias: Arc::clone(ias),
            hw,
            master,
            config,
            state: Mutex::new(CasState {
                nodes: HashMap::new(),
                clients: HashMap::new(),
            }),
        }))
    }

    /// Deploys a LAS on `machine`, verifying it over IAS (once per machine,
    /// at deployment time).
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Attestation`] if the LAS quote does not verify.
    pub fn deploy_las(&self, machine: &str) -> Result<Las, CasError> {
        let las = Las::new(machine, self.hw.clone());
        self.ias.verify(&las.self_quote(), &las_measurement())?;
        Ok(las)
    }

    /// Registers a Treaty node instance: the LAS-signed quote is verified
    /// *locally* (no IAS), then the node receives keys and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::Attestation`] if the quote is invalid or attests
    /// the wrong code.
    pub fn register_node(&self, endpoint: u32, quote: &Quote) -> Result<NodeCredentials, CasError> {
        self.hw
            .verify_quote(quote, &node_measurement())
            .map_err(|e| CasError::Attestation(e.to_string()))?;
        self.state.lock().nodes.insert(endpoint, quote.measurement);
        Ok(NodeCredentials {
            keys: KeyHierarchy::from_master(&self.master),
            config: self.config.clone(),
        })
    }

    /// Registers a client by id, returning its shared-secret credentials.
    /// (Clients authenticate with the CAS out of band — e.g. cloud IAM —
    /// which the paper leaves abstract.)
    pub fn register_client(&self, client_id: u64) -> ClientCredentials {
        let network_key = KeyHierarchy::from_master(&self.master).network;
        self.state.lock().clients.insert(client_id, network_key);
        ClientCredentials { network_key }
    }

    /// Verifies that a client was registered.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::ClientAuth`] for unknown clients.
    pub fn authenticate_client(&self, client_id: u64) -> Result<(), CasError> {
        if self.state.lock().clients.contains_key(&client_id) {
            Ok(())
        } else {
            Err(CasError::ClientAuth)
        }
    }

    /// Number of nodes currently registered.
    pub fn registered_nodes(&self) -> usize {
        self.state.lock().nodes.len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

/// Runs the full trust-bootstrap for a test/bench cluster and returns the
/// pieces: IAS, CAS, one LAS per machine.
///
/// # Panics
///
/// Panics if bootstrap fails (impossible with an honest hardware root).
pub fn bootstrap_cluster(
    master: Key,
    config: ClusterConfig,
    machines: &[&str],
) -> (Arc<Ias>, Arc<Cas>, Vec<Las>) {
    let hw = HardwareRoot::new(master.derive("hw-root-secret"));
    let ias = Ias::new(hw.clone());
    let cas = Cas::bootstrap(&ias, hw, master, config).expect("CAS bootstrap");
    let lases = machines
        .iter()
        .map(|m| cas.deploy_las(m).expect("LAS deploy"))
        .collect();
    (ias, cas, lases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig {
            node_endpoints: vec![1, 2, 3],
            counter_replicas: vec![1000, 1001, 1002],
            shard_seed: 7,
        }
    }

    #[test]
    fn full_chain_provisions_node() {
        let (_ias, cas, lases) = bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1"]);
        let quote = lases[0].quote_instance(&node_measurement(), b"node-1".to_vec());
        let creds = cas.register_node(1, &quote).unwrap();
        assert_eq!(creds.config, config());
        assert_eq!(cas.registered_nodes(), 1);
    }

    #[test]
    fn wrong_code_is_rejected() {
        let (_ias, cas, lases) = bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1"]);
        let evil = Measurement::of_code("treaty-node-v1-with-backdoor");
        let quote = lases[0].quote_instance(&evil, vec![]);
        assert!(matches!(
            cas.register_node(1, &quote),
            Err(CasError::Attestation(_))
        ));
        assert_eq!(cas.registered_nodes(), 0);
    }

    #[test]
    fn forged_quote_is_rejected() {
        let (_ias, cas, _lases) = bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1"]);
        // A quote signed by a different (attacker-controlled) root.
        let rogue = HardwareRoot::new(Key::from_bytes([99; 32]));
        let quote = rogue.issue_quote(node_measurement(), vec![]);
        assert!(matches!(
            cas.register_node(1, &quote),
            Err(CasError::Attestation(_))
        ));
    }

    #[test]
    fn node_reattestation_skips_ias() {
        let (ias, cas, lases) = bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1"]);
        let after_bootstrap = ias.call_count(); // CAS + 1 LAS
        assert_eq!(after_bootstrap, 2);
        // A node restarting re-attests via LAS + CAS only.
        for restart in 0..5 {
            let quote =
                lases[0].quote_instance(&node_measurement(), format!("r{restart}").into_bytes());
            cas.register_node(1, &quote).unwrap();
        }
        assert_eq!(
            ias.call_count(),
            after_bootstrap,
            "recovery must not call IAS"
        );
    }

    #[test]
    fn client_registration_and_auth() {
        let (_ias, cas, _) = bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1"]);
        let creds = cas.register_client(7);
        cas.authenticate_client(7).unwrap();
        assert_eq!(cas.authenticate_client(8), Err(CasError::ClientAuth));
        // Client gets exactly the network key, nothing else.
        let keys = KeyHierarchy::from_master(&Key::from_bytes([1; 32]));
        assert_eq!(creds.network_key, keys.network);
    }

    #[test]
    fn same_master_yields_same_keys_across_nodes() {
        let (_ias, cas, lases) =
            bootstrap_cluster(Key::from_bytes([1; 32]), config(), &["m1", "m2"]);
        let q1 = lases[0].quote_instance(&node_measurement(), b"n1".to_vec());
        let q2 = lases[1].quote_instance(&node_measurement(), b"n2".to_vec());
        let c1 = cas.register_node(1, &q1).unwrap();
        let c2 = cas.register_node(2, &q2).unwrap();
        assert_eq!(c1.keys.network, c2.keys.network);
        assert_eq!(c1.keys.storage, c2.keys.storage);
    }
}
