//! The declared lock registry and yield-point vocabulary backing rules
//! L007–L010.
//!
//! The analyzer (`crate::analyzer`) is a lexer, not a type checker: it
//! cannot see what a `.lock()` receiver *is*, only what it is *called*.
//! This module closes that gap by declaration — every mutex in the
//! concurrency-bearing crates (`core`, `store`, `sim`, `net`) is
//! registered here as `(file, receiver identifier) → lock class`, and
//! L010 fails any `.lock()` site that does not resolve, so the L009
//! lock-order graph can never silently miss an edge.
//!
//! Two flags qualify a class:
//!
//! * `fiber` — the lock is fiber-aware (`treaty_sched::FiberMutex` or a
//!   condvar baton that releases while waiting): holding it across a
//!   yield point is the *intended* usage, so L007 exempts its guards.
//!   Acquiring a fiber lock still *is* a yield point (the acquire can
//!   park), so doing so while holding a non-fiber guard is flagged.
//! * `ordered` — a sharded/striped family registered as one class whose
//!   members are only ever taken one at a time or in a defined order;
//!   self-edges inside the class are allowed. Unordered classes with a
//!   self-edge are reported as a one-node cycle.

/// A declared lock class: one node in the L009 lock-order graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    /// Stable class name, e.g. `"store.commit_lock"`.
    pub name: &'static str,
    /// Fiber-aware lock: guards may be held across yields (L007 exempt),
    /// but acquisition itself is a yield point.
    pub fiber: bool,
    /// Sharded family with a defined intra-class order; self-edges OK.
    pub ordered: bool,
}

/// Maps one `.lock()` receiver identifier in one file to its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSpec {
    /// Repo-relative file the receiver lives in.
    pub file: &'static str,
    /// The identifier immediately before `.lock()` — a field name, a
    /// local binding, or the method that returns the shard (`stripe`).
    pub receiver: &'static str,
    /// Name of the [`LockClass`] this receiver resolves to.
    pub class: &'static str,
}

/// Every lock class in the workspace. Kept sorted by name.
pub const LOCK_CLASSES: &[LockClass] = &[
    LockClass { name: "core.clog.state", fiber: false, ordered: false },
    LockClass { name: "core.node.active_coord", fiber: false, ordered: false },
    LockClass { name: "core.node.active_part", fiber: false, ordered: false },
    LockClass { name: "core.node.decision_queue", fiber: false, ordered: false },
    LockClass { name: "core.node.recently_aborted", fiber: false, ordered: false },
    LockClass { name: "core.node.stats", fiber: false, ordered: false },
    LockClass { name: "net.fabric.adversary", fiber: false, ordered: false },
    LockClass { name: "net.fabric.capture", fiber: false, ordered: false },
    LockClass { name: "net.fabric.endpoints", fiber: false, ordered: false },
    LockClass { name: "net.fabric.inbox_closed", fiber: false, ordered: false },
    LockClass { name: "net.fabric.inbox_queue", fiber: false, ordered: false },
    // The NIC port is deliberately occupied across the serialization
    // sleep — the egress link is a shared resource (fabric.rs).
    LockClass { name: "net.fabric.nic", fiber: true, ordered: false },
    LockClass { name: "net.fabric.rng", fiber: false, ordered: false },
    LockClass { name: "net.rpc.handlers", fiber: false, ordered: false },
    LockClass { name: "net.rpc.nonce", fiber: false, ordered: false },
    LockClass { name: "net.rpc.outbox", fiber: false, ordered: false },
    LockClass { name: "net.rpc.pending", fiber: false, ordered: false },
    LockClass { name: "net.rpc.replay", fiber: false, ordered: false },
    LockClass { name: "net.rpc.workers", fiber: false, ordered: false },
    LockClass { name: "sim.crash.handlers", fiber: false, ordered: false },
    LockClass { name: "sim.crash.state", fiber: false, ordered: false },
    // The park-cell baton: a condvar wait *releases* the mutex, so a
    // guard across `.wait(&mut g)` is the protocol, not a hazard.
    LockClass { name: "sim.sched.park_cell", fiber: true, ordered: false },
    LockClass { name: "sim.sched.inner", fiber: false, ordered: false },
    LockClass { name: "store.cache", fiber: false, ordered: false },
    LockClass { name: "store.commit_done", fiber: false, ordered: false },
    // Group-commit leader lock: the critical section spans WAL I/O and
    // flush hand-off by design (that is why it is a FiberMutex).
    LockClass { name: "store.commit_lock", fiber: true, ordered: false },
    LockClass { name: "store.commit_queue", fiber: false, ordered: false },
    LockClass { name: "store.frontier", fiber: false, ordered: false },
    LockClass { name: "store.live_wal_gens", fiber: false, ordered: false },
    // Hash-sharded lock-table: shards are only ever taken one at a time.
    LockClass { name: "store.lock_table_shard", fiber: false, ordered: true },
    // Maintenance daemon lock: held across flush/compaction I/O by design.
    LockClass { name: "store.maintenance_lock", fiber: true, ordered: false },
    LockClass { name: "store.manifest", fiber: false, ordered: false },
    LockClass { name: "store.null_engine_data", fiber: false, ordered: false },
    LockClass { name: "store.null_engine_prepared", fiber: false, ordered: false },
    LockClass { name: "store.pending_gc", fiber: false, ordered: false },
    // Striped prepared-table families: stripes within a family are taken
    // one at a time (iteration) — a single ordered class each.
    LockClass { name: "store.prepared_key_index", fiber: false, ordered: true },
    LockClass { name: "store.prepared_stripes", fiber: false, ordered: true },
    LockClass { name: "store.flush_backlog", fiber: false, ordered: false },
    // WAL append lock: spans encrypt + counter-assign + SSD charge (that
    // is why it is a FiberMutex, per the log.rs doc comment).
    LockClass { name: "store.wal_write", fiber: true, ordered: false },
    LockClass { name: "store.wal_file", fiber: false, ordered: false },
];

/// Every `.lock()` receiver in the analyzed crates. L010 fails any call
/// site that does not resolve through this table.
pub const LOCK_REGISTRY: &[LockSpec] = &[
    // -- crates/sim ---------------------------------------------------
    LockSpec { file: "crates/sim/src/runtime.rs", receiver: "inner", class: "sim.sched.inner" },
    LockSpec { file: "crates/sim/src/runtime.rs", receiver: "go", class: "sim.sched.park_cell" },
    LockSpec { file: "crates/sim/src/crashpoint.rs", receiver: "state", class: "sim.crash.state" },
    LockSpec { file: "crates/sim/src/crashpoint.rs", receiver: "handlers", class: "sim.crash.handlers" },
    // -- crates/net ---------------------------------------------------
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "endpoints", class: "net.fabric.endpoints" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "adversary", class: "net.fabric.adversary" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "rng", class: "net.fabric.rng" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "capture", class: "net.fabric.capture" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "queue", class: "net.fabric.inbox_queue" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "closed", class: "net.fabric.inbox_closed" },
    LockSpec { file: "crates/net/src/fabric.rs", receiver: "nic", class: "net.fabric.nic" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "pending", class: "net.rpc.pending" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "handlers", class: "net.rpc.handlers" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "workers", class: "net.rpc.workers" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "replay", class: "net.rpc.replay" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "outbox", class: "net.rpc.outbox" },
    LockSpec { file: "crates/net/src/rpc.rs", receiver: "nonce", class: "net.rpc.nonce" },
    // -- crates/core --------------------------------------------------
    LockSpec { file: "crates/core/src/node.rs", receiver: "stats", class: "core.node.stats" },
    LockSpec { file: "crates/core/src/node.rs", receiver: "active_coord", class: "core.node.active_coord" },
    LockSpec { file: "crates/core/src/node.rs", receiver: "active_part", class: "core.node.active_part" },
    LockSpec { file: "crates/core/src/node.rs", receiver: "recently_aborted", class: "core.node.recently_aborted" },
    LockSpec { file: "crates/core/src/node.rs", receiver: "decision_queue", class: "core.node.decision_queue" },
    LockSpec { file: "crates/core/src/clog.rs", receiver: "state", class: "core.clog.state" },
    // -- crates/store -------------------------------------------------
    LockSpec { file: "crates/store/src/engine.rs", receiver: "commit_lock", class: "store.commit_lock" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "maintenance_lock", class: "store.maintenance_lock" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "commit_queue", class: "store.commit_queue" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "done", class: "store.commit_done" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "manifest", class: "store.manifest" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "pending_gc", class: "store.pending_gc" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "live_wal_gens", class: "store.live_wal_gens" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "flush_backlog", class: "store.flush_backlog" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "state", class: "store.frontier" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "stripe", class: "store.prepared_stripes" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "stripes", class: "store.prepared_stripes" },
    LockSpec { file: "crates/store/src/engine.rs", receiver: "key_stripe", class: "store.prepared_key_index" },
    LockSpec { file: "crates/store/src/locks.rs", receiver: "locks", class: "store.lock_table_shard" },
    LockSpec { file: "crates/store/src/log.rs", receiver: "write_lock", class: "store.wal_write" },
    LockSpec { file: "crates/store/src/log.rs", receiver: "file", class: "store.wal_file" },
    LockSpec { file: "crates/store/src/cache.rs", receiver: "inner", class: "store.cache" },
    LockSpec { file: "crates/store/src/txn.rs", receiver: "data", class: "store.null_engine_data" },
    LockSpec { file: "crates/store/src/txn.rs", receiver: "prepared", class: "store.null_engine_prepared" },
];

/// Path prefixes of the crates the concurrency analyzer covers. Files
/// outside (notably `crates/sched`, which *implements* the yield
/// primitives, and `tests/`/`benches/`) are out of scope. Only `src/`
/// files count: integration tests under `crates/*/tests/` build ad-hoc
/// mutexes that are not part of the production lock-order story.
pub const ANALYZER_SCOPE_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/store/src/",
    "crates/sim/src/",
    "crates/net/src/",
];

/// Free functions that yield the current fiber (matched when called as a
/// plain or path-qualified function, never as a method).
pub const FREE_YIELDS: &[&str] = &["sleep", "park", "park_timeout", "yield_now", "join", "block_on"];

/// Methods that yield the calling fiber: scheduler primitives
/// (`WaitQueue`, `Channel`, `CorePool`, `IdleBackoff`), the RPC
/// send/recv entry points in `crates/net`, CPU/I-O charges, and log
/// stabilization. Matched as `.name(`.
pub const METHOD_YIELDS: &[&str] = &[
    // treaty-sched primitives
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "charge",
    "idle",
    // CPU / storage charges (pool.charge or runtime::sleep underneath)
    "charge_enclave_op",
    "charge_cpu",
    "charge_crypto",
    "charge_hash",
    "charge_ssd_append",
    "charge_storage_read",
    "charge_cache_hit",
    // RPC entry points (seal/open charge crypto; wait parks)
    "call",
    "tx_burst",
    "send_oneway",
    "enqueue_request",
    "enqueue_request_on",
    // log durability (parks on the trusted-counter service)
    "stabilize",
    "wait_stable",
];

/// The audit marker that documents an L008 exception (mirrors L004's
/// `LINT-DECLASSIFY:`).
pub const CRASH_SAFE_MARKER: &str = "LINT-CRASH-SAFE:";

/// Looks up a lock class by name.
pub fn class_by_name(name: &str) -> Option<&'static LockClass> {
    LOCK_CLASSES.iter().find(|c| c.name == name)
}

/// Resolves a `.lock()` receiver in `file` through a registry. Returns
/// the class, or `None` if the receiver is unregistered (an L010
/// violation in scope).
pub fn resolve<'r>(
    registry: &'r [LockSpec],
    file: &str,
    receiver: &str,
) -> Option<&'r LockSpec> {
    registry
        .iter()
        .find(|s| s.file == file && s.receiver == receiver)
}

/// True if `file` falls under the analyzer's crate scope.
pub fn in_scope(file: &str) -> bool {
    ANALYZER_SCOPE_PREFIXES.iter().any(|p| file.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_classes_all_declared() {
        for spec in LOCK_REGISTRY {
            assert!(
                class_by_name(spec.class).is_some(),
                "spec {}:{} names undeclared class {}",
                spec.file,
                spec.receiver,
                spec.class
            );
        }
    }

    #[test]
    fn registry_has_no_duplicate_keys() {
        for (i, a) in LOCK_REGISTRY.iter().enumerate() {
            for b in &LOCK_REGISTRY[i + 1..] {
                assert!(
                    !(a.file == b.file && a.receiver == b.receiver),
                    "duplicate registry key {}:{}",
                    a.file,
                    a.receiver
                );
            }
        }
    }

    #[test]
    fn class_names_unique_and_sorted_lookup_works() {
        for (i, a) in LOCK_CLASSES.iter().enumerate() {
            for b in &LOCK_CLASSES[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate class {}", a.name);
            }
        }
        assert!(class_by_name("store.commit_lock").unwrap().fiber);
        assert!(class_by_name("store.prepared_stripes").unwrap().ordered);
        assert!(class_by_name("no.such.class").is_none());
    }
}
