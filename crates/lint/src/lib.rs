//! treaty-lint: static enforcement of Treaty's enclave-boundary rules.
//!
//! The `HostBytes` newtype (crates/tee) makes "plaintext into host memory" a
//! compile error, but three classes of boundary bugs survive the type
//! system, so this crate scans the workspace source directly:
//!
//! * **L001 — enclave-only crypto.** Raw AEAD/HMAC primitives
//!   (`aead_open`, `aead_seal`, `hmac_sign`, `hmac_verify`) may only be
//!   named inside the trusted modules (crypto, tee, and the three store
//!   files that run inside the enclave). Everything else must go through
//!   the typed wrappers, otherwise key material leaks into code that the
//!   §III adversary can interpose on.
//! * **L002 — no panics on the 2PC commit/recovery path.** A coordinator
//!   or participant that unwinds mid-commit leaves the protocol state
//!   machine wedged; `unwrap()`, `expect()` and `panic!` are banned in
//!   `core::{node,clog}` and `store::{log,sstable}`. (`unwrap_err`/
//!   `expect_err` are fine — they assert on the *error* arm in tests.)
//! * **L003 — deterministic time and randomness.** Simulated components
//!   must take time from the virtual clock; `std::time::{Instant,
//!   SystemTime}` and `thread_rng` are allowed only in the measurement
//!   module `crates/sim/src/stats.rs`.
//! * **L004 — auditable declassification.** Every
//!   `HostBytes::declassified(...)` call must carry a
//!   `// LINT-DECLASSIFY: <reason>` comment within the three lines above
//!   it, so `git grep LINT-DECLASSIFY` is a complete audit of deliberate
//!   plaintext-to-host flows.
//! * **L005 — no secrets in observability payloads.** Inside the trusted
//!   regions (core, store, tee, crypto), no `format!`-family macro and no
//!   trace-event payload (`span_with`, `instant`, …) may name a secret-ish
//!   identifier (`plaintext`, `user_key`, `key_material`, …): traces and
//!   log strings leave the enclave, so interpolation would be an
//!   unaudited declassification side channel. The raw line is searched,
//!   not the scrubbed one, because interpolations live *inside* string
//!   literals (`"{plaintext}"`).
//! * **L006 — crash points unique and registered.** Every
//!   `crashpoint::hit("...")` call site must name a string literal that
//!   appears in `ALL_POINTS` (crates/sim/src/crashpoint.rs), and the
//!   registry itself must have no duplicate names. A typo'd or
//!   unregistered point would silently never fire, so a fault-matrix cell
//!   that claims to cover it would test nothing.
//!
//! On top of the line rules sits a **function-scope concurrency
//! analyzer** ([`analyzer`], [`registry`]) with four more rules:
//!
//! * **L007 — no guard live across a yield point.** The cooperative
//!   fiber runtime runs one fiber at a time; a `MutexGuard` held across
//!   `sleep`/`park`/`yield_now`/an RPC round trip deadlocks the node if
//!   the next fiber touches the same lock. Fiber-aware locks
//!   (`FiberMutex`) are exempt — being held across yields is their job.
//! * **L008 — no guard live across `crashpoint::hit`.** `CrashUnwind`
//!   unwinds the fiber at the crash site, poisoning any std `Mutex` held
//!   there and silently breaking crash → heal → restart. Audited
//!   exceptions carry `// LINT-CRASH-SAFE: <reason>` (the L004 pattern).
//! * **L009 — no lock-order cycles.** Intra-function "acquire A while
//!   holding B" edges, keyed by [`registry::LOCK_REGISTRY`] classes, are
//!   merged into a global graph; any cycle is reported in full with a
//!   file:line witness per edge.
//! * **L010 — every `.lock()` site resolves through the registry** in
//!   crates/{core,store,sim,net}, so L009's graph can never silently
//!   miss an edge (the L006 pattern).
//!
//! Violations are diffed against a committed `lint-baseline.json` ratchet:
//! new violations fail the build; fixed violations must be removed from
//! the baseline (`--update-baseline`), so the count only goes down.
//! Baseline entries for L007–L010 must carry a `justification` string —
//! the ratchet rejects justification-free debt for the new rules.
//!
//! The crate has no dependencies by design — it is a hand-rolled lexer,
//! not a parser, which is exactly enough for token-level rules and keeps
//! the CI gate buildable with a bare toolchain.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod analyzer;
pub mod registry;

pub use analyzer::{analyze_file, analyze_file_with, lock_graph_violations, FileAnalysis, LockEdge};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id, e.g. `"L002"`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (raw, pre-scrub) for the report.
    pub snippet: String,
    /// Lock class involved (L007–L009), if any.
    pub lock: Option<String>,
    /// Human-readable explanation; empty for the line rules.
    pub detail: String,
}

impl Violation {
    /// Constructor for the line rules (no lock class, no detail).
    fn basic(rule: &'static str, file: &str, line: usize, snippet: String) -> Self {
        Violation {
            rule,
            file: file.to_string(),
            line,
            snippet,
            lock: None,
            detail: String::new(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.snippet
        )?;
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

/// All rule ids, in report order.
pub const RULES: [(&str, &str); 10] = [
    ("L001", "enclave-only crypto primitives"),
    ("L002", "no panics on 2PC commit/recovery path"),
    ("L003", "deterministic time/randomness"),
    ("L004", "auditable HostBytes declassification"),
    ("L005", "no secrets in format/trace payloads"),
    ("L006", "crash points unique and registered"),
    ("L007", "no guard live across a yield point"),
    ("L008", "no guard live across crashpoint::hit"),
    ("L009", "no lock-order cycles"),
    ("L010", "every .lock() resolves through LOCK_REGISTRY"),
];

/// Rules whose baseline entries must carry a `justification` string.
pub const JUSTIFICATION_REQUIRED: [&str; 4] = ["L007", "L008", "L009", "L010"];

// ---------------------------------------------------------------------------
// Source scrubbing
// ---------------------------------------------------------------------------

/// Blanks comments and string/char-literal contents while preserving the
/// line structure, so token matching never fires inside a comment or a
/// string. Handles line comments, nested block comments, escapes, raw
/// strings (`r#"..."#`, any hash depth, `b`/`br` prefixes) and the
/// char-literal/lifetime ambiguity (`'a'` vs `<'a>`).
pub fn scrub(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
        } else if c == '"' {
            let (raw, hashes) = raw_string_prefix(&chars, i);
            out.push('"');
            i += 1;
            if raw {
                while i < chars.len() {
                    if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                        out.push('"');
                        i += 1;
                        for _ in 0..hashes {
                            out.push('#');
                            i += 1;
                        }
                        break;
                    }
                    out.push(blank(chars[i]));
                    i += 1;
                }
            } else {
                while i < chars.len() {
                    if chars[i] == '\\' {
                        out.push(' ');
                        i += 1;
                        if i < chars.len() {
                            out.push(blank(chars[i]));
                            i += 1;
                        }
                    } else if chars[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                }
            }
        } else if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: '\n', '\'', '\u{1F600}', ...
                out.push('\'');
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        // Consume the escape pair as a unit so '\'' does
                        // not terminate on the escaped quote.
                        out.push(' ');
                        i += 1;
                        if i < chars.len() {
                            out.push(blank(chars[i]));
                            i += 1;
                        }
                    } else {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                }
                if i < chars.len() {
                    out.push('\'');
                    i += 1;
                }
            } else if chars.get(i + 2) == Some(&'\'') && i + 1 < chars.len() {
                // Plain char literal: 'x'
                out.push_str("' '");
                i += 3;
            } else {
                // Lifetime or loop label: leave as-is.
                out.push('\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// For a `"` at `quote_idx`, determines whether it opens a raw string and
/// how many `#`s close it, by looking at the immediately preceding
/// `r`/`br` + hash prefix.
fn raw_string_prefix(chars: &[char], quote_idx: usize) -> (bool, usize) {
    let mut j = quote_idx;
    let mut hashes = 0usize;
    while j > 0 && chars[j - 1] == '#' {
        j -= 1;
        hashes += 1;
    }
    if j == 0 {
        return (false, 0);
    }
    let mut k = j - 1;
    if chars[k] != 'r' {
        return (false, 0);
    }
    if k > 0 && chars[k - 1] == 'b' {
        k -= 1;
    }
    // The r/br must not be the tail of a longer identifier (`var"` is not
    // valid Rust anyway, but be safe).
    let standalone = k == 0 || !is_ident_char(chars[k - 1]);
    if standalone {
        (true, hashes)
    } else {
        (false, 0)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

/// Byte offsets of ident-boundary occurrences of `tok` in `line`.
fn ident_occurrences(line: &str, tok: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut start = 0;
    while let Some(pos) = line[start..].find(tok) {
        let idx = start + pos;
        let before_ok = idx == 0
            || !line[..idx]
                .chars()
                .next_back()
                .map(is_ident_char)
                .unwrap_or(false);
        let after = idx + tok.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .map(is_ident_char)
            .unwrap_or(false);
        if before_ok && after_ok {
            found.push(idx);
        }
        start = idx + tok.len();
    }
    found
}

/// True if `line` contains `tok` as an ident followed (after optional
/// whitespace) by `next` — e.g. `unwrap` + `(` or `panic` + `!`.
fn has_ident_then(line: &str, tok: &str, next: char) -> bool {
    ident_occurrences(line, tok).iter().any(|&idx| {
        line[idx + tok.len()..]
            .chars()
            .find(|c| !c.is_whitespace())
            .map(|c| c == next)
            .unwrap_or(false)
    })
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// L001: crypto primitives that must stay inside the trusted modules.
const L001_TOKENS: [&str; 4] = ["aead_open", "aead_seal", "hmac_sign", "hmac_verify"];
/// L001 allowlist: path prefixes that *are* the trusted modules.
const L001_ALLOW_PREFIXES: [&str; 2] = ["crates/crypto/", "crates/tee/"];
/// L001 allowlist: exact enclave-resident store files.
const L001_ALLOW_FILES: [&str; 3] = [
    "crates/store/src/memtable.rs",
    "crates/store/src/log.rs",
    "crates/store/src/sstable.rs",
];

/// L002 scope: the 2PC commit/recovery path.
const L002_SCOPE: [&str; 4] = [
    "crates/core/src/node.rs",
    "crates/core/src/clog.rs",
    "crates/store/src/log.rs",
    "crates/store/src/sstable.rs",
];

/// L003: nondeterminism sources banned outside the allowlist.
const L003_SUBSTRINGS: [&str; 4] = [
    "std::time::Instant",
    "std::time::SystemTime",
    "Instant::now",
    "SystemTime::now",
];
const L003_IDENTS: [&str; 1] = ["thread_rng"];
/// L003 allowlist: the one module allowed to read the wall clock.
const L003_ALLOW_FILES: [&str; 1] = ["crates/sim/src/stats.rs"];

/// L004: files exempt from the marker requirement (the constructor's own
/// definition site).
const L004_EXEMPT_FILES: [&str; 1] = ["crates/tee/src/hostbytes.rs"];
/// The audit marker L004 requires near each declassification.
pub const DECLASSIFY_MARKER: &str = "LINT-DECLASSIFY:";

/// L005 scope: the trusted regions whose observability payloads are
/// checked.
const L005_SCOPE_PREFIXES: [&str; 4] = [
    "crates/core/",
    "crates/store/",
    "crates/tee/",
    "crates/crypto/",
];
/// L005: format-family macros whose strings could interpolate a secret.
const L005_MACROS: [&str; 8] = [
    "format", "println", "eprintln", "print", "eprint", "write", "writeln", "panic",
];
/// L005: trace/metric payload constructors (treaty-sim obs glue).
const L005_TRACE_FNS: [&str; 4] = ["span_with", "instant", "counter_add", "hist_record"];
/// L005: identifiers that name secret material in the trusted regions.
const L005_SECRET_IDENTS: [&str; 7] = [
    "plaintext",
    "plain",
    "decrypted",
    "user_key",
    "key_material",
    "key_bytes",
    "secret",
];

fn in_list(file: &str, list: &[&str]) -> bool {
    list.contains(&file)
}

fn has_prefix(file: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| file.starts_with(p))
}

/// Lints one file's source. `file` is the repo-relative path with forward
/// slashes; it selects which rules apply.
pub fn lint_source(file: &str, source: &str) -> Vec<Violation> {
    let scrubbed = scrub(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let lines: Vec<&str> = scrubbed.lines().collect();
    let mut out = Vec::new();
    let snippet = |n: usize| -> String {
        let s = raw_lines.get(n).copied().unwrap_or("").trim();
        let mut s = s.to_string();
        if s.len() > 120 {
            s.truncate(117);
            s.push_str("...");
        }
        s
    };

    // L001 — enclave-only crypto.
    if !has_prefix(file, &L001_ALLOW_PREFIXES) && !in_list(file, &L001_ALLOW_FILES) {
        for (n, line) in lines.iter().enumerate() {
            for tok in L001_TOKENS {
                for _ in ident_occurrences(line, tok) {
                    out.push(Violation::basic("L001", file, n + 1, snippet(n)));
                }
            }
        }
    }

    // L002 — no panics on the commit/recovery path.
    if in_list(file, &L002_SCOPE) {
        for (n, line) in lines.iter().enumerate() {
            let mut hits = 0;
            if has_ident_then(line, "unwrap", '(') {
                hits += 1;
            }
            if has_ident_then(line, "expect", '(') {
                hits += 1;
            }
            if has_ident_then(line, "panic", '!') {
                hits += 1;
            }
            for _ in 0..hits {
                out.push(Violation::basic("L002", file, n + 1, snippet(n)));
            }
        }
    }

    // L003 — deterministic time/randomness. At most one violation per
    // line: "std::time::Instant::now()" matches two patterns but is one
    // offence.
    if !in_list(file, &L003_ALLOW_FILES) {
        for (n, line) in lines.iter().enumerate() {
            let hit = L003_SUBSTRINGS.iter().any(|pat| line.contains(pat))
                || L003_IDENTS
                    .iter()
                    .any(|tok| !ident_occurrences(line, tok).is_empty());
            if hit {
                out.push(Violation::basic("L003", file, n + 1, snippet(n)));
            }
        }
    }

    // L005 — no secret-ish identifier may ride a format string or trace
    // payload in the trusted regions. The sink is matched on the scrubbed
    // line (macros live outside strings); the identifiers are matched on
    // the raw line, because interpolations live inside string literals.
    if has_prefix(file, &L005_SCOPE_PREFIXES) {
        for (n, line) in lines.iter().enumerate() {
            let sink = L005_MACROS.iter().any(|m| has_ident_then(line, m, '!'))
                || L005_TRACE_FNS.iter().any(|f| has_ident_then(line, f, '('));
            if !sink {
                continue;
            }
            let raw = raw_lines.get(n).copied().unwrap_or("");
            if L005_SECRET_IDENTS
                .iter()
                .any(|t| !ident_occurrences(raw, t).is_empty())
            {
                out.push(Violation::basic("L005", file, n + 1, snippet(n)));
            }
        }
    }

    // L004 — every declassification carries an audit marker within the
    // three raw lines above the call (markers live in comments, so they
    // are searched on the raw source).
    if !in_list(file, &L004_EXEMPT_FILES) {
        for (n, line) in lines.iter().enumerate() {
            if has_ident_then(line, "declassified", '(') {
                let lo = n.saturating_sub(3);
                let marked = raw_lines[lo..=n.min(raw_lines.len().saturating_sub(1))]
                    .iter()
                    .any(|l| l.contains(DECLASSIFY_MARKER));
                if !marked {
                    out.push(Violation::basic("L004", file, n + 1, snippet(n)));
                }
            }
        }
    }

    out
}

// ---------------------------------------------------------------------------
// L006 — crash-point registry (cross-file)
// ---------------------------------------------------------------------------

/// The file that defines the crash-point registry. Its own internals and
/// unit tests are exempt from the call-site check.
pub const CRASHPOINT_REGISTRY: &str = "crates/sim/src/crashpoint.rs";

/// The call-site token L006 looks for (qualified, so the registry's own
/// bare `hit(...)` helpers don't count).
const L006_CALL: &str = "crashpoint::hit(";

/// Extracts the `ALL_POINTS` names, with their 1-based line numbers, from
/// the registry source. Empty if the registry marker is missing.
pub fn crash_point_names(source: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_registry = false;
    for (n, raw) in source.lines().enumerate() {
        if !in_registry {
            if raw.contains("pub const ALL_POINTS") {
                in_registry = true;
            }
            continue;
        }
        if raw.trim_start().starts_with("];") {
            break;
        }
        let mut rest = raw;
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            match tail.find('"') {
                Some(close) => {
                    out.push((tail[..close].to_string(), n + 1));
                    rest = &tail[close + 1..];
                }
                None => break,
            }
        }
    }
    out
}

/// L006 — the registry has no duplicate names, and every
/// `crashpoint::hit("...")` call site outside the registry names a
/// registered point with a string literal on the same line. Cross-file by
/// nature: takes the whole workspace as `(repo-relative path, source)`
/// pairs.
pub fn lint_crash_points(sources: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let registry: Vec<(String, usize)> = sources
        .iter()
        .find(|(f, _)| f == CRASHPOINT_REGISTRY)
        .map(|(_, s)| crash_point_names(s))
        .unwrap_or_default();

    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (name, line) in &registry {
        if seen.insert(name.as_str(), *line).is_some() {
            out.push(Violation::basic(
                "L006",
                CRASHPOINT_REGISTRY,
                *line,
                format!("duplicate crash point {name:?} in ALL_POINTS"),
            ));
        }
    }
    let names: std::collections::BTreeSet<&str> =
        registry.iter().map(|(n, _)| n.as_str()).collect();

    for (file, source) in sources {
        if file == CRASHPOINT_REGISTRY {
            continue;
        }
        let scrubbed = scrub(source);
        for (n, (line, raw)) in scrubbed.lines().zip(source.lines()).enumerate() {
            // The sink is detected on the scrubbed line (never inside a
            // comment or string); the argument is read from the raw line,
            // where the literal's contents survive.
            if !line.contains(L006_CALL) {
                continue;
            }
            let mut rest = raw;
            while let Some(pos) = rest.find(L006_CALL) {
                let arg = rest[pos + L006_CALL.len()..].trim_start();
                let registered = arg
                    .strip_prefix('"')
                    .and_then(|a| a.find('"').map(|close| &a[..close]))
                    .is_some_and(|name| names.contains(name));
                if !registered {
                    out.push(Violation::basic("L006", file, n + 1, {
                        let mut s = raw.trim().to_string();
                        if s.len() > 120 {
                            s.truncate(117);
                            s.push_str("...");
                        }
                        s
                    }));
                }
                rest = &rest[pos + L006_CALL.len()..];
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L007–L010 — function-scope concurrency analysis (cross-file for L009)
// ---------------------------------------------------------------------------

/// Runs the concurrency analyzer (L007/L008/L010 per file, L009 over the
/// merged lock-order graph) with an explicit registry and rule set.
/// Only files inside the analyzer scope passed in `files` are examined;
/// callers filter scope (production: [`registry::in_scope`]).
pub fn lint_concurrency_with(
    files: &[(String, String)],
    specs: &[registry::LockSpec],
    rules: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for (file, source) in files {
        let fa = analyzer::analyze_file_with(file, source, specs, rules);
        out.extend(fa.violations);
        edges.extend(fa.edges);
    }
    if rules.contains(&"L009") {
        out.extend(analyzer::lock_graph_violations(&edges));
    }
    out
}

/// Production entry point: all four concurrency rules over the files in
/// [`registry::ANALYZER_SCOPE_PREFIXES`], using [`registry::LOCK_REGISTRY`].
pub fn lint_concurrency(files: &[(String, String)]) -> Vec<Violation> {
    let scoped: Vec<(String, String)> = files
        .iter()
        .filter(|(f, _)| registry::in_scope(f))
        .cloned()
        .collect();
    lint_concurrency_with(&scoped, registry::LOCK_REGISTRY, &["L007", "L008", "L009", "L010"])
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Collects the `.rs` files the lint covers: everything under `crates/`
/// and `tests/`, minus build output and this crate itself (its test
/// fixtures deliberately contain violations).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "lint" {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace at `root`. Returns violations plus
/// the number of files scanned.
pub fn run(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let files = collect_files(root)?;
    let scanned = files.len();
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    let mut all = Vec::new();
    for (rel, source) in &sources {
        all.extend(lint_source(rel, source));
    }
    all.extend(lint_crash_points(&sources));
    all.extend(lint_concurrency(&sources));
    Ok((all, scanned))
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

/// Violation counts per rule per file, as observed on the working tree.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// One committed baseline entry: an accepted violation count, plus — for
/// L007–L010 — the mandatory justification for carrying the debt.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Accepted violation count.
    pub count: usize,
    /// Why this debt is acceptable (required for L007–L010).
    pub justification: Option<String>,
}

/// The committed ratchet state: rule → file → entry.
pub type Baseline = BTreeMap<String, BTreeMap<String, BaselineEntry>>;

/// Aggregates violations into ratchet counts.
pub fn to_counts(violations: &[Violation]) -> Counts {
    let mut b: Counts = BTreeMap::new();
    for v in violations {
        *b.entry(v.rule.to_string())
            .or_default()
            .entry(v.file.clone())
            .or_insert(0) += 1;
    }
    b
}

/// Builds a baseline from current counts, carrying forward justifications
/// from `old` where the (rule, file) key persists.
pub fn counts_to_baseline(counts: &Counts, old: &Baseline) -> Baseline {
    let mut out: Baseline = BTreeMap::new();
    for (rule, files) in counts {
        for (file, &count) in files {
            let justification = old
                .get(rule)
                .and_then(|m| m.get(file))
                .and_then(|e| e.justification.clone());
            out.entry(rule.clone())
                .or_default()
                .insert(file.clone(), BaselineEntry { count, justification });
        }
    }
    out
}

/// One ratchet discrepancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetEntry {
    /// Rule id.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Count in the working tree.
    pub current: usize,
    /// Count recorded in the baseline.
    pub baseline: usize,
}

/// Result of diffing current counts against the committed baseline.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    /// current > baseline: new violations; the build fails.
    pub regressions: Vec<RatchetEntry>,
    /// current < baseline: the baseline is stale and must be shrunk.
    pub stale: Vec<RatchetEntry>,
    /// (rule, file) baseline entries for L007–L010 that lack the
    /// mandatory justification string; the build fails.
    pub unjustified: Vec<(String, String)>,
}

impl Ratchet {
    /// True when the working tree matches the baseline exactly and all
    /// new-rule debt is justified.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.stale.is_empty() && self.unjustified.is_empty()
    }
}

/// Diffs `current` against `baseline` over the union of (rule, file) keys,
/// and flags L007–L010 baseline entries that carry no justification.
pub fn ratchet(current: &Counts, baseline: &Baseline) -> Ratchet {
    let mut keys: Vec<(String, String)> = Vec::new();
    for (rule, files) in current {
        for file in files.keys() {
            let k = (rule.clone(), file.clone());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    for (rule, files) in baseline {
        for file in files.keys() {
            let k = (rule.clone(), file.clone());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    let mut out = Ratchet::default();
    for (rule, file) in keys {
        let cur = current
            .get(&rule)
            .and_then(|m| m.get(&file))
            .copied()
            .unwrap_or(0);
        let base_entry = baseline.get(&rule).and_then(|m| m.get(&file));
        let base = base_entry.map(|e| e.count).unwrap_or(0);
        let entry = RatchetEntry {
            rule: rule.clone(),
            file: file.clone(),
            current: cur,
            baseline: base,
        };
        if cur > base {
            out.regressions.push(entry);
        } else if cur < base {
            out.stale.push(entry);
        }
        if JUSTIFICATION_REQUIRED.contains(&rule.as_str()) {
            if let Some(e) = base_entry {
                if e.justification.as_deref().map(str::trim).unwrap_or("").is_empty() {
                    out.unjustified.push((rule.clone(), file.clone()));
                }
            }
        }
    }
    out
}

/// Escapes a string for embedding in the baseline JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the baseline as stable, pretty-printed JSON (sorted keys,
/// trailing newline), so updates produce minimal diffs. Entries without a
/// justification render as a bare count; justified entries render as
/// `{"count": N, "justification": "..."}`.
pub fn render_baseline(b: &Baseline) -> String {
    let mut s = String::from("{\n");
    let mut first_rule = true;
    for (rule, files) in b {
        if files.is_empty() {
            continue;
        }
        if !first_rule {
            s.push_str(",\n");
        }
        first_rule = false;
        s.push_str(&format!("  \"{rule}\": {{\n"));
        let mut first_file = true;
        for (file, entry) in files {
            if !first_file {
                s.push_str(",\n");
            }
            first_file = false;
            match &entry.justification {
                Some(j) => s.push_str(&format!(
                    "    \"{file}\": {{\"count\": {}, \"justification\": \"{}\"}}",
                    entry.count,
                    json_escape(j)
                )),
                None => s.push_str(&format!("    \"{file}\": {}", entry.count)),
            }
        }
        s.push_str("\n  }");
    }
    s.push_str("\n}\n");
    s
}

/// Renders violations plus ratchet status as machine-readable JSON for
/// the CLI's `--format json` (consumed by the CI annotation artifact).
pub fn render_diagnostics_json(violations: &[Violation], scanned: usize, r: &Ratchet) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scanned\": {scanned},\n"));
    s.push_str(&format!("  \"clean\": {},\n", r.is_clean()));
    s.push_str("  \"diagnostics\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", v.rule));
        s.push_str(&format!("\"file\": \"{}\", ", json_escape(&v.file)));
        s.push_str(&format!("\"line\": {}, ", v.line));
        match &v.lock {
            Some(l) => s.push_str(&format!("\"lock\": \"{}\", ", json_escape(l))),
            None => s.push_str("\"lock\": null, "),
        }
        s.push_str(&format!("\"detail\": \"{}\"}}", json_escape(&v.detail)));
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    let entries = |list: &[RatchetEntry]| -> String {
        let mut out = String::from("[");
        for (i, e) in list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"current\": {}, \"baseline\": {}}}",
                e.rule,
                json_escape(&e.file),
                e.current,
                e.baseline
            ));
        }
        if !list.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        out
    };
    s.push_str(&format!("  \"regressions\": {},\n", entries(&r.regressions)));
    s.push_str(&format!("  \"stale\": {},\n", entries(&r.stale)));
    s.push_str("  \"unjustified\": [");
    for (i, (rule, file)) in r.unjustified.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\"}}",
            rule,
            json_escape(file)
        ));
    }
    if !r.unjustified.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Parses the baseline JSON: an object of objects whose values are either
/// a bare count (`3`) or an entry object
/// (`{"count": 3, "justification": "..."}`). Hand-rolled so the crate
/// stays dependency-free; rejects anything outside that shape.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let mut out: Baseline = BTreeMap::new();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let rule = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            p.expect(b'{')?;
            let mut files = BTreeMap::new();
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.pos += 1;
            } else {
                loop {
                    p.skip_ws();
                    let file = p.string()?;
                    p.skip_ws();
                    p.expect(b':')?;
                    p.skip_ws();
                    let entry = if p.peek() == Some(b'{') {
                        p.entry_object()?
                    } else {
                        BaselineEntry {
                            count: p.number()?,
                            justification: None,
                        }
                    };
                    files.insert(file, entry);
                    p.skip_ws();
                    match p.next() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            out.insert(rule, files);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing garbage after baseline object".to_string());
    }
    Ok(out)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .peek()
            .map(|b| b == b' ' || b == b'\n' || b == b'\r' || b == b'\t')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }
    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.next() {
                Some(b'"') => break,
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) => out.push(b),
                None => return Err("unterminated string".to_string()),
            }
        }
        String::from_utf8(out).map_err(|e| e.to_string())
    }
    /// Parses `{"count": N, "justification": "..."}` (either key
    /// optional order; `count` mandatory).
    fn entry_object(&mut self) -> Result<BaselineEntry, String> {
        self.expect(b'{')?;
        let mut count: Option<usize> = None;
        let mut justification: Option<String> = None;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                match key.as_str() {
                    "count" => count = Some(self.number()?),
                    "justification" => justification = Some(self.string()?),
                    other => return Err(format!("unknown baseline entry key {other:?}")),
                }
                self.skip_ws();
                match self.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Ok(BaselineEntry {
            count: count.ok_or("baseline entry object missing \"count\"")?,
            justification,
        })
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().map(|b| b.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("expected a number".to_string());
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"aead_open\"; // aead_open here\nlet y = 1; /* unwrap() */\n";
        let s = scrub(src);
        assert!(!s.contains("aead_open"));
        assert!(!s.contains("unwrap"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn scrub_handles_nested_block_comments_and_raw_strings() {
        let src =
            "/* a /* nested unwrap() */ still comment */ code();\nlet r = r#\"panic!(\"x\")\"#;\n";
        let s = scrub(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("code()"));
    }

    #[test]
    fn scrub_distinguishes_char_literal_from_lifetime() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\nlet b = '\"'; let s = \"unwrap()\";\n";
        let s = scrub(src);
        assert!(s.contains("<'a>"), "lifetime must survive: {s}");
        assert!(
            !s.contains("unwrap"),
            "string after char literal must be scrubbed: {s}"
        );
    }

    #[test]
    fn l001_flags_crypto_outside_trusted_modules() {
        let v = lint_source(
            "crates/core/src/node.rs",
            "let x = aead_open(&k, &n, b\"\", ct);\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L001");
        // Same token inside the crypto crate is fine.
        assert!(
            lint_source("crates/crypto/src/lib.rs", "aead_open(&k, &n, aad, ct);\n").is_empty()
        );
        // And inside the enclave-resident store files.
        assert!(lint_source(
            "crates/store/src/memtable.rs",
            "aead_seal(&k, &n, aad, plain);\n"
        )
        .is_empty());
    }

    #[test]
    fn l002_catches_deliberate_unwrap_in_node() {
        // The acceptance check from the issue: a deliberate unwrap() in
        // core::node must be caught.
        let v = lint_source(
            "crates/core/src/node.rs",
            "fn commit() { let d = decision.unwrap(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L002");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l002_catches_expect_and_panic_but_not_err_variants() {
        let src = "a.expect(\"boom\");\npanic!(\"no\");\nb.unwrap_err();\nc.expect_err(\"ok\");\nd.unwrap ();\n";
        let v = lint_source("crates/core/src/clog.rs", src);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 2, 5], "violations: {v:?}");
        // Outside the 2PC scope the same code is allowed.
        assert!(lint_source("crates/workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l003_flags_wall_clock_outside_stats() {
        let src = "let t = std::time::Instant::now();\nlet r = rand::thread_rng();\n";
        let v = lint_source("crates/sim/src/runtime.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "L003"));
        assert!(lint_source("crates/sim/src/stats.rs", src).is_empty());
    }

    #[test]
    fn l004_requires_audit_marker_within_three_lines() {
        let bad = "let h = HostBytes::declassified(v, \"reason\");\n";
        let v = lint_source("crates/net/src/fabric.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L004");

        let good = "// LINT-DECLASSIFY: test fixture\n//\n//\nlet h = HostBytes::declassified(v, \"reason\");\n";
        assert!(lint_source("crates/net/src/fabric.rs", good).is_empty());

        let too_far = "// LINT-DECLASSIFY: too far away\n//\n//\n//\nlet h = HostBytes::declassified(v, \"r\");\n";
        assert_eq!(lint_source("crates/net/src/fabric.rs", too_far).len(), 1);

        // The constructor's definition site is exempt.
        assert!(lint_source("crates/tee/src/hostbytes.rs", bad).is_empty());
    }

    #[test]
    fn l005_flags_secret_interpolation_in_trusted_regions() {
        // Canary: a format string interpolating secret material inside a
        // trusted region is a declassification side channel.
        let bad = "let msg = format!(\"v={plaintext:?}\");\n";
        let v = lint_source("crates/store/src/log.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L005");

        // Argument-position interpolation is caught too.
        let arg = "println!(\"k = {}\", user_key);\n";
        assert_eq!(lint_source("crates/core/src/node.rs", arg).len(), 1);

        // Trace payload constructors are sinks as well.
        let tr = "treaty_sim::obs::span_with(\"g\", &[(\"k\", user_key)]);\n";
        assert_eq!(lint_source("crates/core/src/node.rs", tr).len(), 1);

        // Benign interpolation in a trusted region is fine…
        let good = "let msg = format!(\"gen {gen} at {off}\");\n";
        assert!(lint_source("crates/store/src/log.rs", good).is_empty());
        // …naming a secret without a sink is fine…
        let no_sink = "let n = plaintext.len();\n";
        assert!(lint_source("crates/store/src/log.rs", no_sink).is_empty());
        // …and untrusted regions are out of scope.
        assert!(lint_source("crates/bench/src/lib.rs", bad).is_empty());
        // Ident boundaries: `explain` must not match `plain`.
        let boundary = "let msg = format!(\"see {explain}\");\n";
        assert!(lint_source("crates/store/src/log.rs", boundary).is_empty());
    }

    #[test]
    fn l006_crash_points_unique_and_registered() {
        let registry = concat!(
            "pub const ALL_POINTS: &[&str] = &[\n",
            "    \"coord.a\",\n",
            "    \"part.b\",\n",
            "];\n",
        );
        let reg = |src: &str| (CRASHPOINT_REGISTRY.to_string(), src.to_string());
        let site = |src: &str| ("crates/core/src/node.rs".to_string(), src.to_string());

        // Registered literal call sites are clean.
        let ok = vec![
            reg(registry),
            site("treaty_sim::crashpoint::hit(\"coord.a\");\n"),
        ];
        assert!(lint_crash_points(&ok).is_empty());

        // A typo'd point name is a violation.
        let typo = vec![
            reg(registry),
            site("treaty_sim::crashpoint::hit(\"coord.typo\");\n"),
        ];
        let v = lint_crash_points(&typo);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L006");
        assert_eq!(v[0].file, "crates/core/src/node.rs");

        // A non-literal argument can't be checked, so it is a violation.
        let dynamic = vec![
            reg(registry),
            site("treaty_sim::crashpoint::hit(point_name);\n"),
        ];
        assert_eq!(lint_crash_points(&dynamic).len(), 1);

        // A duplicate registry entry is a violation on its own.
        let dup_registry = concat!(
            "pub const ALL_POINTS: &[&str] = &[\n",
            "    \"coord.a\",\n",
            "    \"coord.a\",\n",
            "];\n",
        );
        let v = lint_crash_points(&[reg(dup_registry)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, CRASHPOINT_REGISTRY);
        assert_eq!(v[0].line, 3);

        // Mentions inside comments or strings are not call sites.
        let commented = vec![
            reg(registry),
            site("// treaty_sim::crashpoint::hit(\"coord.typo\")\nlet s = \"crashpoint::hit(\\\"nope\\\")\";\n"),
        ];
        assert!(lint_crash_points(&commented).is_empty());
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let violations = vec![
            Violation::basic("L002", "crates/store/src/log.rs", 1, "x".into()),
            Violation::basic("L002", "crates/store/src/log.rs", 2, "y".into()),
        ];
        let counts = to_counts(&violations);
        let baseline = counts_to_baseline(&counts, &Baseline::new());
        let text = render_baseline(&baseline);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed, baseline);

        // Identical counts: clean.
        assert!(ratchet(&counts, &parsed).is_clean());

        // One more violation: a regression.
        let mut more = violations.clone();
        more.push(Violation::basic("L002", "crates/store/src/log.rs", 3, "z".into()));
        let r = ratchet(&to_counts(&more), &parsed);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].current, 3);
        assert_eq!(r.regressions[0].baseline, 2);

        // One fewer: stale baseline (the ratchet must be tightened).
        let r = ratchet(&to_counts(&violations[..1].to_vec()), &parsed);
        assert_eq!(r.stale.len(), 1);
        assert!(r.regressions.is_empty());
    }

    #[test]
    fn baseline_justifications_roundtrip_and_ratchet_rejects_missing() {
        // A justified L007 entry survives render → parse and is clean.
        let text = concat!(
            "{\n",
            "  \"L007\": {\n",
            "    \"crates/core/src/node.rs\": {\"count\": 1, ",
            "\"justification\": \"stats guard audited: drained before park\"}\n",
            "  }\n",
            "}\n",
        );
        let parsed = parse_baseline(text).unwrap();
        assert_eq!(
            parsed["L007"]["crates/core/src/node.rs"].count, 1
        );
        assert_eq!(render_baseline(&parsed), text);

        let mut counts = Counts::new();
        counts
            .entry("L007".into())
            .or_default()
            .insert("crates/core/src/node.rs".into(), 1);
        assert!(ratchet(&counts, &parsed).is_clean());

        // The same entry as a bare count is rejected: L007–L010 debt
        // must carry a justification.
        let bare = "{\n  \"L007\": {\n    \"crates/core/src/node.rs\": 1\n  }\n}\n";
        let parsed = parse_baseline(bare).unwrap();
        let r = ratchet(&counts, &parsed);
        assert!(!r.is_clean());
        assert_eq!(
            r.unjustified,
            vec![("L007".to_string(), "crates/core/src/node.rs".to_string())]
        );

        // Old rules never require a justification.
        let old = "{\n  \"L002\": {\n    \"crates/store/src/log.rs\": 2\n  }\n}\n";
        let parsed = parse_baseline(old).unwrap();
        let mut counts = Counts::new();
        counts
            .entry("L002".into())
            .or_default()
            .insert("crates/store/src/log.rs".into(), 2);
        assert!(ratchet(&counts, &parsed).is_clean());

        // counts_to_baseline carries justifications forward.
        let mut old_b = Baseline::new();
        old_b.entry("L008".into()).or_default().insert(
            "crates/store/src/engine.rs".into(),
            BaselineEntry {
                count: 3,
                justification: Some("audited".into()),
            },
        );
        let mut counts = Counts::new();
        counts
            .entry("L008".into())
            .or_default()
            .insert("crates/store/src/engine.rs".into(), 2);
        let b = counts_to_baseline(&counts, &old_b);
        let e = &b["L008"]["crates/store/src/engine.rs"];
        assert_eq!(e.count, 2);
        assert_eq!(e.justification.as_deref(), Some("audited"));
    }

    #[test]
    fn diagnostics_json_carries_rule_file_line_lock_detail() {
        let v = vec![Violation {
            rule: "L007",
            file: "crates/core/src/node.rs".into(),
            line: 42,
            snippet: "runtime::sleep(5);".into(),
            lock: Some("core.node.stats".into()),
            detail: "guard `s` crosses \"sleep\"".into(),
        }];
        let mut r = Ratchet::default();
        r.unjustified
            .push(("L008".to_string(), "crates/store/src/engine.rs".to_string()));
        let out = render_diagnostics_json(&v, 37, &r);
        assert!(out.contains("\"scanned\": 37"), "{out}");
        assert!(out.contains("\"clean\": false"), "{out}");
        assert!(out.contains("\"rule\": \"L007\""), "{out}");
        assert!(out.contains("\"file\": \"crates/core/src/node.rs\""), "{out}");
        assert!(out.contains("\"line\": 42"), "{out}");
        assert!(out.contains("\"lock\": \"core.node.stats\""), "{out}");
        assert!(out.contains("crosses \\\"sleep\\\""), "{out}");
        assert!(out.contains("\"unjustified\""), "{out}");

        // No lock class renders as JSON null; an empty report is clean.
        let v = vec![Violation::basic("L002", "a.rs", 1, "x".into())];
        assert!(render_diagnostics_json(&v, 1, &Ratchet::default()).contains("\"lock\": null"));
        assert!(render_diagnostics_json(&[], 0, &Ratchet::default()).contains("\"clean\": true"));
    }

    #[test]
    fn empty_baseline_parses() {
        assert!(parse_baseline("{}\n").unwrap().is_empty());
        assert!(parse_baseline("{ }").unwrap().is_empty());
    }

    #[test]
    fn workspace_matches_committed_baseline() {
        // The CI gate, as a test: lint the real workspace and diff against
        // the committed ratchet. Fails on new violations AND on a stale
        // baseline, so the recorded counts can only shrink.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("crates/lint lives two levels below the workspace root")
            .to_path_buf();
        let (violations, scanned) = run(&root).expect("workspace scan");
        assert!(scanned > 0, "no files scanned — wrong root?");
        let text = std::fs::read_to_string(root.join("lint-baseline.json"))
            .expect("committed lint-baseline.json");
        let baseline = parse_baseline(&text).expect("baseline parses");
        let r = ratchet(&to_counts(&violations), &baseline);
        assert!(
            r.is_clean(),
            "lint ratchet violated.\nregressions (fix them): {:#?}\nstale (run treaty-lint --update-baseline): {:#?}\nunjustified L007-L010 baseline entries (add a justification string): {:#?}",
            r.regressions,
            r.stale,
            r.unjustified
        );
    }
}
