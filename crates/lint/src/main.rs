//! CLI driver for treaty-lint.
//!
//! ```text
//! treaty-lint [--root PATH] [--baseline PATH] [--update-baseline]
//! ```
//!
//! Scans the workspace, prints a per-rule summary, and diffs the counts
//! against the committed `lint-baseline.json` ratchet. Exit status:
//!
//! * `0` — counts match the baseline exactly,
//! * `1` — new violations (fix the code) or a stale baseline (re-run with
//!   `--update-baseline` to tighten it),
//! * `2` — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use treaty_lint::{parse_baseline, ratchet, render_baseline, run, to_counts, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--update-baseline" => update = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    let (violations, scanned) = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("treaty-lint: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let current = to_counts(&violations);

    println!(
        "treaty-lint: scanned {scanned} files under {}",
        root.display()
    );
    for (rule, desc) in RULES {
        let total: usize = current.get(rule).map(|m| m.values().sum()).unwrap_or(0);
        println!("  {rule} ({desc}): {total} violation(s)");
    }

    if update {
        if let Err(e) = std::fs::write(&baseline_path, render_baseline(&current)) {
            eprintln!(
                "treaty-lint: writing {} failed: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!("baseline written to {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "treaty-lint: {} does not parse: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "treaty-lint: cannot read {} ({e}); run with --update-baseline to create it",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let diff = ratchet(&current, &baseline);
    if diff.is_clean() {
        println!("OK: no new violations; baseline is tight.");
        return ExitCode::SUCCESS;
    }
    if !diff.regressions.is_empty() {
        eprintln!("\nNEW violations (fix these — the ratchet only goes down):");
        for e in &diff.regressions {
            eprintln!(
                "  {} {}: {} now vs {} in baseline",
                e.rule, e.file, e.current, e.baseline
            );
            for v in violations
                .iter()
                .filter(|v| v.rule == e.rule && v.file == e.file)
            {
                eprintln!("    {}:{}: {}", v.file, v.line, v.snippet);
            }
        }
    }
    if !diff.stale.is_empty() {
        eprintln!("\nSTALE baseline entries (violations were fixed — tighten the ratchet");
        eprintln!("with `cargo run -p treaty-lint -- --update-baseline`):");
        for e in &diff.stale {
            eprintln!(
                "  {} {}: {} now vs {} in baseline",
                e.rule, e.file, e.current, e.baseline
            );
        }
    }
    ExitCode::from(1)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("treaty-lint: {err}");
    }
    eprintln!("usage: treaty-lint [--root PATH] [--baseline PATH] [--update-baseline]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
