//! CLI driver for treaty-lint.
//!
//! ```text
//! treaty-lint [--root PATH] [--baseline PATH] [--update-baseline]
//!             [--format text|json]
//! ```
//!
//! Scans the workspace, prints a per-rule summary, and diffs the counts
//! against the committed `lint-baseline.json` ratchet. With
//! `--format json` the report is a single machine-readable object
//! (`{scanned, clean, diagnostics: [{rule, file, line, lock, detail}],
//! regressions, stale, unjustified}`) for CI annotation; the text output
//! is unchanged by default. Exit status:
//!
//! * `0` — counts match the baseline exactly,
//! * `1` — new violations (fix the code), a stale baseline (re-run with
//!   `--update-baseline` to tighten it), or an L007–L010 baseline entry
//!   with no justification string,
//! * `2` — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use treaty_lint::{
    counts_to_baseline, parse_baseline, ratchet, render_baseline, render_diagnostics_json, run,
    to_counts, Baseline, JUSTIFICATION_REQUIRED, RULES,
};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--update-baseline" => update = true,
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    let (violations, scanned) = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("treaty-lint: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let current = to_counts(&violations);

    if !json {
        println!(
            "treaty-lint: scanned {scanned} files under {}",
            root.display()
        );
        for (rule, desc) in RULES {
            let total: usize = current.get(rule).map(|m| m.values().sum()).unwrap_or(0);
            println!("  {rule} ({desc}): {total} violation(s)");
        }
    }

    if update {
        // Carry existing justifications forward where the key persists.
        let old: Baseline = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| parse_baseline(&text).ok())
            .unwrap_or_default();
        let next = counts_to_baseline(&current, &old);
        if let Err(e) = std::fs::write(&baseline_path, render_baseline(&next)) {
            eprintln!(
                "treaty-lint: writing {} failed: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!("baseline written to {}", baseline_path.display());
        for (rule, files) in &next {
            if !JUSTIFICATION_REQUIRED.contains(&rule.as_str()) {
                continue;
            }
            for (file, entry) in files {
                if entry.justification.is_none() {
                    println!(
                        "  NOTE: {rule} {file} needs a \"justification\" string \
                         (edit {} by hand) or the ratchet will fail",
                        baseline_path.display()
                    );
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "treaty-lint: {} does not parse: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "treaty-lint: cannot read {} ({e}); run with --update-baseline to create it",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let diff = ratchet(&current, &baseline);
    if json {
        print!("{}", render_diagnostics_json(&violations, scanned, &diff));
        return if diff.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if diff.is_clean() {
        println!("OK: no new violations; baseline is tight.");
        return ExitCode::SUCCESS;
    }
    if !diff.regressions.is_empty() {
        eprintln!("\nNEW violations (fix these — the ratchet only goes down):");
        for e in &diff.regressions {
            eprintln!(
                "  {} {}: {} now vs {} in baseline",
                e.rule, e.file, e.current, e.baseline
            );
            for v in violations
                .iter()
                .filter(|v| v.rule == e.rule && v.file == e.file)
            {
                eprintln!("    {v}");
            }
        }
    }
    if !diff.stale.is_empty() {
        eprintln!("\nSTALE baseline entries (violations were fixed — tighten the ratchet");
        eprintln!("with `cargo run -p treaty-lint -- --update-baseline`):");
        for e in &diff.stale {
            eprintln!(
                "  {} {}: {} now vs {} in baseline",
                e.rule, e.file, e.current, e.baseline
            );
        }
    }
    if !diff.unjustified.is_empty() {
        eprintln!("\nUNJUSTIFIED baseline debt (L007–L010 entries must carry a");
        eprintln!("\"justification\" string in lint-baseline.json):");
        for (rule, file) in &diff.unjustified {
            eprintln!("  {rule} {file}");
        }
    }
    ExitCode::from(1)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("treaty-lint: {err}");
    }
    eprintln!(
        "usage: treaty-lint [--root PATH] [--baseline PATH] [--update-baseline] [--format text|json]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
