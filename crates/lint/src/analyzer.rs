//! Function-scope concurrency analysis: guard liveness, yield points,
//! crash points, and lock-order edges (rules L007–L010).
//!
//! This is a hand-rolled tokenizer + brace/scope tracker, not a parser.
//! It recognizes `let g = x.lock()…` guard bindings (including `if let`
//! / `match` scrutinees and temporary-guard expressions), approximates
//! each guard's live range inside its function body, and checks the
//! registered yield-point vocabulary ([`crate::registry`]) against the
//! set of live guards at every yield and crash point.
//!
//! Liveness model (documented over/under-approximations in DESIGN.md
//! §13):
//!
//! * `let g = x.lock();` — live to the end of the enclosing block, or
//!   to an explicit `drop(g)`.
//! * `x.lock().method(…)` in a plain statement — a temporary, live to
//!   the end of the statement (`;`, or `,` at match-arm level).
//! * `if let P = x.lock().take() { … }` / `match x.lock().get(k) { … }`
//!   / `for v in x.lock().iter() { … }` — the scrutinee temporary lives
//!   through the whole construct body (Rust scrutinee lifetime rules),
//!   carrying across `else` branches.
//! * `if *x.lock() { … }` — a plain-condition temporary dies at the
//!   opening `{`.
//! * `move |…| …` closures are deferred execution on another fiber:
//!   they form a fresh guard region — outer guards are not considered
//!   live inside them, and locks taken inside do not edge to outer
//!   guards — but their bodies are still analyzed.

use crate::registry::{
    self, LockSpec, CRASH_SAFE_MARKER, FREE_YIELDS, LOCK_REGISTRY, METHOD_YIELDS,
};
use crate::{scrub, Violation};

/// One "acquire `to` while holding `from`" observation — an edge in the
/// global L009 lock-order graph, with its witness location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Class already held.
    pub from: String,
    /// Class being acquired.
    pub to: String,
    /// Witness file.
    pub file: String,
    /// Witness line (1-based) of the inner acquisition.
    pub line: usize,
}

/// Per-file analysis result.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// L007/L008/L010 violations found in this file.
    pub violations: Vec<Violation>,
    /// Lock-order edges contributed to the global graph.
    pub edges: Vec<LockEdge>,
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    text: &'a str,
    /// 1-based source line.
    line: usize,
}

/// Multi-character operators lexed as single tokens, so `=>`/`==` are
/// never mistaken for a `let` initializer's `=`. Longest first.
const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "..",
];

fn tokenize(scrubbed: &str) -> Vec<Tok<'_>> {
    let bytes = scrubbed.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok { text: &scrubbed[start..i], line });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok { text: &scrubbed[start..i], line });
            continue;
        }
        if let Some(op) = COMPOUND_OPS
            .iter()
            .find(|op| scrubbed[i..].starts_with(*op))
        {
            toks.push(Tok { text: &scrubbed[i..i + op.len()], line });
            i += op.len();
            continue;
        }
        toks.push(Tok { text: &scrubbed[i..i + c.len_utf8()], line });
        i += c.len_utf8();
    }
    toks
}

// ---------------------------------------------------------------------------
// Guard and scope model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Guard {
    /// Lock class name.
    class: String,
    /// Fiber-aware lock (L007 exempt).
    fiber: bool,
    /// Named binding, if `let`-bound.
    var: Option<String>,
    /// Acquisition line.
    line: usize,
    /// Guard region: 0 for the function body, bumped inside `move`
    /// closures (deferred execution — a different fiber's stack).
    region: usize,
}

#[derive(Debug, Default)]
struct Scope {
    /// `let`-bound guards: die at the scope's `}` or at `drop(var)`.
    guards: Vec<Guard>,
    /// Scrutinee temporaries attached at the construct's `{`; carried
    /// across `else` on close.
    construct_guards: Vec<Guard>,
    /// Statement temporaries: die at `;` / arm `,`.
    stmt_temps: Vec<Guard>,
    /// True if this scope opened a `move` closure body (pops a region).
    closes_region: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConstructKind {
    /// Plain `if`/`while` condition: temporaries die at the `{`.
    Cond,
    /// `if let` / `while let` / `match` / `for`: scrutinee temporaries
    /// live through the body.
    Scrutinee,
}

#[derive(Debug)]
struct PendingConstruct {
    kind: ConstructKind,
    temps: Vec<Guard>,
}

struct Analysis<'a> {
    file: &'a str,
    raw_lines: Vec<&'a str>,
    toks: Vec<Tok<'a>>,
    registry: &'a [LockSpec],
    rules: &'a [&'a str],
    violations: Vec<Violation>,
    edges: Vec<LockEdge>,
}

impl<'a> Analysis<'a> {
    fn rule_on(&self, rule: &str) -> bool {
        self.rules.contains(&rule)
    }

    fn snippet(&self, line: usize) -> String {
        let mut s = self
            .raw_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or("")
            .trim()
            .to_string();
        if s.len() > 120 {
            s.truncate(117);
            s.push_str("...");
        }
        s
    }

    /// The raw-line window searched for a `LINT-CRASH-SAFE:` marker: the
    /// crash-point line and the three lines above (mirrors L004).
    fn crash_safe_marked(&self, line: usize) -> bool {
        let hi = line.min(self.raw_lines.len());
        let lo = hi.saturating_sub(4);
        self.raw_lines[lo..hi].iter().any(|l| l.contains(CRASH_SAFE_MARKER))
    }

    /// Walks a function body starting at `open` (index of its `{`).
    /// Returns the index just past the matching `}`.
    fn analyze_body(&mut self, open: usize) -> usize {
        let mut scopes: Vec<Scope> = vec![Scope::default()];
        let mut paren_depth: usize = 0;
        let mut pending_let: Option<String> = None;
        let mut stmt_paren_base: usize = 0;
        let mut pending_construct: Option<PendingConstruct> = None;
        let mut carryover: Vec<Guard> = Vec::new();
        // (region id, paren depth at entry, brace-bodied?) for move closures.
        let mut region: usize = 0;
        let mut next_region: usize = 1;
        let mut region_stack: Vec<(usize, usize)> = Vec::new(); // expr-closures: (region, depth)
        let mut pending_region_brace: Option<usize> = None;

        let mut i = open + 1;
        while i < self.toks.len() {
            let t = self.toks[i].text;
            match t {
                "{" => {
                    let mut scope = Scope::default();
                    if let Some(pc) = pending_construct.take() {
                        if pc.kind == ConstructKind::Scrutinee {
                            scope.construct_guards.extend(pc.temps);
                        }
                        // Cond temporaries die here.
                    }
                    if !carryover.is_empty() {
                        scope.construct_guards.append(&mut carryover);
                    }
                    if let Some(r) = pending_region_brace.take() {
                        region_stack.push((region, paren_depth));
                        region = r;
                        scope.closes_region = true;
                    }
                    scopes.push(scope);
                    i += 1;
                }
                "}" => {
                    match scopes.pop() {
                        Some(closed) => {
                            if closed.closes_region {
                                if let Some((prev, _)) = region_stack.pop() {
                                    region = prev;
                                }
                            }
                            if scopes.is_empty() {
                                return i + 1;
                            }
                            // `} else` keeps the scrutinee temporaries alive.
                            if !closed.construct_guards.is_empty()
                                && self.toks.get(i + 1).map(|t| t.text) == Some("else")
                            {
                                carryover = closed.construct_guards;
                            }
                        }
                        None => return i + 1,
                    }
                    i += 1;
                }
                "(" | "[" => {
                    paren_depth += 1;
                    i += 1;
                }
                ")" | "]" => {
                    paren_depth = paren_depth.saturating_sub(1);
                    // An expression-bodied move closure ends when its
                    // argument position closes.
                    while let Some(&(prev, depth)) = region_stack.last() {
                        if !scopes.last().map(|s| s.closes_region).unwrap_or(false)
                            && paren_depth < depth
                        {
                            region = prev;
                            region_stack.pop();
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                ";" | "," => {
                    if paren_depth == 0 {
                        if let Some(s) = scopes.last_mut() {
                            s.stmt_temps.clear();
                        }
                        pending_let = None;
                        if t == ";" {
                            pending_construct = None;
                        }
                        stmt_paren_base = 0;
                    }
                    if t == "," {
                        // Expression-bodied move closure in argument
                        // position ends at its `,`.
                        while let Some(&(prev, depth)) = region_stack.last() {
                            if paren_depth <= depth {
                                region = prev;
                                region_stack.pop();
                            } else {
                                break;
                            }
                        }
                    }
                    i += 1;
                }
                "=>" => {
                    if paren_depth == 0 {
                        pending_construct = None;
                    }
                    i += 1;
                }
                "let" => {
                    // `if let` / `while let`: the binding is a pattern;
                    // the scrutinee temporary model covers the guard.
                    if pending_construct.is_some() {
                        if let Some(pc) = pending_construct.as_mut() {
                            pc.kind = ConstructKind::Scrutinee;
                        }
                        i += 1;
                        continue;
                    }
                    stmt_paren_base = paren_depth;
                    let mut j = i + 1;
                    if self.toks.get(j).map(|t| t.text) == Some("mut") {
                        j += 1;
                    }
                    pending_let = match self.toks.get(j) {
                        Some(id) if is_ident(id.text) => {
                            match self.toks.get(j + 1).map(|t| t.text) {
                                Some(":") | Some("=") => Some(id.text.to_string()),
                                _ => None, // tuple/struct pattern or partial
                            }
                        }
                        _ => None,
                    };
                    i += 1;
                }
                "if" | "while" | "match" | "for" | "loop" => {
                    if paren_depth == 0 {
                        let kind = match t {
                            "match" | "for" => ConstructKind::Scrutinee,
                            _ => ConstructKind::Cond,
                        };
                        pending_construct = Some(PendingConstruct { kind, temps: Vec::new() });
                    }
                    i += 1;
                }
                "fn" => {
                    // Nested item: skip its body; the top-level scan
                    // analyzes it as its own function.
                    i = skip_fn_item(&self.toks, i);
                }
                "move" => {
                    i += 1;
                    match self.toks.get(i).map(|t| t.text) {
                        Some("|") => {
                            i += 1;
                            while i < self.toks.len() && self.toks[i].text != "|" {
                                i += 1;
                            }
                            i += 1;
                        }
                        Some("||") => i += 1,
                        _ => continue, // `move` in another position
                    }
                    // Deferred execution: fresh guard region.
                    if self.toks.get(i).map(|t| t.text) == Some("{") {
                        pending_region_brace = Some(next_region);
                    } else {
                        region_stack.push((region, paren_depth));
                        region = next_region;
                    }
                    next_region += 1;
                }
                "drop" => {
                    let is_method = i > 0 && self.toks[i - 1].text == ".";
                    if !is_method
                        && self.toks.get(i + 1).map(|t| t.text) == Some("(")
                        && self.toks.get(i + 3).map(|t| t.text) == Some(")")
                    {
                        if let Some(var) = self.toks.get(i + 2).map(|t| t.text) {
                            if is_ident(var) {
                                for s in scopes.iter_mut().rev() {
                                    s.guards.retain(|g| g.var.as_deref() != Some(var));
                                    s.construct_guards.retain(|g| g.var.as_deref() != Some(var));
                                }
                                i += 4;
                                continue;
                            }
                        }
                    }
                    i += 1;
                }
                "." => {
                    let name = self.toks.get(i + 1).map(|t| t.text).unwrap_or("");
                    let is_call = self.toks.get(i + 2).map(|t| t.text) == Some("(");
                    if (name == "lock" || name == "try_lock")
                        && is_call
                        && self.toks.get(i + 3).map(|t| t.text) == Some(")")
                    {
                        let line = self.toks[i + 1].line;
                        let receiver = resolve_receiver(&self.toks, i);
                        let spec = receiver
                            .and_then(|r| registry::resolve(self.registry, self.file, r));
                        match spec {
                            None => {
                                if self.rule_on("L010") {
                                    let what = receiver.unwrap_or("<unresolvable expression>");
                                    self.violations.push(Violation {
                                        rule: "L010",
                                        file: self.file.to_string(),
                                        line,
                                        snippet: self.snippet(line),
                                        lock: None,
                                        detail: format!(
                                            "`.{name}()` receiver `{what}` is not in LOCK_REGISTRY \
                                             — register it so the L009 lock-order graph sees it"
                                        ),
                                    });
                                }
                            }
                            Some(spec) => {
                                // Synthetic test registries may name
                                // classes outside LOCK_CLASSES; treat
                                // those as plain (non-fiber) locks.
                                let (cname, fiber) = match registry::class_by_name(spec.class) {
                                    Some(c) => (c.name, c.fiber),
                                    None => (spec.class, false),
                                };
                                let live = live_guards(&scopes, &pending_construct, region);
                                // Acquiring a fiber lock parks when
                                // contended: a yield point in itself.
                                if fiber && name == "lock" {
                                    self.check_yield(&live, &format!("{}.lock()", spec.receiver), line);
                                }
                                for g in &live {
                                    self.edges.push(LockEdge {
                                        from: g.class.clone(),
                                        to: cname.to_string(),
                                        file: self.file.to_string(),
                                        line,
                                    });
                                }
                                // std-mutex style chains `.unwrap()` /
                                // `.expect("...")` onto the lock call and
                                // still binds the guard — skip adapters
                                // before deciding where the expression ends.
                                let mut end = i + 4;
                                while self.toks.get(end).map(|t| t.text) == Some(".")
                                    && matches!(
                                        self.toks.get(end + 1).map(|t| t.text),
                                        Some("unwrap") | Some("expect")
                                    )
                                    && self.toks.get(end + 2).map(|t| t.text) == Some("(")
                                {
                                    let mut depth = 1usize;
                                    let mut j = end + 3;
                                    while j < self.toks.len() && depth > 0 {
                                        match self.toks[j].text {
                                            "(" => depth += 1,
                                            ")" => depth -= 1,
                                            _ => {}
                                        }
                                        j += 1;
                                    }
                                    end = j;
                                }
                                let terminal = !matches!(
                                    self.toks.get(end).map(|t| t.text),
                                    Some(".") | Some("?")
                                );
                                let guard = Guard {
                                    class: cname.to_string(),
                                    fiber,
                                    var: None,
                                    line,
                                    region,
                                };
                                if let Some(pc) = pending_construct.as_mut() {
                                    pc.temps.push(guard);
                                } else if terminal
                                    && paren_depth == stmt_paren_base
                                    && pending_let.is_some()
                                    && self.toks.get(end).map(|t| t.text) == Some(";")
                                {
                                    let mut g = guard;
                                    g.var = pending_let.take();
                                    if let Some(s) = scopes.last_mut() {
                                        s.guards.push(g);
                                    }
                                } else if let Some(s) = scopes.last_mut() {
                                    s.stmt_temps.push(guard);
                                }
                                i = end;
                                continue;
                            }
                        }
                        i += 4;
                        continue;
                    }
                    if is_call && METHOD_YIELDS.contains(&name) {
                        let line = self.toks[i + 1].line;
                        let live = live_guards(&scopes, &pending_construct, region);
                        self.check_yield(&live, &format!(".{name}()"), line);
                        i += 3;
                        continue;
                    }
                    i += 2.min(self.toks.len() - i);
                }
                "crashpoint" => {
                    if self.toks.get(i + 1).map(|t| t.text) == Some("::")
                        && self.toks.get(i + 2).map(|t| t.text) == Some("hit")
                        && self.toks.get(i + 3).map(|t| t.text) == Some("(")
                    {
                        let line = self.toks[i + 2].line;
                        if self.rule_on("L008") && !self.crash_safe_marked(line) {
                            let live = live_guards(&scopes, &pending_construct, region);
                            for g in &live {
                                self.violations.push(Violation {
                                    rule: "L008",
                                    file: self.file.to_string(),
                                    line,
                                    snippet: self.snippet(line),
                                    lock: Some(g.class.clone()),
                                    detail: format!(
                                        "guard {} (taken line {}) is live across \
                                         `crashpoint::hit` — CrashUnwind would unwind \
                                         mid-critical-section; narrow the guard or add \
                                         `// {CRASH_SAFE_MARKER} <reason>`",
                                        describe(g),
                                        g.line
                                    ),
                                });
                            }
                        }
                        i += 4;
                        continue;
                    }
                    i += 1;
                }
                _ => {
                    if FREE_YIELDS.contains(&t)
                        && self.toks.get(i + 1).map(|t| t.text) == Some("(")
                        && !matches!(
                            i.checked_sub(1).map(|p| self.toks[p].text),
                            Some(".") | Some("fn")
                        )
                    {
                        let line = self.toks[i].line;
                        let live = live_guards(&scopes, &pending_construct, region);
                        self.check_yield(&live, &format!("{t}()"), line);
                    }
                    i += 1;
                }
            }
        }
        i
    }

    /// L007: every live non-fiber guard in the current region is flagged
    /// against the yield point `what` at `line`.
    fn check_yield(&mut self, live: &[Guard], what: &str, line: usize) {
        if !self.rule_on("L007") {
            return;
        }
        for g in live.iter().filter(|g| !g.fiber) {
            self.violations.push(Violation {
                rule: "L007",
                file: self.file.to_string(),
                line,
                snippet: self.snippet(line),
                lock: Some(g.class.clone()),
                detail: format!(
                    "guard {} (taken line {}) is live across yield point `{what}` — \
                     parking a fiber while holding it can deadlock the cooperative \
                     runtime; narrow the guard or use a FiberMutex",
                    describe(g),
                    g.line
                ),
            });
        }
    }
}

fn describe(g: &Guard) -> String {
    match &g.var {
        Some(v) => format!("`{v}` [{}]", g.class),
        None => format!("<temporary> [{}]", g.class),
    }
}

fn live_guards(
    scopes: &[Scope],
    pending: &Option<PendingConstruct>,
    region: usize,
) -> Vec<Guard> {
    let mut out = Vec::new();
    for s in scopes {
        out.extend(s.guards.iter().cloned());
        out.extend(s.construct_guards.iter().cloned());
        out.extend(s.stmt_temps.iter().cloned());
    }
    if let Some(pc) = pending {
        out.extend(pc.temps.iter().cloned());
    }
    out.retain(|g| g.region == region);
    out
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Resolves the receiver of `.lock()` at token index `dot`: the
/// identifier immediately before the dot, or — when the dot follows a
/// call `recv(…)` or an index `recv[…]` — the identifier before that
/// balanced group.
fn resolve_receiver<'a>(toks: &[Tok<'a>], dot: usize) -> Option<&'a str> {
    if dot == 0 {
        return None;
    }
    let prev = toks[dot - 1].text;
    if is_ident(prev) {
        return Some(prev);
    }
    if prev == ")" || prev == "]" {
        // Balance back to the matching opener.
        let mut depth = 1usize;
        let mut j = dot - 1;
        while depth > 0 {
            if j == 0 {
                return None;
            }
            j -= 1;
            match toks[j].text {
                ")" | "]" => depth += 1,
                "(" | "[" => depth -= 1,
                _ => {}
            }
        }
        if j > 0 && is_ident(toks[j - 1].text) {
            return Some(toks[j - 1].text);
        }
    }
    None
}

/// Skips a `fn` item starting at the `fn` token: past its signature and
/// (if present) its body. Returns the index after the item.
fn skip_fn_item(toks: &[Tok<'_>], fn_idx: usize) -> usize {
    let mut i = fn_idx + 1;
    // `fn(` is a function-pointer type, not an item.
    if toks.get(i).map(|t| t.text) == Some("(") {
        return i;
    }
    let mut paren = 0usize;
    while i < toks.len() {
        match toks[i].text {
            "(" | "[" => paren += 1,
            ")" | "]" => paren = paren.saturating_sub(1),
            ";" if paren == 0 => return i + 1, // trait method declaration
            "{" if paren == 0 => {
                let mut depth = 1usize;
                i += 1;
                while i < toks.len() && depth > 0 {
                    match toks[i].text {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds the body `{` of the `fn` item at `fn_idx`, or `None` for a
/// bodyless declaration or a `fn(` pointer type.
fn fn_body_open(toks: &[Tok<'_>], fn_idx: usize) -> Option<usize> {
    let mut i = fn_idx + 1;
    if toks.get(i).map(|t| t.text) == Some("(") {
        return None;
    }
    let mut paren = 0usize;
    while i < toks.len() {
        match toks[i].text {
            "(" | "[" => paren += 1,
            ")" | "]" => paren = paren.saturating_sub(1),
            ";" if paren == 0 => return None,
            "{" if paren == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Token index ranges covered by `#[cfg(test)]` items (and `#[test]`
/// functions): the analyzer skips them — test-local mutexes are not
/// production locks.
fn test_ranges(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks.get(i + 3).map(|t| t.text) == Some("(")
            && toks.get(i + 4).map(|t| t.text) == Some("test")
            && toks.get(i + 5).map(|t| t.text) == Some(")")
            && toks.get(i + 6).map(|t| t.text) == Some("]");
        let is_test_attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "test"
            && toks.get(i + 3).map(|t| t.text) == Some("]");
        if is_cfg_test || is_test_attr {
            let start = i;
            i += if is_cfg_test { 7 } else { 4 };
            // Skip any further attributes, then the item itself.
            loop {
                while toks.get(i).map(|t| t.text) == Some("#") {
                    let mut depth = 0usize;
                    i += 1;
                    while i < toks.len() {
                        match toks[i].text {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                break;
            }
            let mut paren = 0usize;
            while i < toks.len() {
                match toks[i].text {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren = paren.saturating_sub(1),
                    ";" if paren == 0 => {
                        i += 1;
                        break;
                    }
                    "{" if paren == 0 => {
                        let mut depth = 1usize;
                        i += 1;
                        while i < toks.len() && depth > 0 {
                            match toks[i].text {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                _ => {}
                            }
                            i += 1;
                        }
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            out.push((start, i));
        } else {
            i += 1;
        }
    }
    out
}

/// Analyzes one file with an explicit registry and rule set. Production
/// code uses [`analyze_file`]; tests inject synthetic registries.
pub fn analyze_file_with(
    file: &str,
    source: &str,
    registry: &[LockSpec],
    rules: &[&str],
) -> FileAnalysis {
    let scrubbed = scrub(source);
    let toks = tokenize(&scrubbed);
    let skip = test_ranges(&toks);
    let mut a = Analysis {
        file,
        raw_lines: source.lines().collect(),
        toks,
        registry,
        rules,
        violations: Vec::new(),
        edges: Vec::new(),
    };
    let mut i = 0;
    while i < a.toks.len() {
        if let Some(&(_, end)) = skip.iter().find(|(s, e)| *s <= i && i < *e) {
            i = end;
            continue;
        }
        if a.toks[i].text == "fn" {
            match fn_body_open(&a.toks, i) {
                Some(open) => {
                    a.analyze_body(open);
                    // Continue just inside the body so nested `fn`
                    // items are found and analyzed exactly once.
                    i = open + 1;
                }
                None => i += 1,
            }
        } else {
            i += 1;
        }
    }
    FileAnalysis { violations: a.violations, edges: a.edges }
}

/// Analyzes one file with the production [`LOCK_REGISTRY`] and all
/// concurrency rules enabled.
pub fn analyze_file(file: &str, source: &str) -> FileAnalysis {
    analyze_file_with(file, source, LOCK_REGISTRY, &["L007", "L008", "L010"])
}

// ---------------------------------------------------------------------------
// L009 — lock-order graph
// ---------------------------------------------------------------------------

/// Builds the global lock-order graph from per-file edges and reports
/// every cycle (L009). Self-edges within an `ordered` class are the
/// declared intra-family order and are allowed; any other cycle is
/// printed in full with a file:line witness per edge.
pub fn lock_graph_violations(edges: &[LockEdge]) -> Vec<Violation> {
    let mut out = Vec::new();
    // Dedup edges, keeping the first witness per (from, to).
    let mut uniq: Vec<&LockEdge> = Vec::new();
    for e in edges {
        if !uniq.iter().any(|u| u.from == e.from && u.to == e.to) {
            uniq.push(e);
        }
    }

    for e in &uniq {
        if e.from == e.to {
            let ordered = registry::class_by_name(&e.from).map(|c| c.ordered).unwrap_or(false);
            if !ordered {
                out.push(Violation {
                    rule: "L009",
                    file: e.file.clone(),
                    line: e.line,
                    snippet: String::new(),
                    lock: Some(e.from.clone()),
                    detail: format!(
                        "lock-order self-cycle: `{}` acquired while already held \
                         ({}:{}) and the class is not declared `ordered`",
                        e.from, e.file, e.line
                    ),
                });
            }
        }
    }

    // Nodes and adjacency (self-edges excluded — handled above).
    let mut nodes: Vec<&str> = Vec::new();
    for e in &uniq {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    let idx = |n: &str| nodes.iter().position(|x| *x == n).unwrap();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in &uniq {
        if e.from != e.to {
            adj[idx(&e.from)].push(idx(&e.to));
        }
    }

    // DFS cycle detection with path reconstruction. Each cycle is
    // reported once, keyed by its node set.
    let mut reported: Vec<Vec<usize>> = Vec::new();
    for start in 0..nodes.len() {
        let mut path: Vec<usize> = Vec::new();
        let mut visited = vec![false; nodes.len()];
        // DFS tracking the current path; graphs here are tiny (a few
        // dozen classes), so recursion depth is bounded.
        fn dfs(
            v: usize,
            adj: &[Vec<usize>],
            visited: &mut [bool],
            path: &mut Vec<usize>,
            found: &mut Option<Vec<usize>>,
        ) {
            if found.is_some() {
                return;
            }
            if let Some(pos) = path.iter().position(|&p| p == v) {
                *found = Some(path[pos..].to_vec());
                return;
            }
            if visited[v] {
                return;
            }
            visited[v] = true;
            path.push(v);
            for &w in &adj[v] {
                dfs(w, adj, visited, path, found);
            }
            path.pop();
        }
        let mut found = None;
        dfs(start, &adj, &mut visited, &mut path, &mut found);
        if let Some(cycle) = found {
            let mut key = cycle.clone();
            key.sort_unstable();
            if reported.contains(&key) {
                continue;
            }
            reported.push(key);
            // Render: A -> B (file:line) -> ... -> A (file:line).
            let witness = |from: usize, to: usize| -> String {
                uniq.iter()
                    .find(|e| e.from == nodes[from] && e.to == nodes[to])
                    .map(|e| format!("{}:{}", e.file, e.line))
                    .unwrap_or_else(|| "?".to_string())
            };
            let mut desc = format!("lock-order cycle: `{}`", nodes[cycle[0]]);
            for w in 1..=cycle.len() {
                let (a, b) = (cycle[w - 1], cycle[w % cycle.len()]);
                desc.push_str(&format!(" -> `{}` ({})", nodes[b], witness(a, b)));
            }
            let first = uniq
                .iter()
                .find(|e| e.from == nodes[cycle[0]] && e.to == nodes[cycle[1 % cycle.len()]])
                .expect("cycle edge exists");
            out.push(Violation {
                rule: "L009",
                file: first.file.clone(),
                line: first.line,
                snippet: String::new(),
                lock: Some(nodes[cycle[0]].to_string()),
                detail: desc,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_concurrency_with;

    const NODE: &str = "crates/core/src/node.rs";
    const ENGINE: &str = "crates/store/src/engine.rs";
    const ALL: &[&str] = &["L007", "L008", "L010"];

    fn check(file: &str, src: &str) -> FileAnalysis {
        analyze_file_with(file, src, LOCK_REGISTRY, ALL)
    }

    fn check_rules(file: &str, src: &str, rules: &[&str]) -> FileAnalysis {
        analyze_file_with(file, src, LOCK_REGISTRY, rules)
    }

    // ---- L007 canary -----------------------------------------------------

    #[test]
    fn l007_canary_guard_across_sleep() {
        let src = "fn f(&self) {\n    let mut s = self.stats.lock();\n    runtime::sleep(5);\n    s.aborted += 1;\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        let v = &fa.violations[0];
        assert_eq!(v.rule, "L007");
        assert_eq!(v.file, NODE);
        assert_eq!(v.line, 3);
        assert_eq!(v.lock.as_deref(), Some("core.node.stats"));
        assert!(v.detail.contains("yield point `sleep()`"), "{}", v.detail);
        assert!(v.detail.contains("`s`"), "{}", v.detail);

        // The canary goes dark when its rule is disabled.
        let off = check_rules(NODE, src, &["L008", "L010"]);
        assert!(off.violations.is_empty(), "{:?}", off.violations);
    }

    #[test]
    fn std_style_unwrap_chain_still_binds_the_guard() {
        // `let g = x.lock().unwrap();` (std::sync::Mutex idiom) must
        // bind a named guard, not a statement temporary that dies at
        // the semicolon — otherwise L007/L008 go blind for std locks.
        let src = "fn f(&self) {\n    let s = self.stats.lock().unwrap();\n    runtime::sleep(5);\n    drop(s);\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].rule, "L007");
        assert_eq!(fa.violations[0].line, 3);

        // `.expect("...")` chains the same way; a trailing method call
        // after the adapter still demotes it to a temporary.
        let src = "fn f(&self) {\n    let n = self.stats.lock().expect(\"poisoned\").len();\n    runtime::sleep(5);\n    drop(n);\n}\n";
        let fa = check(NODE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    }

    #[test]
    fn l007_method_yields_and_fiber_acquire_are_yield_points() {
        // A registered method yield (.wait) under a live guard fires.
        let src = "fn f(&self) {\n    let s = self.stats.lock();\n    self.waiters.wait(1);\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1);
        assert!(fa.violations[0].detail.contains("`.wait()`"));

        // Acquiring a fiber-class lock parks: a yield point for any
        // plain guard already held.
        let src = "fn f(&self) {\n    let q = self.commit_queue.lock();\n    let g = self.commit_lock.lock();\n    drop(g);\n}\n";
        let fa = check(ENGINE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].rule, "L007");
        assert_eq!(fa.violations[0].lock.as_deref(), Some("store.commit_queue"));
        assert!(fa.violations[0].detail.contains("commit_lock.lock()"));
    }

    #[test]
    fn l007_fiber_guard_may_cross_yields() {
        // FiberMutex guards are exempt: held across charges by design.
        let src = "fn f(&self) {\n    let g = self.commit_lock.lock();\n    self.env.charge_crypto(64);\n    runtime::sleep(5);\n}\n";
        let fa = check(ENGINE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    }

    // ---- guard liveness --------------------------------------------------

    #[test]
    fn guard_dies_at_block_end_drop_and_statement_end() {
        // Inner block scopes the guard; the later sleep is clean.
        let block = "fn f(&self) {\n    {\n        let s = self.stats.lock();\n        s.n += 1;\n    }\n    runtime::sleep(5);\n}\n";
        assert!(check(NODE, block).violations.is_empty());

        // Explicit drop() ends the live range.
        let dropped = "fn f(&self) {\n    let s = self.stats.lock();\n    drop(s);\n    runtime::sleep(5);\n}\n";
        assert!(check(NODE, dropped).violations.is_empty());

        // A temporary guard dies at the end of its statement.
        let temp = "fn f(&self) {\n    self.stats.lock().n += 1;\n    runtime::sleep(5);\n}\n";
        assert!(check(NODE, temp).violations.is_empty());
    }

    #[test]
    fn scrutinee_temporary_lives_through_construct_body() {
        // Rust keeps the `if let` scrutinee temporary alive for the whole
        // construct, so the yield inside the body is a real hazard.
        let src = "fn f(&self, k: u64) {\n    if let Some(t) = self.active_part.lock().remove(&k) {\n        runtime::sleep(5);\n    }\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].lock.as_deref(), Some("core.node.active_part"));
        assert_eq!(fa.violations[0].line, 3);

        // ... and it carries across `else`.
        let src = "fn f(&self, k: u64) {\n    if let Some(t) = self.active_part.lock().remove(&k) {\n        t\n    } else {\n        runtime::sleep(5);\n    }\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].line, 5);

        // A plain condition temporary dies at the `{`.
        let src = "fn f(&self) {\n    if self.stats.lock().n > 0 {\n        runtime::sleep(5);\n    }\n}\n";
        assert!(check(NODE, src).violations.is_empty());
    }

    #[test]
    fn move_closures_form_a_fresh_guard_region() {
        // The closure runs later on another fiber: the outer guard is not
        // live across its body, and spawn itself does not yield.
        let src = "fn f(&self) {\n    let s = self.stats.lock();\n    runtime::spawn_daemon(\"w\", move || {\n        runtime::sleep(5);\n    });\n}\n";
        let fa = check(NODE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);

        // But a guard taken *inside* the closure is checked there.
        let src = "fn f(&self) {\n    runtime::spawn_daemon(\"w\", move || {\n        let s = self.stats.lock();\n        runtime::sleep(5);\n    });\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].rule, "L007");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(&self) {\n        let s = self.stats.lock();\n        runtime::sleep(5);\n    }\n}\n";
        let fa = check(NODE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    }

    // ---- L008 canary -----------------------------------------------------

    #[test]
    fn l008_canary_guard_across_crashpoint() {
        let src = "fn f(&self) {\n    let g = self.stats.lock();\n    treaty_sim::crashpoint::hit(\"coord.x\");\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        let v = &fa.violations[0];
        assert_eq!(v.rule, "L008");
        assert_eq!(v.line, 3);
        assert_eq!(v.lock.as_deref(), Some("core.node.stats"));
        assert!(v.detail.contains("crashpoint::hit"), "{}", v.detail);

        let off = check_rules(NODE, src, &["L007", "L010"]);
        assert!(off.violations.is_empty(), "{:?}", off.violations);
    }

    #[test]
    fn l008_marker_documents_audited_exception() {
        // LINT-CRASH-SAFE within three lines above silences L008.
        let src = "fn f(&self) {\n    let g = self.stats.lock();\n    // LINT-CRASH-SAFE: guard is re-created from the WAL on restart\n    treaty_sim::crashpoint::hit(\"coord.x\");\n}\n";
        assert!(check(NODE, src).violations.is_empty());

        // Four lines away is too far (same window as L004).
        let src = "fn f(&self) {\n    let g = self.stats.lock();\n    // LINT-CRASH-SAFE: too far\n    //\n    //\n    //\n    treaty_sim::crashpoint::hit(\"coord.x\");\n}\n";
        assert_eq!(check(NODE, src).violations.len(), 1);

        // Even a fiber guard is a crash hazard: unwinding poisons it too.
        let src = "fn f(&self) {\n    let g = self.commit_lock.lock();\n    treaty_sim::crashpoint::hit(\"store.x\");\n}\n";
        let fa = check(ENGINE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        assert_eq!(fa.violations[0].rule, "L008");
    }

    // ---- L009 ------------------------------------------------------------

    /// Synthetic registry for the cycle fixture: classes outside
    /// LOCK_CLASSES resolve as plain, unordered locks.
    const CYCLE_REGISTRY: &[LockSpec] = &[
        LockSpec { file: "fixture/cycle_a.rs", receiver: "alpha", class: "t.alpha" },
        LockSpec { file: "fixture/cycle_a.rs", receiver: "beta", class: "t.beta" },
        LockSpec { file: "fixture/cycle_b.rs", receiver: "alpha", class: "t.alpha" },
        LockSpec { file: "fixture/cycle_b.rs", receiver: "beta", class: "t.beta" },
    ];

    /// The two on-disk fixture files: A takes alpha→beta, B takes
    /// beta→alpha.
    const CYCLE_A: &str = include_str!("../fixtures/cycle_a.rs");
    const CYCLE_B: &str = include_str!("../fixtures/cycle_b.rs");

    #[test]
    fn l009_two_file_lock_order_cycle() {
        let files = vec![
            ("fixture/cycle_a.rs".to_string(), CYCLE_A.to_string()),
            ("fixture/cycle_b.rs".to_string(), CYCLE_B.to_string()),
        ];
        let v = lint_concurrency_with(&files, CYCLE_REGISTRY, &["L009"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L009");
        assert!(v[0].detail.contains("`t.alpha`"), "{}", v[0].detail);
        assert!(v[0].detail.contains("`t.beta`"), "{}", v[0].detail);
        // Each edge of the cycle is printed with its file:line witness:
        // the inner acquisition in each fixture file.
        assert!(v[0].detail.contains("fixture/cycle_a.rs:12"), "{}", v[0].detail);
        assert!(v[0].detail.contains("fixture/cycle_b.rs:7"), "{}", v[0].detail);

        // Disabled: the canary goes dark.
        assert!(lint_concurrency_with(&files, CYCLE_REGISTRY, &["L007"]).is_empty());

        // Consistent order in both files: no cycle.
        let files = vec![
            ("fixture/cycle_a.rs".to_string(), CYCLE_A.to_string()),
            (
                "fixture/cycle_b.rs".to_string(),
                CYCLE_A.replace("take_alpha_then_beta", "consistent_order"),
            ),
        ];
        assert!(lint_concurrency_with(&files, CYCLE_REGISTRY, &["L009"]).is_empty());
    }

    #[test]
    fn l009_self_edges_respect_the_ordered_flag() {
        let edge = |class: &str| LockEdge {
            from: class.to_string(),
            to: class.to_string(),
            file: "x.rs".to_string(),
            line: 7,
        };
        // Striped families declare an intra-class order: allowed.
        assert!(lock_graph_violations(&[edge("store.prepared_stripes")]).is_empty());
        // An unordered class nested inside itself is a one-node cycle.
        let v = lock_graph_violations(&[edge("core.node.stats")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L009");
        assert!(v[0].detail.contains("self-cycle"), "{}", v[0].detail);
    }

    // ---- L010 canary -----------------------------------------------------

    #[test]
    fn l010_canary_unregistered_receiver() {
        let src = "fn f(&self) {\n    let g = self.mystery.lock();\n}\n";
        let fa = check(NODE, src);
        assert_eq!(fa.violations.len(), 1, "{:?}", fa.violations);
        let v = &fa.violations[0];
        assert_eq!(v.rule, "L010");
        assert_eq!(v.line, 2);
        assert!(v.detail.contains("`mystery`"), "{}", v.detail);
        assert!(v.detail.contains("LOCK_REGISTRY"), "{}", v.detail);

        let off = check_rules(NODE, src, &["L007", "L008"]);
        assert!(off.violations.is_empty(), "{:?}", off.violations);
    }

    #[test]
    fn l010_resolves_method_call_receivers() {
        // `self.stripe(&gtx).lock()` resolves through the method name.
        let src = "fn f(&self, gtx: u64) {\n    let s = self.stripe(&gtx).lock();\n}\n";
        let fa = check(ENGINE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);

        // try_lock() resolves through the same table and is not a yield.
        let src = "fn f(&self) {\n    let q = self.commit_queue.lock();\n    if let Some(g) = self.maintenance_lock.try_lock() {\n        drop(g);\n    }\n}\n";
        let fa = check(ENGINE, src);
        assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    }

    // ---- plumbing --------------------------------------------------------

    #[test]
    fn edges_are_extracted_with_witnesses() {
        let src = "fn f(&self) {\n    let q = self.commit_queue.lock();\n    let d = self.done.lock();\n}\n";
        let fa = check(ENGINE, src);
        assert_eq!(fa.edges.len(), 1, "{:?}", fa.edges);
        assert_eq!(fa.edges[0].from, "store.commit_queue");
        assert_eq!(fa.edges[0].to, "store.commit_done");
        assert_eq!(fa.edges[0].line, 3);
    }

    #[test]
    fn tokenizer_tracks_lines_and_compound_ops() {
        let toks = tokenize("a::b -> c\nx <= y;\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["a", "::", "b", "->", "c", "x", "<=", "y", ";"]);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[5].line, 2);
    }
}
