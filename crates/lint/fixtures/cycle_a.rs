//! L009 canary fixture, file A: takes `alpha` then `beta`.
//!
//! Paired with `cycle_b.rs`, which takes the same two locks in the
//! opposite order — together they form the two-file lock-order cycle
//! that `analyzer::tests::l009_two_file_lock_order_cycle` asserts on.
//! This file is a test fixture, not compiled into the crate; the
//! workspace walker skips the `lint` directory precisely so fixtures
//! can contain deliberate violations.

fn take_alpha_then_beta(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
