//! L009 canary fixture, file B: takes `beta` then `alpha` — the
//! reverse of `cycle_a.rs`, completing the lock-order cycle the L009
//! canary test asserts on (with file:line witnesses in both files).

fn take_beta_then_alpha(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    drop(a);
    drop(b);
}
