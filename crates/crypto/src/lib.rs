//! Cryptographic primitives and the Treaty secure message format.
//!
//! Treaty bootstraps confidentiality, integrity and freshness from a small
//! set of primitives (§V-A, §VII-A of the paper): AES-GCM authenticated
//! encryption for values, log records and network messages; SHA-256 for the
//! authenticated LSM structures; and a key hierarchy distributed by the CAS.
//!
//! The original system uses OpenSSL inside the enclave; this reproduction
//! uses the pure-Rust RustCrypto implementations, which keeps the security
//! code real (everything is actually encrypted and verified) without any
//! system dependency.

pub mod hash;
pub mod keys;
pub mod message;

pub use hash::{hmac_sign, hmac_verify, sha256, Digest32};
pub use keys::{Key, KeyHierarchy, NonceSeq};
pub use message::{
    EnvelopedMessage, MsgKind, SecureEnvelope, TxMeta, WireCrypto, MESSAGE_OVERHEAD,
};

use aes_gcm::aead::{Aead, Payload};
use aes_gcm::{Aes256Gcm, KeyInit, Nonce};

/// Error type for all cryptographic failures in this crate.
///
/// Deliberately carries no detail beyond the failure site: distinguishing
/// "bad MAC" from "bad padding" style oracles is exactly what an
/// authenticated-encryption API must not do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, thiserror::Error)]
pub enum CryptoError {
    /// Authenticated decryption failed: the ciphertext, nonce, or
    /// associated data was tampered with, or the wrong key was used.
    #[error("authentication failed: message or block was tampered with")]
    AuthFailed,
    /// The buffer is too short or structurally malformed.
    #[error("malformed cryptographic envelope")]
    Malformed,
}

/// The output of authenticated encryption: `ciphertext ‖ tag(16B)`.
///
/// This newtype is the root of Treaty's boundary taint discipline: the only
/// way to obtain one is to run [`aead_seal`], so a value of this type is a
/// *proof of encryption*. `treaty-tee`'s `HostBytes` accepts it as evidence
/// that bytes are safe to place in untrusted host memory (§III placement
/// invariant). Use [`Ciphertext::into_vec`] where a raw buffer is needed —
/// e.g. for wire framing or deliberate tampering in adversary tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext(Vec<u8>);

impl Ciphertext {
    /// Borrows the raw `ciphertext ‖ tag` bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the proof, yielding the raw bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Total length in bytes (plaintext length + 16-byte tag).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the buffer is empty (never produced by [`aead_seal`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl AsRef<[u8]> for Ciphertext {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Encrypts `plaintext` with AES-256-GCM.
///
/// Returns `ciphertext ‖ tag(16B)` wrapped in the [`Ciphertext`] proof
/// type. The `aad` is authenticated but not encrypted.
pub fn aead_seal(key: &Key, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Ciphertext {
    let cipher = Aes256Gcm::new(key.as_slice().into());
    Ciphertext(
        cipher
            .encrypt(
                Nonce::from_slice(nonce),
                Payload {
                    msg: plaintext,
                    aad,
                },
            )
            .expect("AES-GCM encryption is infallible for in-memory buffers"),
    )
}

/// Decrypts and authenticates a buffer produced by [`aead_seal`].
///
/// # Errors
///
/// Returns [`CryptoError::AuthFailed`] if the tag does not verify.
pub fn aead_open(
    key: &Key,
    nonce: &[u8; 12],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let cipher = Aes256Gcm::new(key.as_slice().into());
    cipher
        .decrypt(
            Nonce::from_slice(nonce),
            Payload {
                msg: ciphertext,
                aad,
            },
        )
        .map_err(|_| CryptoError::AuthFailed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = Key::from_bytes([7u8; 32]);
        let nonce = [1u8; 12];
        let ct = aead_seal(&key, &nonce, b"aad", b"hello treaty");
        assert_eq!(ct.len(), 12 + 16); // plaintext + tag
        let pt = aead_open(&key, &nonce, b"aad", ct.as_slice()).unwrap();
        assert_eq!(pt, b"hello treaty");
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let key = Key::from_bytes([7u8; 32]);
        let nonce = [1u8; 12];
        let mut ct = aead_seal(&key, &nonce, b"", b"payload").into_vec();
        ct[0] ^= 0xff;
        assert_eq!(
            aead_open(&key, &nonce, b"", &ct),
            Err(CryptoError::AuthFailed)
        );
    }

    #[test]
    fn tampered_aad_detected() {
        let key = Key::from_bytes([7u8; 32]);
        let nonce = [1u8; 12];
        let ct = aead_seal(&key, &nonce, b"header-v1", b"payload");
        assert_eq!(
            aead_open(&key, &nonce, b"header-v2", ct.as_slice()),
            Err(CryptoError::AuthFailed)
        );
    }

    #[test]
    fn wrong_key_detected() {
        let nonce = [9u8; 12];
        let ct = aead_seal(&Key::from_bytes([1u8; 32]), &nonce, b"", b"secret");
        assert_eq!(
            aead_open(&Key::from_bytes([2u8; 32]), &nonce, b"", ct.as_slice()),
            Err(CryptoError::AuthFailed)
        );
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let key = Key::from_bytes([3u8; 32]);
        let nonce = [0u8; 12];
        let ct = aead_seal(&key, &nonce, b"", b"very-secret-value");
        // The ciphertext must not contain the plaintext bytes.
        let needle = b"very-secret-value";
        assert!(!ct.as_slice().windows(needle.len()).any(|w| w == needle));
    }
}
