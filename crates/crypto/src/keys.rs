//! Keys, the key hierarchy distributed by the CAS, and nonce sequences.

use hmac::{Hmac, Mac};
use serde::{Deserialize, Serialize};
use sha2::Sha256;

/// A 256-bit symmetric key.
///
/// `Debug` deliberately redacts the key material.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Key([u8; 32]);

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(<redacted>)")
    }
}

impl Key {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Key(bytes)
    }

    /// Generates a fresh random key from the OS entropy source.
    pub fn generate() -> Self {
        let mut bytes = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::rngs::OsRng, &mut bytes);
        Key(bytes)
    }

    /// Deterministically derives a sub-key: `HMAC(self, label)`.
    ///
    /// This is the HKDF-expand pattern with a single block, sufficient for
    /// 256-bit outputs.
    pub fn derive(&self, label: &str) -> Key {
        let mut mac =
            <Hmac<Sha256> as Mac>::new_from_slice(&self.0).expect("HMAC accepts any key length");
        mac.update(label.as_bytes());
        let out = mac.finalize().into_bytes();
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&out);
        Key(bytes)
    }

    /// Raw key bytes.
    pub fn as_slice(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The cluster key hierarchy the CAS provisions to attested nodes (§VI).
///
/// All keys derive deterministically from one master secret, so the CAS
/// only ships 32 bytes to each verified enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyHierarchy {
    /// Protects node-to-node and client-to-node messages.
    pub network: Key,
    /// Protects values, WAL/MANIFEST/Clog records and SSTable blocks.
    pub storage: Key,
    /// Seals enclave state (trusted counter snapshots) to local disk.
    pub sealing: Key,
    /// Authenticates trusted-counter protocol messages.
    pub counter: Key,
}

impl KeyHierarchy {
    /// Derives the full hierarchy from a master secret.
    pub fn from_master(master: &Key) -> Self {
        KeyHierarchy {
            network: master.derive("treaty/network"),
            storage: master.derive("treaty/storage"),
            sealing: master.derive("treaty/sealing"),
            counter: master.derive("treaty/counter"),
        }
    }

    /// A fixed hierarchy for tests and benchmarks.
    pub fn for_testing() -> Self {
        Self::from_master(&Key::from_bytes([42u8; 32]))
    }
}

/// A deterministic 96-bit nonce sequence: `sender_id ‖ counter`.
///
/// AES-GCM requires unique nonces per key; Treaty derives them from the
/// sender identity and a monotonic counter, which is also what makes the
/// simulation reproducible (no random nonces).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NonceSeq {
    sender: u32,
    counter: u64,
}

impl NonceSeq {
    /// Creates a sequence for `sender`. Each sender id must be unique per
    /// key to preserve nonce uniqueness.
    pub fn new(sender: u32) -> Self {
        NonceSeq { sender, counter: 0 }
    }

    /// Returns the next nonce. Never repeats for a given sender.
    pub fn next(&mut self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&self.sender.to_be_bytes());
        nonce[4..].copy_from_slice(&self.counter.to_be_bytes());
        self.counter += 1;
        nonce
    }

    /// How many nonces have been issued.
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let master = Key::from_bytes([1u8; 32]);
        assert_eq!(master.derive("a"), master.derive("a"));
        assert_ne!(master.derive("a"), master.derive("b"));
        assert_ne!(master.derive("a"), master);
    }

    #[test]
    fn hierarchy_keys_are_distinct() {
        let h = KeyHierarchy::for_testing();
        let keys = [h.network, h.storage, h.sealing, h.counter];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn nonce_sequence_never_repeats() {
        let mut seq = NonceSeq::new(7);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(seq.next()));
        }
        assert_eq!(seq.issued(), 1000);
    }

    #[test]
    fn nonce_sequences_disjoint_across_senders() {
        let mut a = NonceSeq::new(1);
        let mut b = NonceSeq::new(2);
        let sa: HashSet<_> = (0..100).map(|_| a.next()).collect();
        assert!((0..100).map(|_| b.next()).all(|n| !sa.contains(&n)));
    }

    #[test]
    fn debug_redacts_key_material() {
        let k = Key::from_bytes([0xAB; 32]);
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("171")); // 0xAB
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn generate_produces_distinct_keys() {
        assert_ne!(Key::generate(), Key::generate());
    }
}
