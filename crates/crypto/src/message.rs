//! The Treaty secure network message format (§VII-A).
//!
//! Wire layout, exactly as in the paper:
//!
//! ```text
//! ┌────────┬───────┬────────────────────┬──────────┬─────────┐
//! │ IV 12B │ pad 4B│ Tx metadata 80B    │ Tx data  │ MAC 16B │
//! └────────┴───────┴────────────────────┴──────────┴─────────┘
//!            ▲        (encrypted together with data in Full mode)
//!            └ 4 bytes keep the body 16-byte aligned; byte 0 carries the
//!              crypto mode so a downgrade is detected at decode time.
//! ```
//!
//! The metadata carries the coordinator node id, the transaction id
//! (monotonically incremented at the coordinator) and the operation id —
//! the unique `(node, tx, op)` tuple that gives Treaty at-most-once
//! execution over an adversarial network.

use serde::{Deserialize, Serialize};

use crate::hash::hmac_sign;
use crate::keys::Key;
use crate::{aead_open, aead_seal, CryptoError};

/// Size of the initialization vector.
pub const IV_LEN: usize = 12;
/// Size of the alignment/flag pad.
pub const PAD_LEN: usize = 4;
/// Size of the fixed metadata block.
pub const META_LEN: usize = 80;
/// Size of the trailing MAC.
pub const MAC_LEN: usize = 16;
/// Total framing overhead added to every payload.
pub const MESSAGE_OVERHEAD: usize = IV_LEN + PAD_LEN + META_LEN + MAC_LEN;

/// Message kinds used by the transaction and stabilization protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MsgKind {
    /// Read a key inside a transaction.
    TxnGet = 1,
    /// Buffer a write inside a transaction.
    TxnPut = 2,
    /// 2PC phase one.
    TxnPrepare = 3,
    /// 2PC phase two, commit.
    TxnCommit = 4,
    /// 2PC phase two, abort.
    TxnAbort = 5,
    /// Positive acknowledgement / reply.
    Ack = 6,
    /// Negative acknowledgement.
    Nack = 7,
    /// Trusted counter protocol traffic.
    Counter = 8,
    /// Attestation / configuration traffic.
    Attest = 9,
    /// Recovery: ask a coordinator for a transaction's outcome.
    QueryDecision = 10,
    /// Benchmark / application payload.
    Data = 11,
}

impl MsgKind {
    fn from_u8(v: u8) -> Result<Self, CryptoError> {
        Ok(match v {
            1 => MsgKind::TxnGet,
            2 => MsgKind::TxnPut,
            3 => MsgKind::TxnPrepare,
            4 => MsgKind::TxnCommit,
            5 => MsgKind::TxnAbort,
            6 => MsgKind::Ack,
            7 => MsgKind::Nack,
            8 => MsgKind::Counter,
            9 => MsgKind::Attest,
            10 => MsgKind::QueryDecision,
            11 => MsgKind::Data,
            _ => return Err(CryptoError::Malformed),
        })
    }
}

/// The 80-byte transaction metadata block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TxMeta {
    /// Coordinator node id (8 B on the wire).
    pub node_id: u64,
    /// Transaction id, monotonically incremented at the coordinator.
    pub tx_id: u64,
    /// Operation id, unique within the transaction.
    pub op_id: u64,
    /// What the message is.
    pub kind: MsgKind,
}

impl TxMeta {
    /// Serializes into the fixed 80-byte wire block.
    pub fn encode(&self) -> [u8; META_LEN] {
        let mut buf = [0u8; META_LEN];
        buf[0..8].copy_from_slice(&self.node_id.to_le_bytes());
        buf[8..16].copy_from_slice(&self.tx_id.to_le_bytes());
        buf[16..24].copy_from_slice(&self.op_id.to_le_bytes());
        buf[24] = self.kind as u8;
        buf
    }

    /// Parses the fixed 80-byte wire block.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] for unknown message kinds.
    pub fn decode(buf: &[u8; META_LEN]) -> Result<Self, CryptoError> {
        Ok(TxMeta {
            node_id: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            tx_id: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            op_id: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            kind: MsgKind::from_u8(buf[24])?,
        })
    }

    /// The `(node, tx, op)` tuple used for replay suppression.
    pub fn replay_key(&self) -> (u64, u64, u64) {
        (self.node_id, self.tx_id, self.op_id)
    }
}

/// Protection level applied to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireCrypto {
    /// No protection (native baselines).
    Plain,
    /// Integrity only: body in clear, HMAC-SHA-256 truncated to 16 B
    /// (the "w/o Enc" variants).
    AuthOnly,
    /// AES-256-GCM over metadata + data; the GCM tag is the trailing MAC.
    Full,
}

impl WireCrypto {
    fn mode_byte(self) -> u8 {
        match self {
            WireCrypto::Plain => 0,
            WireCrypto::AuthOnly => 1,
            WireCrypto::Full => 2,
        }
    }
}

/// Encoder/decoder for Treaty's secure messages.
///
/// Stateless; callers supply the key and (for [`WireCrypto::Full`]) a unique
/// nonce per message, typically from [`crate::keys::NonceSeq`].
#[derive(Debug, Clone, Copy)]
pub struct SecureEnvelope {
    crypto: WireCrypto,
}

impl SecureEnvelope {
    /// Creates an envelope codec for the given protection level.
    pub fn new(crypto: WireCrypto) -> Self {
        SecureEnvelope { crypto }
    }

    /// The protection level this codec applies.
    pub fn crypto(&self) -> WireCrypto {
        self.crypto
    }

    /// Number of wire bytes for a payload of `len` bytes.
    pub fn wire_len(&self, len: usize) -> usize {
        MESSAGE_OVERHEAD + len
    }

    /// Seals `meta` and `payload` into a wire message.
    ///
    /// The result carries the protection mode it was produced under, so
    /// boundary types downstream (`treaty-tee`'s `HostBytes`) can decide
    /// whether the bytes count as ciphertext or as a deliberate cleartext
    /// profile choice.
    pub fn seal(
        &self,
        key: &Key,
        iv: [u8; IV_LEN],
        meta: &TxMeta,
        payload: &[u8],
    ) -> EnvelopedMessage {
        let mut body = Vec::with_capacity(META_LEN + payload.len());
        body.extend_from_slice(&meta.encode());
        body.extend_from_slice(payload);

        let mut out = Vec::with_capacity(MESSAGE_OVERHEAD + payload.len());
        match self.crypto {
            WireCrypto::Plain => {
                out.extend_from_slice(&[0u8; IV_LEN]);
                out.extend_from_slice(&[self.crypto.mode_byte(), 0, 0, 0]);
                out.extend_from_slice(&body);
                out.extend_from_slice(&[0u8; MAC_LEN]);
            }
            WireCrypto::AuthOnly => {
                out.extend_from_slice(&iv);
                out.extend_from_slice(&[self.crypto.mode_byte(), 0, 0, 0]);
                out.extend_from_slice(&body);
                let tag = hmac_sign(key, &out);
                out.extend_from_slice(&tag.0[..MAC_LEN]);
            }
            WireCrypto::Full => {
                out.extend_from_slice(&iv);
                out.extend_from_slice(&[self.crypto.mode_byte(), 0, 0, 0]);
                // AAD covers IV + pad so flipping either breaks the tag.
                let aad: [u8; IV_LEN + PAD_LEN] =
                    out[..IV_LEN + PAD_LEN].try_into().expect("header length");
                let ct_and_tag = aead_seal(key, &iv, &aad, &body).into_vec();
                let (ct, tag) = ct_and_tag.split_at(ct_and_tag.len() - MAC_LEN);
                out.extend_from_slice(ct);
                out.extend_from_slice(tag);
            }
        }
        EnvelopedMessage {
            bytes: out,
            crypto: self.crypto,
        }
    }

    /// Opens a wire message, returning the metadata and payload.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::Malformed`] — too short, or the mode byte does not
    ///   match this codec (downgrade attempt).
    /// * [`CryptoError::AuthFailed`] — MAC/tag verification failed.
    pub fn open(&self, key: &Key, wire: &[u8]) -> Result<(TxMeta, Vec<u8>), CryptoError> {
        if wire.len() < MESSAGE_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        if wire[IV_LEN] != self.crypto.mode_byte() {
            return Err(CryptoError::Malformed);
        }
        let iv: [u8; IV_LEN] = wire[..IV_LEN].try_into().unwrap();
        let body_and_mac = &wire[IV_LEN + PAD_LEN..];
        let (body, mac) = body_and_mac.split_at(body_and_mac.len() - MAC_LEN);

        let plain_body: Vec<u8> = match self.crypto {
            WireCrypto::Plain => body.to_vec(),
            WireCrypto::AuthOnly => {
                let tag = hmac_sign(key, &wire[..wire.len() - MAC_LEN]);
                // Constant-time-ish comparison is unnecessary for the
                // simulation, but compare the full truncated tag anyway.
                if tag.0[..MAC_LEN] != *mac {
                    return Err(CryptoError::AuthFailed);
                }
                body.to_vec()
            }
            WireCrypto::Full => {
                let aad = &wire[..IV_LEN + PAD_LEN];
                let mut ct_and_tag = Vec::with_capacity(body.len() + MAC_LEN);
                ct_and_tag.extend_from_slice(body);
                ct_and_tag.extend_from_slice(mac);
                aead_open(key, &iv, aad, &ct_and_tag)?
            }
        };

        if plain_body.len() < META_LEN {
            return Err(CryptoError::Malformed);
        }
        let meta_buf: [u8; META_LEN] = plain_body[..META_LEN].try_into().unwrap();
        let meta = TxMeta::decode(&meta_buf)?;
        Ok((meta, plain_body[META_LEN..].to_vec()))
    }
}

/// A sealed wire message: the framed bytes plus the [`WireCrypto`] mode
/// that produced them.
///
/// Like [`crate::Ciphertext`], this is a provenance-carrying type: the only
/// constructor is [`SecureEnvelope::seal`], so holding one proves the bytes
/// went through the §VII-A message format. Under [`WireCrypto::Full`] the
/// body is AEAD ciphertext; under `Plain`/`AuthOnly` the body is cleartext
/// *by configured profile choice* — consumers (e.g. `HostBytes`) record
/// that distinction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopedMessage {
    bytes: Vec<u8>,
    crypto: WireCrypto,
}

impl EnvelopedMessage {
    /// The protection mode this message was sealed under.
    pub fn crypto(&self) -> WireCrypto {
        self.crypto
    }

    /// Borrows the framed wire bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the proof, yielding the raw wire bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    /// Total wire length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True iff the wire buffer is empty (never produced by `seal`).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl AsRef<[u8]> for EnvelopedMessage {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TxMeta {
        TxMeta {
            node_id: 3,
            tx_id: 77,
            op_id: 5,
            kind: MsgKind::TxnPut,
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = meta();
        assert_eq!(TxMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn meta_rejects_unknown_kind() {
        let mut buf = meta().encode();
        buf[24] = 0xEE;
        assert_eq!(TxMeta::decode(&buf), Err(CryptoError::Malformed));
    }

    #[test]
    fn full_roundtrip_all_modes() {
        let key = Key::from_bytes([9u8; 32]);
        for mode in [WireCrypto::Plain, WireCrypto::AuthOnly, WireCrypto::Full] {
            let env = SecureEnvelope::new(mode);
            let wire = env.seal(&key, [4u8; 12], &meta(), b"value-bytes");
            assert_eq!(wire.len(), env.wire_len(11));
            assert_eq!(wire.crypto(), mode);
            let (m, payload) = env.open(&key, wire.as_slice()).unwrap();
            assert_eq!(m, meta());
            assert_eq!(payload, b"value-bytes");
        }
    }

    #[test]
    fn full_mode_hides_payload() {
        let key = Key::from_bytes([9u8; 32]);
        let env = SecureEnvelope::new(WireCrypto::Full);
        let wire = env.seal(&key, [4u8; 12], &meta(), b"super-secret-payload");
        let needle = b"super-secret-payload";
        assert!(!wire.as_slice().windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn plain_mode_exposes_payload() {
        let key = Key::from_bytes([9u8; 32]);
        let env = SecureEnvelope::new(WireCrypto::Plain);
        let wire = env.seal(&key, [4u8; 12], &meta(), b"visible");
        assert!(wire.as_slice().windows(7).any(|w| w == b"visible"));
    }

    #[test]
    fn tampering_detected_in_secure_modes() {
        let key = Key::from_bytes([9u8; 32]);
        for mode in [WireCrypto::AuthOnly, WireCrypto::Full] {
            let env = SecureEnvelope::new(mode);
            let mut wire = env.seal(&key, [4u8; 12], &meta(), b"payload!!").into_vec();
            // Flip a body byte.
            let i = IV_LEN + PAD_LEN + META_LEN + 2;
            wire[i] ^= 0x01;
            assert_eq!(
                env.open(&key, &wire),
                Err(CryptoError::AuthFailed),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn iv_tampering_detected_in_full_mode() {
        let key = Key::from_bytes([9u8; 32]);
        let env = SecureEnvelope::new(WireCrypto::Full);
        let mut wire = env.seal(&key, [4u8; 12], &meta(), b"payload!!").into_vec();
        wire[0] ^= 0x01;
        assert_eq!(env.open(&key, &wire), Err(CryptoError::AuthFailed));
    }

    #[test]
    fn downgrade_is_rejected() {
        let key = Key::from_bytes([9u8; 32]);
        let plain = SecureEnvelope::new(WireCrypto::Plain);
        let full = SecureEnvelope::new(WireCrypto::Full);
        let wire = plain.seal(&key, [0u8; 12], &meta(), b"x");
        assert_eq!(
            full.open(&key, wire.as_slice()),
            Err(CryptoError::Malformed)
        );
    }

    #[test]
    fn truncated_message_is_malformed() {
        let key = Key::from_bytes([9u8; 32]);
        let env = SecureEnvelope::new(WireCrypto::Full);
        let wire = env.seal(&key, [4u8; 12], &meta(), b"");
        assert_eq!(
            env.open(&key, &wire.as_slice()[..MESSAGE_OVERHEAD - 1]),
            Err(CryptoError::Malformed)
        );
    }

    #[test]
    fn wrong_key_fails_auth() {
        let env = SecureEnvelope::new(WireCrypto::Full);
        let wire = env.seal(&Key::from_bytes([1u8; 32]), [4u8; 12], &meta(), b"p");
        assert_eq!(
            env.open(&Key::from_bytes([2u8; 32]), wire.as_slice()),
            Err(CryptoError::AuthFailed)
        );
    }
}
