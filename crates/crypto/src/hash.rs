//! Hashing and MACs for the authenticated LSM structures.

use hmac::{Hmac, Mac};
use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};

use crate::keys::Key;
use crate::CryptoError;

/// A 256-bit digest (SHA-256 or HMAC-SHA-256 output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Digest32(pub [u8; 32]);

impl Digest32 {
    /// Short hex prefix for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest32 {
    let mut h = Sha256::new();
    h.update(data);
    Digest32(h.finalize().into())
}

/// SHA-256 over multiple segments without concatenating them first.
pub fn sha256_parts(parts: &[&[u8]]) -> Digest32 {
    let mut h = Sha256::new();
    for p in parts {
        // Length-prefix each part so ("ab","c") != ("a","bc").
        h.update((p.len() as u64).to_le_bytes());
        h.update(p);
    }
    Digest32(h.finalize().into())
}

/// HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sign(key: &Key, data: &[u8]) -> Digest32 {
    let mut mac = <Hmac<Sha256> as Mac>::new_from_slice(key.as_slice()).expect("any key length");
    mac.update(data);
    Digest32(mac.finalize().into_bytes().into())
}

/// Verifies an HMAC produced by [`hmac_sign`] in constant time.
///
/// # Errors
///
/// Returns [`CryptoError::AuthFailed`] on mismatch.
pub fn hmac_verify(key: &Key, data: &[u8], tag: &Digest32) -> Result<(), CryptoError> {
    let mut mac = <Hmac<Sha256> as Mac>::new_from_slice(key.as_slice()).expect("any key length");
    mac.update(data);
    mac.verify_slice(&tag.0)
        .map_err(|_| CryptoError::AuthFailed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_answer() {
        // SHA-256("abc")
        let d = sha256(b"abc");
        assert_eq!(
            d.0[..4],
            [0xba, 0x78, 0x16, 0xbf],
            "SHA-256 test vector mismatch"
        );
    }

    #[test]
    fn sha256_parts_is_injective_on_boundaries() {
        assert_ne!(sha256_parts(&[b"ab", b"c"]), sha256_parts(&[b"a", b"bc"]));
        assert_eq!(sha256_parts(&[b"ab", b"c"]), sha256_parts(&[b"ab", b"c"]));
    }

    #[test]
    fn hmac_roundtrip_and_tamper() {
        let key = Key::from_bytes([5u8; 32]);
        let tag = hmac_sign(&key, b"manifest entry");
        hmac_verify(&key, b"manifest entry", &tag).unwrap();
        assert_eq!(
            hmac_verify(&key, b"manifest entrx", &tag),
            Err(CryptoError::AuthFailed)
        );
        let other = Key::from_bytes([6u8; 32]);
        assert_eq!(
            hmac_verify(&other, b"manifest entry", &tag),
            Err(CryptoError::AuthFailed)
        );
    }

    #[test]
    fn short_hex_is_stable() {
        let d = sha256(b"abc");
        assert_eq!(d.short_hex(), "ba7816bf");
    }
}
