//! `HostBytes`: the typed currency of the enclave boundary.
//!
//! Treaty's placement invariant (§III of the paper) says untrusted host
//! memory may only ever hold ciphertext or bytes whose integrity is pinned
//! by a digest kept inside the enclave. This module turns that prose rule
//! into a type: [`crate::HostVault::store`] accepts only a [`HostBytes`],
//! and every constructor of `HostBytes` demands *evidence* that the bytes
//! are safe to expose:
//!
//! * [`HostBytes::from_ciphertext`] — a [`treaty_crypto::Ciphertext`],
//!   which only [`treaty_crypto::aead_seal`] can mint;
//! * [`HostBytes::from_envelope`] — a sealed wire message (cleartext wire
//!   modes are recorded as declassified-by-profile);
//! * [`HostBytes::from_sealed`] — an enclave-sealed blob;
//! * [`HostBytes::integrity_pinned`] — plaintext whose SHA-256 digest is
//!   currently registered with the enclave's integrity map, so tampering
//!   is detectable on read;
//! * framing helpers ([`HostBytes::nonce`], [`HostBytes::tag`],
//!   [`HostBytes::public_u32`]/[`HostBytes::public_u64`]) for
//!   self-describing non-secret structure (nonces, lengths, MACs);
//! * [`HostBytes::declassified`] — the one auditable escape hatch. Every
//!   call site must carry a `// LINT-DECLASSIFY:` justification comment,
//!   enforced by `treaty-lint` rule L004.
//!
//! A deliberate plaintext store no longer typechecks — see the
//! `compile_fail` doctest on [`crate::HostVault::store`].

use std::fmt;

use treaty_crypto::{sha256, Ciphertext, EnvelopedMessage, WireCrypto};

use crate::enclave::Enclave;
use crate::seal::SealedBlob;
use crate::TeeError;

/// How a [`HostBytes`] buffer earned the right to leave the enclave.
///
/// When buffers are concatenated the *weakest* provenance wins (see
/// [`HostBytes::append`]), so a composite record is only as trustworthy as
/// its most exposed part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Pure framing: lengths, counters, nonces, MAC tags — self-describing
    /// non-secret structure.
    Framing,
    /// AEAD output from `treaty-crypto` (confidentiality + integrity).
    Ciphertext,
    /// An enclave-sealed blob (measurement-bound AEAD).
    Sealed,
    /// Plaintext whose SHA-256 digest is registered in the enclave's
    /// integrity map (integrity without confidentiality — the "w/o Enc"
    /// profiles).
    IntegrityPinned,
    /// Explicitly declassified plaintext; carries an audit reason.
    Declassified,
}

impl Provenance {
    /// Exposure rank used when combining buffers: higher = more exposed.
    fn rank(self) -> u8 {
        match self {
            Provenance::Framing => 0,
            Provenance::Ciphertext => 1,
            Provenance::Sealed => 2,
            Provenance::IntegrityPinned => 3,
            Provenance::Declassified => 4,
        }
    }
}

/// A byte buffer proven safe for untrusted host memory.
///
/// See the [module docs](self) for the constructor catalogue. The raw
/// bytes are reachable via [`HostBytes::as_slice`]/[`HostBytes::into_vec`]
/// — reading host memory is always allowed; it is *placing plaintext
/// there* that the type forbids.
#[derive(Clone, PartialEq, Eq)]
pub struct HostBytes {
    bytes: Vec<u8>,
    provenance: Provenance,
    reason: Option<&'static str>,
}

impl fmt::Debug for HostBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the bytes: Debug output lands in logs, and logs are
        // untrusted-adjacent.
        let mut d = f.debug_struct("HostBytes");
        d.field("len", &self.bytes.len())
            .field("provenance", &self.provenance);
        if let Some(reason) = self.reason {
            d.field("reason", &reason);
        }
        d.finish()
    }
}

impl HostBytes {
    /// An empty buffer, for incremental [`HostBytes::append`] assembly.
    pub fn empty() -> Self {
        HostBytes {
            bytes: Vec::new(),
            provenance: Provenance::Framing,
            reason: None,
        }
    }

    /// Wraps AEAD output. The [`Ciphertext`] proof can only come from
    /// [`treaty_crypto::aead_seal`].
    pub fn from_ciphertext(ct: Ciphertext) -> Self {
        HostBytes {
            bytes: ct.into_vec(),
            provenance: Provenance::Ciphertext,
            reason: None,
        }
    }

    /// Wraps a sealed wire message for host-resident message buffers.
    ///
    /// [`WireCrypto::Full`] bodies are AEAD ciphertext. `Plain` and
    /// `AuthOnly` bodies are cleartext *because the configured security
    /// profile says so* — those are recorded as declassified-by-profile,
    /// which keeps the baseline/"w/o Enc" ablations honest in vault dumps.
    pub fn from_envelope(msg: EnvelopedMessage) -> Self {
        let provenance = match msg.crypto() {
            WireCrypto::Full => Provenance::Ciphertext,
            WireCrypto::Plain | WireCrypto::AuthOnly => Provenance::Declassified,
        };
        let reason = match provenance {
            Provenance::Declassified => {
                Some("wire profile sends cleartext bodies (Plain/AuthOnly)")
            }
            _ => None,
        };
        HostBytes {
            bytes: msg.into_vec(),
            provenance,
            reason,
        }
    }

    /// Wraps an enclave-sealed blob as `nonce(12B) ‖ ciphertext`.
    pub fn from_sealed(blob: &SealedBlob) -> Self {
        let mut bytes = Vec::with_capacity(12 + blob.ciphertext().len());
        bytes.extend_from_slice(blob.nonce());
        bytes.extend_from_slice(blob.ciphertext());
        HostBytes {
            bytes,
            provenance: Provenance::Sealed,
            reason: None,
        }
    }

    /// Wraps plaintext whose SHA-256 digest is registered with `enclave`'s
    /// integrity map ([`Enclave::pin_integrity`]): host tampering is
    /// detectable on the read path, which is exactly the guarantee the
    /// "w/o Enc" profiles provide.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotPinned`] if the digest is not currently
    /// pinned — pin first, then construct.
    pub fn integrity_pinned(bytes: Vec<u8>, enclave: &Enclave) -> Result<Self, TeeError> {
        let digest = sha256(&bytes);
        if !enclave.is_pinned(&digest) {
            return Err(TeeError::NotPinned);
        }
        Ok(HostBytes {
            bytes,
            provenance: Provenance::IntegrityPinned,
            reason: None,
        })
    }

    /// The audited escape hatch: plaintext the caller *asserts* is fine to
    /// expose. `reason` is a mandatory audit string, and `treaty-lint`
    /// rule L004 requires a `// LINT-DECLASSIFY:` comment at every call
    /// site.
    pub fn declassified(bytes: Vec<u8>, reason: &'static str) -> Self {
        HostBytes {
            bytes,
            provenance: Provenance::Declassified,
            reason: Some(reason),
        }
    }

    /// A 12-byte AEAD nonce. Nonces are public by construction.
    pub fn nonce(nonce: [u8; 12]) -> Self {
        HostBytes {
            bytes: nonce.to_vec(),
            provenance: Provenance::Framing,
            reason: None,
        }
    }

    /// A 32-byte MAC/digest tag. Tags authenticate, they do not reveal.
    pub fn tag(tag: [u8; 32]) -> Self {
        HostBytes {
            bytes: tag.to_vec(),
            provenance: Provenance::Framing,
            reason: None,
        }
    }

    /// A little-endian public `u32` (lengths, block numbers).
    pub fn public_u32(v: u32) -> Self {
        HostBytes {
            bytes: v.to_le_bytes().to_vec(),
            provenance: Provenance::Framing,
            reason: None,
        }
    }

    /// A little-endian public `u64` (counters, file ids).
    pub fn public_u64(v: u64) -> Self {
        HostBytes {
            bytes: v.to_le_bytes().to_vec(),
            provenance: Provenance::Framing,
            reason: None,
        }
    }

    /// Appends `part`, keeping the weakest (most exposed) provenance and
    /// the first declassification reason.
    pub fn append(&mut self, part: HostBytes) {
        self.bytes.extend_from_slice(&part.bytes);
        if part.provenance.rank() > self.provenance.rank() {
            self.provenance = part.provenance;
        }
        if self.reason.is_none() {
            self.reason = part.reason;
        }
    }

    /// Concatenates parts into one record (e.g. `nonce ‖ ciphertext`).
    pub fn concat<I: IntoIterator<Item = HostBytes>>(parts: I) -> Self {
        let mut out = HostBytes::empty();
        for part in parts {
            out.append(part);
        }
        out
    }

    /// Borrows the raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the wrapper, yielding the raw bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// How these bytes earned host residency.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// The declassification audit reason, if any.
    pub fn declass_reason(&self) -> Option<&'static str> {
        self.reason
    }

    // ---- adversary interface (used by the security test suite) ----

    /// XORs `mask` into the byte at `offset`, simulating in-flight or
    /// in-host tampering. Out-of-range offsets are ignored.
    pub fn tamper(&mut self, offset: usize, mask: u8) {
        if let Some(b) = self.bytes.get_mut(offset) {
            *b ^= mask;
        }
    }
}

impl AsRef<[u8]> for HostBytes {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use treaty_crypto::aead_seal;
    use treaty_crypto::Key;
    use treaty_sim::TeeMode;

    #[test]
    fn ciphertext_provenance() {
        let key = Key::from_bytes([1u8; 32]);
        let hb = HostBytes::from_ciphertext(aead_seal(&key, &[0u8; 12], b"", b"secret"));
        assert_eq!(hb.provenance(), Provenance::Ciphertext);
        assert_eq!(hb.len(), 6 + 16);
    }

    #[test]
    fn integrity_pin_requires_registration() {
        let e = Enclave::new(TeeMode::Native);
        let bytes = b"auth-only value".to_vec();
        assert_eq!(
            HostBytes::integrity_pinned(bytes.clone(), &e),
            Err(TeeError::NotPinned)
        );
        let digest = sha256(&bytes);
        e.pin_integrity(digest);
        let hb = HostBytes::integrity_pinned(bytes, &e).unwrap();
        assert_eq!(hb.provenance(), Provenance::IntegrityPinned);
        e.unpin_integrity(&digest);
        assert!(!e.is_pinned(&digest));
    }

    #[test]
    fn concat_keeps_weakest_provenance() {
        let key = Key::from_bytes([1u8; 32]);
        let ct = HostBytes::from_ciphertext(aead_seal(&key, &[0u8; 12], b"", b"v"));
        let record = HostBytes::concat([HostBytes::nonce([0u8; 12]), ct.clone()]);
        assert_eq!(record.provenance(), Provenance::Ciphertext);
        assert_eq!(record.len(), 12 + ct.len());

        // LINT-DECLASSIFY: provenance-ranking unit test needs a declassified part
        let declass = HostBytes::declassified(vec![0xAA], "provenance rank test");
        let mixed = HostBytes::concat([record, declass]);
        assert_eq!(mixed.provenance(), Provenance::Declassified);
        assert_eq!(mixed.declass_reason(), Some("provenance rank test"));
    }

    #[test]
    fn tamper_flips_exactly_one_byte() {
        // LINT-DECLASSIFY: adversary-interface unit test on synthetic bytes
        let mut hb = HostBytes::declassified(vec![0u8; 4], "tamper test");
        hb.tamper(2, 0x55);
        hb.tamper(100, 0xFF); // out of range: ignored
        assert_eq!(hb.as_slice(), &[0, 0, 0x55, 0]);
    }

    #[test]
    fn debug_redacts_bytes() {
        // LINT-DECLASSIFY: Debug-redaction unit test on synthetic bytes
        let hb = HostBytes::declassified(b"do-not-print".to_vec(), "debug test");
        let s = format!("{hb:?}");
        assert!(!s.contains("do-not-print"));
        assert!(s.contains("Declassified"));
    }
}
