//! SGX-style sealing: binding enclave state to the enclave identity.

use serde::{Deserialize, Serialize};

use treaty_crypto::{aead_open, aead_seal, Key};

use crate::attest::Measurement;
use crate::TeeError;

/// An encrypted, measurement-bound blob suitable for untrusted storage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
}

/// Seals `state` for the enclave identified by `measurement`.
///
/// The measurement enters the AEAD associated data, so a different enclave
/// (different code) cannot unseal the blob even with the same sealing key —
/// the MRENCLAVE sealing policy.
pub fn seal(key: &Key, measurement: &Measurement, nonce: [u8; 12], state: &[u8]) -> SealedBlob {
    let ciphertext = aead_seal(key, &nonce, &measurement.0 .0, state).into_vec();
    SealedBlob { nonce, ciphertext }
}

impl SealedBlob {
    /// The AEAD nonce (public framing).
    pub fn nonce(&self) -> &[u8; 12] {
        &self.nonce
    }

    /// The sealed `ciphertext ‖ tag` bytes.
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }
}

/// Unseals a blob sealed by [`seal`].
///
/// # Errors
///
/// Returns [`TeeError::UnsealFailed`] if the key or measurement differs or
/// the blob was tampered with.
pub fn unseal(
    key: &Key,
    measurement: &Measurement,
    blob: &SealedBlob,
) -> Result<Vec<u8>, TeeError> {
    aead_open(key, &blob.nonce, &measurement.0 .0, &blob.ciphertext)
        .map_err(|_| TeeError::UnsealFailed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let key = Key::from_bytes([8u8; 32]);
        let m = Measurement::of_code("treaty");
        let blob = seal(&key, &m, [1u8; 12], b"counter=42");
        assert_eq!(unseal(&key, &m, &blob).unwrap(), b"counter=42");
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let key = Key::from_bytes([8u8; 32]);
        let blob = seal(&key, &Measurement::of_code("treaty"), [1u8; 12], b"s");
        assert_eq!(
            unseal(&key, &Measurement::of_code("evil"), &blob),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn tampered_blob_rejected() {
        let key = Key::from_bytes([8u8; 32]);
        let m = Measurement::of_code("treaty");
        let mut blob = seal(&key, &m, [1u8; 12], b"state");
        blob.ciphertext[0] ^= 1;
        assert_eq!(unseal(&key, &m, &blob), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn sealed_blob_hides_state() {
        let key = Key::from_bytes([8u8; 32]);
        let m = Measurement::of_code("treaty");
        let blob = seal(&key, &m, [1u8; 12], b"super-secret-counter-state");
        let needle = b"super-secret-counter-state";
        assert!(!blob.ciphertext.windows(needle.len()).any(|w| w == needle));
    }
}
