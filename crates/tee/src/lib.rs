//! The trusted-execution-environment abstraction Treaty builds on.
//!
//! Real Treaty runs inside Intel SGX via SCONE. This reproduction has no
//! SGX hardware, so the enclave becomes an explicit software boundary with
//! the same *observable* behaviour:
//!
//! * [`Enclave`] tracks EPC residency and prices accesses (paging beyond
//!   the EPC limit is what makes naïve SGX ports slow — §II-B, §VII-D),
//! * [`HostVault`] is the untrusted host memory where Treaty keeps
//!   encrypted values and message buffers; tests can dump or corrupt it,
//!   exactly like the paper's adversary,
//! * [`seal`]/[`unseal`] bind enclave state to a measurement, standing in
//!   for SGX sealing,
//! * [`Measurement`]/[`Quote`] provide the attestation primitives that the
//!   CAS chains into collective trust (§VI),
//! * [`HwCounter`] models the slow SGX monotonic counter that motivates the
//!   asynchronous trusted counter service.

pub mod attest;
pub mod counter;
pub mod enclave;
pub mod hostbytes;
pub mod seal;

pub use attest::{HardwareRoot, Measurement, Quote};
pub use counter::HwCounter;
pub use enclave::{Enclave, HostHandle, HostVault, EPC_V1_BYTES, EPC_V2_BYTES};
pub use hostbytes::{HostBytes, Provenance};
pub use seal::{seal, unseal, SealedBlob};

/// Errors surfaced by the TEE abstraction.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TeeError {
    /// Unsealing failed: wrong key, wrong measurement, or tampered blob.
    #[error("unsealing failed: blob does not authenticate for this enclave")]
    UnsealFailed,
    /// A quote failed verification.
    #[error("quote verification failed")]
    BadQuote,
    /// A host-memory handle was stale or freed.
    #[error("invalid host memory handle {0}")]
    BadHandle(u64),
    /// Bytes presented as integrity-pinned have no matching digest in the
    /// enclave's integrity map — pin the digest before constructing
    /// [`HostBytes::integrity_pinned`].
    #[error("bytes are not integrity-pinned by this enclave")]
    NotPinned,
}
