//! The SGX hardware monotonic counter, as a cost baseline.
//!
//! The paper rejects these counters for three reasons (§IV-B): increments
//! take up to ~250 ms, they wear out, and they are per-CPU (useless for
//! distributed rollback protection). This model exists so the ablation
//! benchmarks can show the cliff that motivates the asynchronous trusted
//! counter service in `treaty-counter`.

use std::sync::atomic::{AtomicU64, Ordering};

use treaty_sim::{CostModel, Nanos};

/// A slow, wear-limited hardware monotonic counter.
#[derive(Debug, Default)]
pub struct HwCounter {
    value: AtomicU64,
    writes: AtomicU64,
}

/// Writes after which real SGX counters begin to wear out (order of
/// magnitude per ROTE: ~1M writes over days of sustained use).
pub const WEAR_LIMIT_WRITES: u64 = 1_000_000;

impl HwCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments and returns the new value plus the virtual-time cost the
    /// caller must charge.
    pub fn increment(&self, costs: &CostModel) -> (u64, Nanos) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let v = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        (v, costs.hw_counter_ns)
    }

    /// Reads the current value (fast).
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Whether the counter has exceeded its wear budget.
    pub fn worn_out(&self) -> bool {
        self.writes.load(Ordering::Relaxed) > WEAR_LIMIT_WRITES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_are_monotonic_and_slow() {
        let c = HwCounter::new();
        let costs = CostModel::default();
        let (v1, cost) = c.increment(&costs);
        let (v2, _) = c.increment(&costs);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(cost, costs.hw_counter_ns);
        assert!(
            cost >= 50_000_000,
            "hardware counters must be painfully slow"
        );
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn fresh_counter_is_not_worn() {
        assert!(!HwCounter::new().worn_out());
    }
}
