//! Enclave memory accounting and the untrusted host memory vault.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treaty_crypto::Digest32;
use treaty_sim::{CostModel, Nanos, TeeMode};

use crate::hostbytes::HostBytes;
use crate::TeeError;

/// EPC size of SGX v1 (94 MiB usable).
pub const EPC_V1_BYTES: u64 = 94 * 1024 * 1024;
/// EPC size of SGX v2 (256 MiB usable).
pub const EPC_V2_BYTES: u64 = 256 * 1024 * 1024;

/// One node's enclave: tracks how much trusted memory the resident data
/// structures use and prices accesses accordingly.
///
/// The paper's designs (MemTable key/value split, host-resident message
/// buffers, `std::string` transaction buffers) all exist to keep this
/// number below the EPC limit; the accounting here is what lets the
/// benchmarks show *why*.
#[derive(Debug)]
pub struct Enclave {
    mode: TeeMode,
    epc_capacity: u64,
    resident: AtomicU64,
    faults: AtomicU64,
    /// Digests of plaintext buffers the enclave vouches for in untrusted
    /// memory (the "w/o Enc" profiles): refcounted so identical values
    /// stored twice stay pinned until both are freed. This map is what
    /// [`HostBytes::integrity_pinned`] checks.
    integrity: Mutex<HashMap<Digest32, u64>>,
}

impl Enclave {
    /// Creates an enclave in the given mode with an SGX-v1-sized EPC.
    pub fn new(mode: TeeMode) -> Self {
        Self::with_epc(mode, EPC_V1_BYTES)
    }

    /// Creates an enclave with an explicit EPC budget (for the paging
    /// ablation benchmarks).
    pub fn with_epc(mode: TeeMode, epc_capacity: u64) -> Self {
        Enclave {
            mode,
            epc_capacity,
            resident: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            integrity: Mutex::new(HashMap::new()),
        }
    }

    /// The execution mode of this enclave.
    pub fn mode(&self) -> TeeMode {
        self.mode
    }

    /// Registers `bytes` of trusted allocation (MemTable keys, lock table,
    /// transaction buffers).
    pub fn alloc_trusted(&self, bytes: u64) {
        self.resident.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases `bytes` of trusted allocation.
    pub fn free_trusted(&self, bytes: u64) {
        // Saturating: double-frees in tests shouldn't wrap.
        let mut cur = self.resident.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.resident.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }

    /// Bytes currently resident in trusted memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// The EPC budget of this enclave in bytes. Resident sets above this
    /// pay paging costs; cache-like structures use it to shed load.
    pub fn epc_capacity(&self) -> u64 {
        self.epc_capacity
    }

    /// Virtual-time cost of touching `bytes` of enclave memory.
    ///
    /// Native mode is free. In SCONE mode the MEE multiplier applies and,
    /// when the working set exceeds the EPC, an expected paging cost
    /// proportional to the overcommit ratio is added (deterministic
    /// expected-value charging keeps the simulation reproducible).
    pub fn access_cost(&self, costs: &CostModel, bytes: usize, base_cpu: Nanos) -> Nanos {
        match self.mode {
            TeeMode::Native => base_cpu,
            TeeMode::Scone => {
                let mut ns = costs.enclave_cpu(TeeMode::Scone, base_cpu);
                let resident = self.resident.load(Ordering::Relaxed);
                if resident > self.epc_capacity {
                    let over = resident - self.epc_capacity;
                    // Probability that this access touches an evicted page.
                    let prob = over as f64 / resident as f64;
                    let pages = (bytes as u64).div_ceil(4096).max(1);
                    let paging = (costs.epc_fault_ns as f64 * prob * pages as f64) as Nanos;
                    ns += paging;
                    self.faults.fetch_add(1, Ordering::Relaxed);
                    treaty_sim::obs::counter_add("tee.epc_fault", 1);
                    treaty_sim::obs::counter_add("tee.paging_ns", paging);
                }
                ns
            }
        }
    }

    /// Number of accesses that incurred (expected) paging cost.
    pub fn fault_count(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    // ---- integrity map (the trusted side of `HostBytes::integrity_pinned`) ----

    /// Registers `digest` as vouched-for plaintext in untrusted memory.
    /// Refcounted: pin twice, unpin twice.
    pub fn pin_integrity(&self, digest: Digest32) {
        *self.integrity.lock().entry(digest).or_insert(0) += 1;
    }

    /// Releases one pin on `digest`; the entry disappears when the
    /// refcount reaches zero.
    pub fn unpin_integrity(&self, digest: &Digest32) {
        let mut map = self.integrity.lock();
        if let Some(count) = map.get_mut(digest) {
            *count -= 1;
            if *count == 0 {
                map.remove(digest);
            }
        }
    }

    /// True iff `digest` is currently pinned.
    pub fn is_pinned(&self, digest: &Digest32) -> bool {
        self.integrity.lock().contains_key(digest)
    }

    /// Number of distinct pinned digests (enclave-resident state the
    /// integrity map costs — useful for EPC accounting tests).
    pub fn pinned_digests(&self) -> usize {
        self.integrity.lock().len()
    }
}

/// Handle to a buffer stored in untrusted host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostHandle(pub u64);

#[derive(Debug, Default)]
struct VaultInner {
    slots: HashMap<u64, Vec<u8>>,
    next: u64,
    bytes: u64,
}

/// Untrusted host memory.
///
/// Everything Treaty stores here must already be encrypted (values, message
/// buffers) or be integrity-pinned by a hash kept in the enclave. The
/// adversary API ([`HostVault::corrupt`], [`HostVault::dump`]) exists so
/// the test suite can mount the §III attacks.
#[derive(Debug, Default)]
pub struct HostVault {
    inner: Mutex<VaultInner>,
}

impl HostVault {
    /// Creates an empty vault.
    pub fn new() -> Arc<Self> {
        Arc::new(HostVault::default())
    }

    /// Stores a buffer, returning its handle.
    ///
    /// The vault is untrusted host memory, so callers must prove the bytes
    /// are safe to expose by constructing a [`HostBytes`] first. Handing
    /// over raw plaintext no longer typechecks:
    ///
    /// ```compile_fail
    /// let vault = treaty_tee::HostVault::new();
    /// // A raw Vec<u8> is plaintext with no provenance: rejected.
    /// vault.store(vec![1u8, 2, 3]);
    /// ```
    pub fn store(&self, data: HostBytes) -> HostHandle {
        let data = data.into_vec();
        let mut inner = self.inner.lock();
        let id = inner.next;
        inner.next += 1;
        inner.bytes += data.len() as u64;
        inner.slots.insert(id, data);
        HostHandle(id)
    }

    /// Reads a copy of a stored buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadHandle`] if the handle was never issued or
    /// already freed.
    pub fn load(&self, h: HostHandle) -> Result<Vec<u8>, TeeError> {
        self.inner
            .lock()
            .slots
            .get(&h.0)
            .cloned()
            .ok_or(TeeError::BadHandle(h.0))
    }

    /// Frees a stored buffer. Double-frees are errors.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadHandle`] if the handle is not live.
    pub fn free(&self, h: HostHandle) -> Result<(), TeeError> {
        let mut inner = self.inner.lock();
        match inner.slots.remove(&h.0) {
            Some(buf) => {
                inner.bytes -= buf.len() as u64;
                Ok(())
            }
            None => Err(TeeError::BadHandle(h.0)),
        }
    }

    /// Total bytes currently stored.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.inner.lock().slots.len()
    }

    // ---- adversary interface (used by the security test suite) ----

    /// Flips a byte in a stored buffer, simulating host-memory tampering.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadHandle`] if the handle is not live.
    pub fn corrupt(&self, h: HostHandle, offset: usize) -> Result<(), TeeError> {
        let mut inner = self.inner.lock();
        let buf = inner.slots.get_mut(&h.0).ok_or(TeeError::BadHandle(h.0))?;
        if let Some(b) = buf.get_mut(offset) {
            *b ^= 0xFF;
        }
        Ok(())
    }

    /// Returns a concatenated snapshot of every live buffer — what a
    /// privileged attacker reading host memory would see. Confidentiality
    /// tests scan this for plaintext.
    pub fn dump(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut ids: Vec<_> = inner.slots.keys().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::new();
        for id in ids {
            out.extend_from_slice(&inner.slots[&id]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_access_is_base_cost() {
        let e = Enclave::new(TeeMode::Native);
        let costs = CostModel::default();
        assert_eq!(e.access_cost(&costs, 4096, 1000), 1000);
    }

    #[test]
    fn scone_access_applies_mee_multiplier() {
        let e = Enclave::new(TeeMode::Scone);
        let costs = CostModel::default();
        assert_eq!(e.access_cost(&costs, 4096, 1000), 1900);
        assert_eq!(e.fault_count(), 0);
    }

    #[test]
    fn epc_overcommit_adds_paging_cost() {
        let e = Enclave::with_epc(TeeMode::Scone, 1024);
        let costs = CostModel::default();
        e.alloc_trusted(4096); // 4x overcommitted
        let cost = e.access_cost(&costs, 4096, 1000);
        assert!(cost > 1900, "paging must add cost, got {cost}");
        assert_eq!(e.fault_count(), 1);
    }

    #[test]
    fn alloc_free_accounting() {
        let e = Enclave::new(TeeMode::Scone);
        e.alloc_trusted(100);
        e.alloc_trusted(50);
        assert_eq!(e.resident_bytes(), 150);
        e.free_trusted(100);
        assert_eq!(e.resident_bytes(), 50);
        e.free_trusted(1_000_000); // saturates, never wraps
        assert_eq!(e.resident_bytes(), 0);
    }

    // LINT-DECLASSIFY: vault unit tests exercise storage mechanics on
    // synthetic non-secret bytes.
    fn test_bytes(data: Vec<u8>) -> HostBytes {
        HostBytes::declassified(data, "vault unit-test buffer")
    }

    #[test]
    fn vault_store_load_free() {
        let v = HostVault::new();
        let h = v.store(test_bytes(vec![1, 2, 3]));
        assert_eq!(v.load(h).unwrap(), vec![1, 2, 3]);
        assert_eq!(v.resident_bytes(), 3);
        v.free(h).unwrap();
        assert_eq!(v.resident_bytes(), 0);
        assert_eq!(v.load(h), Err(TeeError::BadHandle(h.0)));
        assert_eq!(v.free(h), Err(TeeError::BadHandle(h.0)));
    }

    #[test]
    fn vault_corrupt_flips_bytes() {
        let v = HostVault::new();
        let h = v.store(test_bytes(vec![0u8; 4]));
        v.corrupt(h, 2).unwrap();
        assert_eq!(v.load(h).unwrap(), vec![0, 0, 0xFF, 0]);
    }

    #[test]
    fn vault_dump_sees_all_buffers() {
        let v = HostVault::new();
        v.store(test_bytes(b"aaa".to_vec()));
        v.store(test_bytes(b"bbb".to_vec()));
        let dump = v.dump();
        assert!(dump.windows(3).any(|w| w == b"aaa"));
        assert!(dump.windows(3).any(|w| w == b"bbb"));
    }

    #[test]
    fn integrity_map_is_refcounted() {
        let e = Enclave::new(TeeMode::Native);
        let digest = treaty_crypto::sha256(b"pinned-value");
        e.pin_integrity(digest);
        e.pin_integrity(digest);
        assert_eq!(e.pinned_digests(), 1);
        e.unpin_integrity(&digest);
        assert!(e.is_pinned(&digest), "one pin still outstanding");
        e.unpin_integrity(&digest);
        assert!(!e.is_pinned(&digest));
        assert_eq!(e.pinned_digests(), 0);
        // Unpinning an unknown digest is a no-op, not a panic.
        e.unpin_integrity(&digest);
    }
}
