//! Attestation primitives: measurements and quotes.
//!
//! The hardware root of trust (the key SGX fuses into the CPU) becomes a
//! software secret held by [`HardwareRoot`] — the one and only point where
//! this reproduction substitutes software for silicon. Everything above it
//! (quote generation, verification, the CAS/LAS chain in `treaty-cas`)
//! follows the paper's protocol.

use serde::{Deserialize, Serialize};

use treaty_crypto::{hash, Digest32, Key};

use crate::TeeError;

/// An enclave measurement (MRENCLAVE): the hash of the code identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Measurement(pub Digest32);

impl Measurement {
    /// Measures a code identity string (stand-in for hashing the enclave
    /// binary pages).
    pub fn of_code(identity: &str) -> Self {
        Measurement(hash::sha256(identity.as_bytes()))
    }
}

/// A signed attestation quote binding a measurement to caller-chosen
/// report data (e.g. a public key or nonce).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The attested enclave's measurement.
    pub measurement: Measurement,
    /// Caller-chosen data bound into the quote.
    pub report_data: Vec<u8>,
    /// Signature by the hardware root (HMAC in this reproduction).
    signature: Digest32,
}

/// The simulated hardware root of trust: can issue quotes (as the Quoting
/// Enclave would) and verify them (as the Intel Attestation Service would).
#[derive(Debug, Clone)]
pub struct HardwareRoot {
    key: Key,
}

impl HardwareRoot {
    /// Creates a root with the given secret. All machines of a simulated
    /// deployment share one root, mirroring Intel's signing authority.
    pub fn new(secret: Key) -> Self {
        HardwareRoot {
            key: secret.derive("tee/hardware-root"),
        }
    }

    fn quote_bytes(measurement: &Measurement, report_data: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + report_data.len());
        buf.extend_from_slice(&measurement.0 .0);
        buf.extend_from_slice(report_data);
        buf
    }

    /// Issues a quote over `measurement` and `report_data`.
    pub fn issue_quote(&self, measurement: Measurement, report_data: Vec<u8>) -> Quote {
        let signature = hash::hmac_sign(&self.key, &Self::quote_bytes(&measurement, &report_data));
        Quote {
            measurement,
            report_data,
            signature,
        }
    }

    /// Verifies a quote, additionally checking it attests `expected`
    /// (the verifier's known-good measurement).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadQuote`] if the signature is invalid or the
    /// measurement is not the expected one.
    pub fn verify_quote(&self, quote: &Quote, expected: &Measurement) -> Result<(), TeeError> {
        if quote.measurement != *expected {
            return Err(TeeError::BadQuote);
        }
        hash::hmac_verify(
            &self.key,
            &Self::quote_bytes(&quote.measurement, &quote.report_data),
            &quote.signature,
        )
        .map_err(|_| TeeError::BadQuote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> HardwareRoot {
        HardwareRoot::new(Key::from_bytes([3u8; 32]))
    }

    #[test]
    fn quote_roundtrip() {
        let m = Measurement::of_code("treaty-node-v1");
        let q = root().issue_quote(m, b"node-pubkey".to_vec());
        root().verify_quote(&q, &m).unwrap();
    }

    #[test]
    fn wrong_measurement_rejected() {
        let m = Measurement::of_code("treaty-node-v1");
        let evil = Measurement::of_code("malicious-node");
        let q = root().issue_quote(evil, vec![]);
        assert_eq!(root().verify_quote(&q, &m), Err(TeeError::BadQuote));
    }

    #[test]
    fn forged_signature_rejected() {
        let m = Measurement::of_code("treaty-node-v1");
        let mut q = root().issue_quote(m, b"data".to_vec());
        q.report_data = b"datA".to_vec(); // signature no longer matches
        assert_eq!(root().verify_quote(&q, &m), Err(TeeError::BadQuote));
    }

    #[test]
    fn different_root_rejects() {
        let m = Measurement::of_code("treaty-node-v1");
        let q = root().issue_quote(m, vec![]);
        let other = HardwareRoot::new(Key::from_bytes([4u8; 32]));
        assert_eq!(other.verify_quote(&q, &m), Err(TeeError::BadQuote));
    }

    #[test]
    fn measurement_is_code_dependent() {
        assert_ne!(Measurement::of_code("a"), Measurement::of_code("b"));
        assert_eq!(Measurement::of_code("a"), Measurement::of_code("a"));
    }
}
