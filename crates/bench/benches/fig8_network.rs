//! Criterion wrapper for Fig. 8: virtual time per 1024B message for each
//! network system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use treaty_bench::{run_network, NetSystem};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_network_virtual_time_per_kib_message");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for system in NetSystem::lineup() {
        g.bench_function(system.label(), |b| {
            b.iter_custom(|iters| {
                let gbps = run_network(system, 1024, 300);
                // virtual ns per message = bits / (Gb/s) (0 throughput ->
                // saturate at a large constant so the report stays finite).
                let ns = if gbps > 0.0 {
                    (1024.0 * 8.0 / gbps) as u64
                } else {
                    1_000_000
                };
                Duration::from_nanos(ns.saturating_mul(iters))
            })
        });
    }
    g.finish();
}

criterion_group! {
    // The simulation is deterministic, so samples have zero variance;
    // criterion's plotters backend cannot plot that — disable plots.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
