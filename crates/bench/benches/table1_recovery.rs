//! Criterion wrapper for Table I: virtual recovery time per 10k log
//! entries for the three variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use treaty_bench::run_recovery;
use treaty_sim::SecurityProfile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_recovery_virtual_time_10k_entries");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (name, profile) in [
        ("native", SecurityProfile::rocksdb()),
        ("treaty_no_enc", SecurityProfile::treaty_no_enc()),
        ("treaty_enc", SecurityProfile::treaty_full()),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let (ns, _) = run_recovery(profile, 10_000, 100);
                Duration::from_nanos(ns.saturating_mul(iters.max(1)) / 1)
            })
        });
    }
    g.finish();
}

criterion_group! {
    // The simulation is deterministic, so samples have zero variance;
    // criterion's plotters backend cannot plot that — disable plots.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
