//! Criterion wrapper for Figs. 6 and 7: virtual time per single-node
//! transaction, pessimistic vs optimistic, baseline vs full Treaty.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use treaty_bench::{run_experiment, RunConfig, Workload};
use treaty_sim::SecurityProfile;
use treaty_store::TxnMode;
use treaty_workload::YcsbConfig;

fn per_txn(profile: SecurityProfile, mode: TxnMode) -> u64 {
    let mut ycsb = YcsbConfig::read_heavy();
    ycsb.keys = 500;
    let mut cfg = RunConfig::single_node(profile, mode, Workload::Ycsb(ycsb), 8);
    cfg.txns_per_client = 4;
    let stats = run_experiment(cfg);
    stats.duration_ns / stats.committed.max(1)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_single_node_virtual_time_per_txn");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (name, profile, mode) in [
        (
            "fig6_pessimistic_rocksdb",
            SecurityProfile::rocksdb(),
            TxnMode::Pessimistic,
        ),
        (
            "fig6_pessimistic_treaty_full",
            SecurityProfile::treaty_full(),
            TxnMode::Pessimistic,
        ),
        (
            "fig7_optimistic_rocksdb",
            SecurityProfile::rocksdb(),
            TxnMode::Optimistic,
        ),
        (
            "fig7_optimistic_treaty_full",
            SecurityProfile::treaty_full(),
            TxnMode::Optimistic,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                Duration::from_nanos(per_txn(profile, mode).saturating_mul(iters))
            })
        });
    }
    g.finish();
}

criterion_group! {
    // The simulation is deterministic, so samples have zero variance;
    // criterion's plotters backend cannot plot that — disable plots.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
