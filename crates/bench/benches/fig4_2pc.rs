//! Criterion wrapper for Fig. 4: virtual time per distributed transaction
//! of the storage-less 2PC, per system variant.
//!
//! The measured `Duration` is *virtual* (simulation) time per committed
//! transaction, not wall time — see DESIGN.md §1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use treaty_bench::{run_experiment, RunConfig};
use treaty_sim::SecurityProfile;

fn virtual_ns_per_txn(profile: SecurityProfile) -> u64 {
    let stats = run_experiment(RunConfig {
        clients: 12,
        txns_per_client: 4,
        ..RunConfig::protocol_only(profile, 12)
    });
    stats.duration_ns / stats.committed.max(1)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_2pc_virtual_time_per_txn");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (name, profile) in [
        ("native_2pc", SecurityProfile::rocksdb()),
        ("native_2pc_enc", SecurityProfile::native_treaty_enc()),
        ("secure_2pc_no_enc", SecurityProfile::treaty_no_enc()),
        ("secure_2pc_enc", SecurityProfile::treaty_enc()),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let per_txn = virtual_ns_per_txn(profile);
                Duration::from_nanos(per_txn.saturating_mul(iters))
            })
        });
    }
    g.finish();
}

criterion_group! {
    // The simulation is deterministic, so samples have zero variance;
    // criterion's plotters backend cannot plot that — disable plots.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
