//! Criterion wrapper for Figs. 3 and 5: virtual time per distributed
//! transaction under TPC-C and YCSB, baseline vs full Treaty.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use treaty_bench::{run_experiment, RunConfig, Workload};
use treaty_sim::SecurityProfile;
use treaty_workload::{TpccConfig, YcsbConfig};

fn per_txn(profile: SecurityProfile, workload: Workload) -> u64 {
    let mut cfg = RunConfig::distributed_ycsb(profile, YcsbConfig::balanced(), 8);
    cfg.workload = workload;
    cfg.txns_per_client = 4;
    if let Workload::Ycsb(ref mut y) = cfg.workload {
        y.keys = 500; // keep the preload fast in the micro version
    }
    let stats = run_experiment(cfg);
    stats.duration_ns / stats.committed.max(1)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fig5_distributed_virtual_time_per_txn");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    let mut small_ycsb = YcsbConfig::write_heavy();
    small_ycsb.keys = 500;
    for (name, profile, workload) in [
        (
            "fig5_ycsb_ds_rocksdb",
            SecurityProfile::rocksdb(),
            Workload::Ycsb(small_ycsb),
        ),
        (
            "fig5_ycsb_treaty_full",
            SecurityProfile::treaty_full(),
            Workload::Ycsb(small_ycsb),
        ),
        (
            "fig3_tpcc_ds_rocksdb",
            SecurityProfile::rocksdb(),
            Workload::Tpcc(TpccConfig::tiny()),
        ),
        (
            "fig3_tpcc_treaty_full",
            SecurityProfile::treaty_full(),
            Workload::Tpcc(TpccConfig::tiny()),
        ),
    ] {
        let workload = workload.clone();
        g.bench_function(name, |b| {
            let workload = workload.clone();
            b.iter_custom(move |iters| {
                Duration::from_nanos(per_txn(profile, workload.clone()).saturating_mul(iters))
            })
        });
    }
    g.finish();
}

criterion_group! {
    // The simulation is deterministic, so samples have zero variance;
    // criterion's plotters backend cannot plot that — disable plots.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
