//! Open-loop scale sweep (DESIGN.md §16, ROADMAP item 5): Poisson
//! arrivals with zipfian multi-tenant hot keys, swept over cluster sizes
//! and offered rates, with the deferred-write batching ablation on and
//! off.
//!
//! For every cluster size the sweep walks the offered rate up, finds the
//! saturation knee (the last rate where achieved/offered stays >= 0.9),
//! and asserts that batching beats the unbatched ablation on both p50 and
//! p99 at that knee. Writes `results/BENCH_scale.json` (override with
//! `--out FILE`); runs are deterministic, so the artifact is
//! byte-identical across same-seed invocations.
//!
//! `--smoke` shrinks the sweep to a 3-node, two-rate run for CI.

use treaty_bench::{run_scale_experiment, ScalePoint, ScaleRunConfig};
use treaty_workload::ScaleConfig;

/// Achieved/offered ratio below which a rate counts as past saturation.
const KNEE_RATIO: f64 = 0.9;

fn point_json(p: &ScalePoint) -> serde_json::Value {
    serde_json::json!({
        "nodes": p.nodes,
        "batching": p.batching,
        "offered_tps": p.offered_tps,
        "achieved_tps": p.achieved_tps,
        "saturation": p.saturation(),
        "committed": p.committed,
        "aborted": p.aborted,
        "p50_ns": p.p50_ns,
        "p99_ns": p.p99_ns,
        "mean_ns": p.mean_ns,
        "duration_ns": p.duration_ns,
        "messages_sent": p.messages_sent,
    })
}

/// The knee of one batching variant's curve: the last offered rate that
/// still kept up, or the first point when even that rate saturated.
fn knee(points: &[ScalePoint]) -> &ScalePoint {
    points
        .iter()
        .rev()
        .find(|p| p.saturation() >= KNEE_RATIO)
        .unwrap_or(&points[0])
}

fn run_curve(
    nodes: usize,
    rates: &[f64],
    arrivals: usize,
    batching: bool,
    scale: &ScaleConfig,
) -> Vec<ScalePoint> {
    rates
        .iter()
        .map(|&offered| {
            let mut cfg = ScaleRunConfig::point(nodes, offered, arrivals, batching);
            cfg.scale = scale.clone();
            let p = run_scale_experiment(cfg);
            println!(
                "  {:>3} nodes {:>9} {:>9.0} tps offered  {:>9.0} achieved ({:>5.2} sat)  p50 {:>8.3} ms  p99 {:>8.3} ms  {:>8} msgs",
                p.nodes,
                if p.batching { "batched" } else { "unbatched" },
                p.offered_tps,
                p.achieved_tps,
                p.saturation(),
                p.p50_ns as f64 / 1e6,
                p.p99_ns as f64 / 1e6,
                p.messages_sent,
            );
            p
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/BENCH_scale.json".into());

    // Sweep shape: the full run walks 3 -> 16 -> 64 nodes; smoke keeps CI
    // under a minute with a 3-node two-rate ablation.
    let (node_counts, rates, arrivals, scale): (Vec<usize>, Vec<f64>, usize, ScaleConfig) =
        if smoke {
            (
                vec![3],
                vec![2_000.0, 8_000.0],
                40,
                ScaleConfig {
                    tenants: 2,
                    keys_per_tenant: 500,
                    ..ScaleConfig::default()
                },
            )
        } else {
            (
                vec![3, 16, 64],
                vec![1_000.0, 4_000.0, 16_000.0, 64_000.0],
                200,
                ScaleConfig::default(),
            )
        };

    println!(
        "Open-loop scale sweep — {} arrivals/point, zipfian theta {}, {}% writes\n",
        arrivals, scale.theta, scale.write_pct
    );

    let mut clusters = Vec::new();
    for &nodes in &node_counts {
        let batched = run_curve(nodes, &rates, arrivals, true, &scale);
        let unbatched = run_curve(nodes, &rates, arrivals, false, &scale);
        let kb = knee(&batched);
        let ku = knee(&unbatched);
        println!(
            "  knee @ {nodes} nodes: batched {:.0} tps (p50 {:.3} ms, p99 {:.3} ms) vs unbatched {:.0} tps (p50 {:.3} ms, p99 {:.3} ms)\n",
            kb.offered_tps,
            kb.p50_ns as f64 / 1e6,
            kb.p99_ns as f64 / 1e6,
            ku.offered_tps,
            ku.p50_ns as f64 / 1e6,
            ku.p99_ns as f64 / 1e6,
        );
        clusters.push((nodes, batched, unbatched));
    }

    let report = serde_json::json!({
        "bench": "open_loop_scale",
        "workload": format!(
            "multi-tenant zipfian, {} tenants x {} keys, theta {}, {}% writes, {} ops/txn",
            scale.tenants, scale.keys_per_tenant, scale.theta, scale.write_pct, scale.ops_per_txn
        ),
        "arrivals_per_point": arrivals,
        "knee_ratio": KNEE_RATIO,
        "smoke": smoke,
        "clusters": clusters.iter().map(|(nodes, batched, unbatched)| {
            let kb = knee(batched);
            let ku = knee(unbatched);
            serde_json::json!({
                "nodes": nodes,
                "batched": batched.iter().map(point_json).collect::<Vec<_>>(),
                "unbatched": unbatched.iter().map(point_json).collect::<Vec<_>>(),
                "knee": {
                    "batched": point_json(kb),
                    "unbatched": point_json(ku),
                    "batched_faster_p50": kb.p50_ns < ku.p50_ns,
                    "batched_faster_p99": kb.p99_ns < ku.p99_ns,
                },
            })
        }).collect::<Vec<_>>(),
    });
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("results directory");
        }
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write BENCH_scale.json");
    println!("-> {}", out.display());

    // The ablation claim: at each cluster's saturation knee, deferred-write
    // batching must beat the unbatched ablation on both p50 and p99. The
    // knees are compared at the batched knee's offered rate when both
    // curves measured it, falling back to per-curve knees otherwise.
    for (nodes, batched, unbatched) in &clusters {
        let kb = knee(batched);
        let at_same_rate = unbatched
            .iter()
            .find(|p| p.offered_tps == kb.offered_tps)
            .unwrap_or_else(|| knee(unbatched));
        assert!(
            kb.p50_ns < at_same_rate.p50_ns && kb.p99_ns < at_same_rate.p99_ns,
            "{nodes} nodes: batching must beat the unbatched ablation at the knee \
             (batched p50 {} p99 {} vs unbatched p50 {} p99 {})",
            kb.p50_ns,
            kb.p99_ns,
            at_same_rate.p50_ns,
            at_same_rate.p99_ns
        );
        assert!(
            kb.messages_sent < at_same_rate.messages_sent,
            "{nodes} nodes: batching must send fewer fabric messages at the knee"
        );
    }
    println!("\nbatching beats the unbatched ablation at every cluster's knee");
}
