//! Ablation: why Treaty needs the asynchronous trusted counter service.
//!
//! §IV-B rejects SGX hardware counters (up to 250 ms per increment, per
//! the paper; ROTE measures ~60-250 ms) in favour of a ROTE-style
//! distributed service (~2 ms). This harness measures single-node commit
//! latency under three stabilization backends:
//!
//! * none (no rollback protection — the `Treaty w/ Enc` variant),
//! * the ROTE-style distributed counter group (the shipped design),
//! * the SGX hardware monotonic counter.

use std::sync::Arc;

use treaty_counter::{CounterBackend, HwCounterBackend, RoteGroup, RoteReplica};
use treaty_crypto::KeyHierarchy;
use treaty_net::Fabric;
use treaty_sched::block_on;
use treaty_sim::{runtime, CostModel, SecurityProfile};
use treaty_store::env::{EngineConfig, Env};
use treaty_store::{EngineTxn as _, TreatyStore, TxnMode};

fn run_with(
    label: &str,
    make_backend: impl FnOnce(&Arc<Fabric>) -> Arc<dyn CounterBackend> + Send + 'static,
) {
    let label = label.to_string();
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().to_path_buf();
    block_on(move || {
        let fabric = Fabric::new(CostModel::default(), 3);
        let backend = make_backend(&fabric);
        let profile = SecurityProfile::treaty_full();
        let config = EngineConfig::default();
        let enclave = Arc::new(treaty_tee::Enclave::new(profile.tee));
        let block_cache = treaty_store::BlockCache::new_shared(
            Arc::clone(&enclave),
            config.block_cache_bytes as u64,
        );
        let env = Arc::new(Env {
            profile,
            costs: CostModel::default(),
            enclave,
            vault: treaty_tee::HostVault::new(),
            cores: None,
            keys: KeyHierarchy::for_testing(),
            backend,
            dir: path,
            config,
            block_cache,
            read_stats: treaty_store::ReadAccelStats::default(),
        });
        let store = TreatyStore::open(env).unwrap();
        let txns = 50u32;
        let t0 = runtime::now();
        for i in 0..txns {
            let mut tx = store.begin_mode(TxnMode::Pessimistic);
            tx.put(format!("k{i}").as_bytes(), &vec![0u8; 500]).unwrap();
            tx.commit().unwrap();
        }
        let per_txn_us = (runtime::now() - t0) as f64 / 1e3 / txns as f64;
        println!("  {label:<34} {per_txn_us:>10.1} us / commit");
    });
}

fn main() {
    println!("Ablation — stabilization backend vs commit latency (sequential commits)\n");
    run_with("no rollback protection", |_| {
        treaty_counter::NullBackend::new()
    });
    run_with("ROTE-style service (the design)", |fabric| {
        let keys = KeyHierarchy::for_testing();
        for i in 0..3 {
            // Replicas persist to the bench tempdir's parent-independent dirs.
            let d = std::env::temp_dir().join(format!("rote-ablate-{i}-{}", std::process::id()));
            std::fs::create_dir_all(&d).unwrap();
            std::mem::forget(RoteReplica::start(
                fabric,
                1000 + i,
                keys.counter,
                keys.sealing,
                &d,
            ));
        }
        RoteGroup::connect(
            fabric,
            1100,
            keys.counter,
            vec![1000, 1001, 1002],
            2 * treaty_sim::MILLIS,
        )
    });
    run_with("SGX hardware counter (rejected)", |_| {
        HwCounterBackend::new(CostModel::default())
    });
    println!("\npaper: hw counters take up to 250 ms per increment and wear out;");
    println!("ROTE rounds average ~2 ms and batch across concurrent commits.");
}
