//! Fig. 4: throughput slowdown of three 2PC variants w.r.t. a native,
//! non-secure 2PC — protocol only, no storage engine (§VIII-B).
//!
//! Paper result: Native w/ Enc ≈ 1.0x, Secure w/o Enc ≈ 1.8x,
//! Secure w/ Enc ≈ 2.0x.

use treaty_bench::{
    print_row, run_experiment, slowdown, trace_out_arg, write_trace_artifact, RunConfig,
};
use treaty_sim::SecurityProfile;
use treaty_workload::YcsbConfig;

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    // Ablation knobs for the pipelined commit path: `--sync-decisions`
    // delivers phase-2 inline before the client ack; `--inline-maintenance`
    // runs flush/compaction on the group-commit leader.
    let sync_decisions = std::env::args().any(|a| a == "--sync-decisions");
    let inline_maintenance = std::env::args().any(|a| a == "--inline-maintenance");

    println!("Fig. 4 — 2PC protocol in isolation (YCSB 50R/50W, 10 ops/tx, 1000B values)");
    println!("{clients} clients x {txns} txns; paper saturates at 300 clients");
    if sync_decisions || inline_maintenance {
        println!(
            "[ablation: sync_decisions={sync_decisions} inline_maintenance={inline_maintenance}]"
        );
    }
    println!();

    let variants: [(&str, SecurityProfile); 4] = [
        ("Native 2PC (baseline)", SecurityProfile::rocksdb()),
        ("Native 2PC w/ Enc", SecurityProfile::native_treaty_enc()),
        ("Secure 2PC w/o Enc", SecurityProfile::treaty_no_enc()),
        ("Secure 2PC w/ Enc", SecurityProfile::treaty_enc()),
    ];
    let mut baseline = None;
    for (label, profile) in variants {
        let mut cfg = RunConfig::protocol_only(profile, clients);
        cfg.txns_per_client = txns;
        cfg.sync_decisions = sync_decisions;
        cfg.inline_maintenance = inline_maintenance;
        let mut stats = run_experiment(cfg);
        stats.label = label.to_string();
        print_row(&stats, baseline);
        if baseline.is_none() {
            baseline = Some(stats.tps());
        }
    }
    if let Some(b) = baseline {
        let _ = slowdown(b, b);
    }
    println!("\npaper: Native w/Enc ~1.0x | Secure w/o Enc ~1.8x | Secure w/ Enc ~2.0x");

    // `--trace-out FILE`: emit a deterministic Chrome trace + phase
    // breakdown. The traced run uses the full durable stack (storage
    // engine + Clog, not the storage-less protocol above) so the artifact
    // decomposes every layer of a committed distributed transaction.
    if let Some(path) = trace_out_arg() {
        let mut ycsb = YcsbConfig::balanced();
        ycsb.keys = 200;
        let mut cfg = RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 4);
        cfg.txns_per_client = 25; // 100-txn smoke run
        cfg.sync_decisions = sync_decisions;
        cfg.inline_maintenance = inline_maintenance;
        write_trace_artifact(&path, cfg);
    }
}
