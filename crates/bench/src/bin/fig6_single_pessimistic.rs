//! Fig. 6: single-node *pessimistic* transactions under TPC-C (10W) and
//! YCSB (20%R / 80%R), six system variants (§VIII-D).
//!
//! Paper result: Native Treaty ~ RocksDB; Treaty w/o Enc ~1.6x,
//! w/ Enc ~2x, w/ Enc w/ Stab ~2.1x (TPC-C).

use treaty_bench::{
    print_accel, print_row, run_experiment_detailed, trace_out_arg, write_trace_artifact,
    RunConfig, Workload,
};
use treaty_sim::SecurityProfile;
use treaty_store::TxnMode;
use treaty_workload::{TpccConfig, YcsbConfig};

fn main() {
    run(
        TxnMode::Pessimistic,
        "Fig. 6 — single-node pessimistic txns",
    );
    println!("\npaper: w/o Enc ~1.6x, w/ Enc ~2x, w/ Stab ~2.1x (TPC-C)");
}

pub fn run(mode: TxnMode, title: &str) {
    let base_clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    // Ablation knob: `--no-block-cache` disables the trusted block cache
    // so the read path always pays decrypt + verify per block.
    let block_cache = !std::env::args().any(|a| a == "--no-block-cache");
    // Pipelined-commit ablations (see DESIGN.md §11). Single-node
    // transactions commit through the one-phase path, so
    // `--sync-decisions` is inert here but accepted for symmetry;
    // `--inline-maintenance` moves flush/compaction back onto the
    // group-commit leader.
    let sync_decisions = std::env::args().any(|a| a == "--sync-decisions");
    let inline_maintenance = std::env::args().any(|a| a == "--inline-maintenance");

    let workloads: Vec<(String, Workload, usize)> = vec![
        // TPC-C 10W is conflict-bound: the paper saturates it at ~10
        // clients (16 with stabilization).
        (
            "TPC-C (10 warehouses)".into(),
            Workload::Tpcc(TpccConfig::paper_10w()),
            base_clients.min(12),
        ),
        (
            "YCSB write-heavy (20% R)".into(),
            Workload::Ycsb(YcsbConfig::write_heavy()),
            base_clients,
        ),
        (
            "YCSB read-heavy (80% R)".into(),
            Workload::Ycsb(YcsbConfig::read_heavy()),
            base_clients,
        ),
    ];
    for (wl_label, workload, clients) in workloads {
        let cache_note = if block_cache {
            ""
        } else {
            " [block cache OFF]"
        };
        println!("\n{title} — {wl_label}, {clients} clients x {txns} txns{cache_note}");
        let mut baseline = None;
        for profile in SecurityProfile::single_node_lineup() {
            // Like the paper, each variant is measured at its own
            // saturation point: the stabilization variant overlaps its
            // 2 ms counter rounds across more clients (§VIII-D observes
            // exactly this: "Treaty w/ Enc w/ Stab becomes saturated at 64
            // clients while the other versions saturate at 32").
            let clients = if profile.stabilization {
                clients * if mode == TxnMode::Optimistic { 4 } else { 2 }
            } else {
                clients
            };
            let mut cfg = RunConfig::single_node(profile, mode, workload.clone(), clients);
            cfg.txns_per_client = txns;
            cfg.block_cache = block_cache;
            cfg.sync_decisions = sync_decisions;
            cfg.inline_maintenance = inline_maintenance;
            let (stats, accel) = run_experiment_detailed(cfg);
            print_row(&stats, baseline);
            print_accel(&accel);
            if baseline.is_none() {
                baseline = Some(stats.tps());
            }
        }
    }

    // `--trace-out FILE`: one extra small traced run of the full-security
    // single-node stack, exported as a deterministic Chrome trace + phase
    // breakdown.
    if let Some(path) = trace_out_arg() {
        let mut ycsb = YcsbConfig::balanced();
        ycsb.keys = 200;
        let mut cfg = RunConfig::single_node(
            SecurityProfile::treaty_full(),
            mode,
            Workload::Ycsb(ycsb),
            4,
        );
        cfg.txns_per_client = 25;
        write_trace_artifact(&path, cfg);
    }
}
