//! Fig. 8: network bandwidth of the seven systems across message sizes
//! (§VIII-E).
//!
//! Paper result: UDP collapses above the MTU; SCONE deteriorates
//! iPerf-TCP up to 8x but eRPC only up to 4x; Treaty networking (with
//! full security) performs like iPerf-TCP (Scone) which has none.

use treaty_bench::{run_network, NetSystem};

fn main() {
    let messages: u64 = std::env::args()
        .skip_while(|a| a != "--messages")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let sizes = [64usize, 256, 1024, 1460, 2048, 4096];

    println!("Fig. 8 — network bandwidth (Gb/s), {messages} messages per point\n");
    print!("{:<22}", "message size (B)");
    for s in sizes {
        print!("{s:>9}");
    }
    println!();
    for system in NetSystem::lineup() {
        print!("{:<22}", system.label());
        for size in sizes {
            let gbps = run_network(system, size, messages);
            print!("{gbps:>9.2}");
        }
        println!();
    }
    println!("\npaper: UDP -> 0 above MTU; TCP(Scone) up to 8x below TCP; eRPC(Scone)");
    println!("up to 4x below eRPC and ~1.5x above TCP(Scone); Treaty ~ TCP(Scone).");
}
