//! Table I: recovery overhead w.r.t. native recovery (§VIII-F).
//!
//! Paper setup: logs of 800k entries of ~100B (69 MiB plain, 91 MiB
//! encrypted). Paper result: Treaty w/o Enc 1.5x, Treaty (w/ Enc) 2.0x.

use treaty_bench::run_recovery;
use treaty_sim::SecurityProfile;

fn main() {
    let entries: usize = std::env::args()
        .skip_while(|a| a != "--entries")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(800_000);

    println!("Table I — recovery of {entries} log entries x 100 B\n");
    let variants = [
        ("Native recovery (baseline)", SecurityProfile::rocksdb()),
        ("Treaty w/o Enc", SecurityProfile::treaty_no_enc()),
        ("Treaty (w/ Enc)", SecurityProfile::treaty_full()),
    ];
    let mut baseline = None;
    for (label, profile) in variants {
        let (ns, bytes) = run_recovery(profile, entries, 100);
        let slow = baseline.map(|b: u64| ns as f64 / b as f64);
        println!(
            "  {:<28} {:>8.1} ms   log {:>6.1} MiB{}",
            label,
            ns as f64 / 1e6,
            bytes as f64 / (1024.0 * 1024.0),
            match slow {
                Some(s) => format!("   {s:.2}x slower than native"),
                None => "   (baseline)".into(),
            }
        );
        if baseline.is_none() {
            baseline = Some(ns);
        }
    }
    println!("\npaper: w/o Enc 1.5x, w/ Enc 2.0x; logs 69 MiB / 91 MiB");
}
