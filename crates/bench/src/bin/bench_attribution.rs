//! Critical-path tail-latency attribution + live introspection
//! (DESIGN.md §14).
//!
//! Runs a distributed YCSB mix on a 3-node `treaty_full` cluster with the
//! whole observability stack armed — trace sink, windowed time series and
//! flight recorder — then:
//!
//! - extracts every committed transaction's critical path and attributes
//!   it to the closed category set (lock-wait, clog-durability, network,
//!   store-read/write, tee, queueing, other), aggregated per latency
//!   bucket with slow-transaction exemplars;
//! - polls every node live over the fabric with `OBS_SNAPSHOT` and
//!   renders the `treaty-top` dashboard;
//! - leaves flight-recorder dumps (SLO breaches plus the end-of-run
//!   checkpoint) under `--flight-dir`.
//!
//! Writes a machine-readable summary to `results/BENCH_attribution.json`
//! (override with `--out FILE`) and gates on the acceptance bars: the
//! attribution must explain ≥ 95% of every committed transaction's
//! measured latency, and the tail (≥ p99) bucket must name a dominant
//! category.

use treaty_bench::{run_attribution_experiment, RunConfig};
use treaty_sim::{SecurityProfile, MILLIS};
use treaty_workload::YcsbConfig;

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let slo_ms: u64 = std::env::args()
        .skip_while(|a| a != "--slo-ms")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let out: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/BENCH_attribution.json".into());
    let flight_dir: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--flight-dir")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/flight_recorder".into());

    let mut ycsb = YcsbConfig::balanced();
    ycsb.keys = 400;
    let cfg = RunConfig {
        txns_per_client: txns,
        ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, clients)
    };
    println!(
        "Tail-latency attribution — distributed YCSB, {clients} clients x {txns} txns, \
         SLO {slo_ms} ms (virtual)\n"
    );
    let run = run_attribution_experiment(cfg, Some(slo_ms * MILLIS), Some(flight_dir.clone()));

    treaty_bench::print_row(&run.stats, None);
    println!();
    println!("{}", run.report.render());
    println!("{}", run.top);
    println!(
        "slo: {} of {} committed txns breached {} ms; {} flight dumps under {}",
        run.slo_breaches,
        run.stats.committed,
        slo_ms,
        run.flight_dumps.len(),
        flight_dir.display(),
    );

    let attribution: serde_json::Value =
        serde_json::from_str(&run.report.to_json()).expect("attribution JSON parses");
    let report = serde_json::json!({
        "bench": "attribution",
        "workload": "ycsb balanced (50%R), 3 nodes, treaty_full",
        "clients": clients,
        "txns_per_client": txns,
        "committed": run.stats.committed,
        "aborted": run.stats.aborted,
        "p50_latency_ns": run.stats.p50_latency_ns,
        "p99_latency_ns": run.stats.p99_latency_ns,
        "slo_ns": slo_ms * MILLIS,
        "slo_breaches": run.slo_breaches,
        "coverage_bp": run.report.coverage_bp(),
        "min_coverage_bp": run.report.min_coverage_bp(),
        "p99_dominant": run.report.p99_dominant().map(|c| c.name()),
        "attribution": attribution,
        "snapshots": run.snapshots,
        "flight_dumps": run.flight_dumps
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>(),
    });
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("results directory");
        }
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write BENCH_attribution.json");
    println!("-> {}", out.display());

    // Acceptance gates.
    assert!(run.stats.committed > 0, "run must commit transactions");
    assert!(
        run.report.min_coverage_bp() >= 9_500,
        "attribution must explain >= 95% of every committed transaction's \
         measured latency (min {} bp)",
        run.report.min_coverage_bp(),
    );
    let dominant = run
        .report
        .p99_dominant()
        .expect("tail bucket names a dominant category");
    println!("p99 dominated by: {}", dominant.name());
    assert!(
        !run.snapshots.is_empty()
            && run.snapshots.iter().map(|r| r.committed).sum::<u64>() == run.stats.committed,
        "live OBS_SNAPSHOT coordinator counts must add up to the run total"
    );
    assert!(
        !run.flight_dumps.is_empty(),
        "armed flight recorder must leave at least the end-of-run checkpoint"
    );
}
