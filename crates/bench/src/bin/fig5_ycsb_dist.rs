//! Fig. 5: distributed transactions under write-heavy (20%R) and
//! read-heavy (80%R) YCSB, four systems, 3 nodes, 96 clients (§VIII-C).
//!
//! Paper result: Treaty is 9-15x slower than DS-RocksDB (W-heavy) and
//! 9.5-11x (R-heavy); stabilization adds latency for writes.

use treaty_bench::{print_row, run_experiment, RunConfig};
use treaty_sim::SecurityProfile;
use treaty_workload::YcsbConfig;

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);

    for (wl_label, ycsb) in [
        ("write-heavy (20% reads)", YcsbConfig::write_heavy()),
        ("read-heavy (80% reads)", YcsbConfig::read_heavy()),
    ] {
        println!("\nFig. 5 — distributed YCSB {wl_label}, {clients} clients x {txns} txns");
        let mut baseline = None;
        for profile in SecurityProfile::distributed_lineup() {
            let clients = if profile.stabilization {
                clients * 3 / 2
            } else {
                clients
            };
            let mut cfg = RunConfig::distributed_ycsb(profile, ycsb, clients);
            cfg.txns_per_client = txns;
            let mut stats = run_experiment(cfg);
            if profile == SecurityProfile::rocksdb() {
                stats.label = "DS-RocksDB (baseline)".into();
            }
            print_row(&stats, baseline);
            if baseline.is_none() {
                baseline = Some(stats.tps());
            }
        }
    }
    println!("\npaper: W-heavy 9-15x, R-heavy 9.5-11x slowdown vs DS-RocksDB");
}
