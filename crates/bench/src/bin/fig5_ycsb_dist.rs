//! Fig. 5: distributed transactions under write-heavy (20%R) and
//! read-heavy (80%R) YCSB, four systems, 3 nodes, 96 clients (§VIII-C).
//!
//! Paper result: Treaty is 9-15x slower than DS-RocksDB (W-heavy) and
//! 9.5-11x (R-heavy); stabilization adds latency for writes.

use treaty_bench::{print_row, run_experiment, run_snapshot_experiment, RunConfig};
use treaty_sim::SecurityProfile;
use treaty_workload::YcsbConfig;

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    if std::env::args().any(|a| a == "--read-snapshot") {
        return read_snapshot_mode(clients, txns);
    }

    for (wl_label, ycsb) in [
        ("write-heavy (20% reads)", YcsbConfig::write_heavy()),
        ("read-heavy (80% reads)", YcsbConfig::read_heavy()),
    ] {
        println!("\nFig. 5 — distributed YCSB {wl_label}, {clients} clients x {txns} txns");
        let mut baseline = None;
        for profile in SecurityProfile::distributed_lineup() {
            let clients = if profile.stabilization {
                clients * 3 / 2
            } else {
                clients
            };
            let mut cfg = RunConfig::distributed_ycsb(profile, ycsb, clients);
            cfg.txns_per_client = txns;
            let mut stats = run_experiment(cfg);
            if profile == SecurityProfile::rocksdb() {
                stats.label = "DS-RocksDB (baseline)".into();
            }
            print_row(&stats, baseline);
            if baseline.is_none() {
                baseline = Some(stats.tps());
            }
        }
    }
    println!("\npaper: W-heavy 9-15x, R-heavy 9.5-11x slowdown vs DS-RocksDB");
}

/// `--read-snapshot`: YCSB-B (95%R) and YCSB-C (100%R) on full Treaty,
/// with pure-read transactions routed through the lock-free snapshot
/// path, against the locking-read ablation (DESIGN.md §12).
fn read_snapshot_mode(clients: usize, txns: usize) {
    for (wl_label, ycsb) in [
        ("YCSB-B (95% reads)", YcsbConfig::ycsb_b()),
        ("YCSB-C (100% reads)", YcsbConfig::ycsb_c()),
    ] {
        println!("\nFig. 5 + snapshot reads — {wl_label}, {clients} clients x {txns} txns");
        let mut baseline = None;
        for read_snapshot in [true, false] {
            let mut cfg =
                RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, clients);
            cfg.txns_per_client = txns;
            cfg.read_snapshot = read_snapshot;
            let (stats, report) = run_snapshot_experiment(cfg);
            print_row(&stats, baseline);
            println!(
                "      readonly p50 {:.3} ms / p99 {:.3} ms  (snapshot reads {}, lock acquires {})",
                report.readonly.p50_latency_ns as f64 / 1e6,
                report.readonly.p99_latency_ns as f64 / 1e6,
                report.snapshot_reads,
                report.lock_acquires,
            );
            if baseline.is_none() {
                baseline = Some(stats.tps());
            }
        }
    }
}
