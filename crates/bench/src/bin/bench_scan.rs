//! YCSB-E: authenticated range scans, locking vs snapshot (DESIGN.md §15).
//!
//! Runs the YCSB-E mix (95 % range scans, 5 % inserts, zipfian scan start
//! keys) on a 3-node cluster twice: once in locking mode (scans run 2PC
//! with next-key locks — serializable, phantom-free) and once with
//! `--read-snapshot` semantics (pure-scan transactions take the lock-free
//! snapshot path at the shard-stable timestamp). Both variants draw
//! identical transaction streams from the same seed, so the output is
//! byte-identical across runs with the same seed.
//!
//! Writes a machine-readable summary to `results/BENCH_scan.json`
//! (override with `--out FILE`).

use treaty_bench::{print_row, run_snapshot_experiment, RunConfig, SnapshotReport, Workload};
use treaty_sim::{BenchStats, SecurityProfile};
use treaty_workload::YcsbConfig;

fn run_variant(
    ycsb: YcsbConfig,
    read_snapshot: bool,
    clients: usize,
    txns: usize,
) -> (BenchStats, SnapshotReport) {
    let mut cfg = RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, clients);
    cfg.txns_per_client = txns;
    cfg.read_snapshot = read_snapshot;
    run_snapshot_experiment(cfg)
}

fn row_json(name: &str, overall: &BenchStats, report: &SnapshotReport) -> serde_json::Value {
    serde_json::json!({
        "variant": name,
        "committed": overall.committed,
        "aborted": overall.aborted,
        "tps": overall.tps(),
        "p50_latency_ns": overall.p50_latency_ns,
        "p99_latency_ns": overall.p99_latency_ns,
        "scans_readonly": {
            "committed": report.readonly.committed,
            "aborted": report.readonly.aborted,
            "mean_latency_ns": report.readonly.mean_latency_ns,
            "p50_latency_ns": report.readonly.p50_latency_ns,
            "p99_latency_ns": report.readonly.p99_latency_ns,
        },
        "snapshot_scans": report.snapshot_scans,
        "snapshot_reads": report.snapshot_reads,
        "stale_rejects": report.stale_rejects,
        "indoubt_rejects": report.indoubt_rejects,
        "client_retries": report.client_retries,
        "lock_acquires": report.lock_acquires,
    })
}

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let out: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/BENCH_scan.json".into());

    let mut ycsb = YcsbConfig::ycsb_e();
    ycsb.keys = 400;
    println!(
        "YCSB-E authenticated range scans — 95% scan / 5% insert, zipfian, 3 nodes, \
         {clients} clients x {txns} txns\n"
    );

    let (mut lock, lock_report) = run_variant(ycsb, false, clients, txns);
    lock.label = "ycsb-e locking (next-key locks)".into();
    print_row(&lock, None);
    let (mut snap, snap_report) = run_variant(ycsb, true, clients, txns);
    snap.label = "ycsb-e snapshot scans".into();
    print_row(&snap, Some(lock.tps()));

    println!(
        "  scan p50 {:.3} ms (locking) vs {:.3} ms (snapshot); p99 {:.3} ms vs {:.3} ms",
        lock_report.readonly.p50_latency_ns as f64 / 1e6,
        snap_report.readonly.p50_latency_ns as f64 / 1e6,
        lock_report.readonly.p99_latency_ns as f64 / 1e6,
        snap_report.readonly.p99_latency_ns as f64 / 1e6,
    );
    println!(
        "  snapshot path: {} scans served, {} stale rejects, {} in-doubt rejects, {} client retries",
        snap_report.snapshot_scans,
        snap_report.stale_rejects,
        snap_report.indoubt_rejects,
        snap_report.client_retries,
    );

    let report = serde_json::json!({
        "bench": "ycsb_e_scans",
        "workload": "ycsb-e (95% scan / 5% insert, zipfian theta 0.99), 3 nodes, treaty_full",
        "clients": clients,
        "txns_per_client": txns,
        "rows": [
            row_json("ycsb_e_locking", &lock, &lock_report),
            row_json("ycsb_e_snapshot", &snap, &snap_report),
        ],
    });
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("results directory");
        }
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write BENCH_scan.json");
    println!("-> {}", out.display());

    assert!(
        lock_report.lock_acquires > 0,
        "locking mode must take next-key locks for scans"
    );
    assert!(
        snap_report.snapshot_scans > 0,
        "snapshot mode must actually serve lock-free scans"
    );
}
