//! Lock-free snapshot reads vs the locking-read ablation (DESIGN.md §12).
//!
//! Runs the same read-heavy distributed YCSB mix twice — once with
//! `--read-snapshot` semantics (pure-read transactions take the one-round
//! snapshot path, never touching the 2PC lock table) and once with the
//! locking ablation (the same transactions run regular 2PC) — plus the
//! read-mostly social-feed workload in both modes. Both variants draw
//! identical transaction streams from the same seed.
//!
//! Writes a machine-readable summary to `results/BENCH_snapshot.json`
//! (override with `--out FILE`) and asserts that snapshot reads strictly
//! beat locking reads on both p50 and p99 of the pure-read population.

use treaty_bench::{print_row, run_snapshot_experiment, RunConfig, SnapshotReport, Workload};
use treaty_sim::{BenchStats, SecurityProfile};
use treaty_workload::{SocialConfig, YcsbConfig};

fn run_variant(
    workload: Workload,
    read_snapshot: bool,
    clients: usize,
    txns: usize,
) -> (BenchStats, SnapshotReport) {
    let mut cfg = RunConfig::distributed_ycsb(
        SecurityProfile::treaty_full(),
        YcsbConfig::read_heavy(),
        clients,
    );
    cfg.workload = workload;
    cfg.txns_per_client = txns;
    cfg.read_snapshot = read_snapshot;
    run_snapshot_experiment(cfg)
}

fn row_json(name: &str, overall: &BenchStats, report: &SnapshotReport) -> serde_json::Value {
    serde_json::json!({
        "variant": name,
        "committed": overall.committed,
        "aborted": overall.aborted,
        "tps": overall.tps(),
        "p50_latency_ns": overall.p50_latency_ns,
        "p99_latency_ns": overall.p99_latency_ns,
        "readonly": {
            "committed": report.readonly.committed,
            "aborted": report.readonly.aborted,
            "mean_latency_ns": report.readonly.mean_latency_ns,
            "p50_latency_ns": report.readonly.p50_latency_ns,
            "p99_latency_ns": report.readonly.p99_latency_ns,
        },
        "snapshot_reads": report.snapshot_reads,
        "stale_rejects": report.stale_rejects,
        "indoubt_rejects": report.indoubt_rejects,
        "client_retries": report.client_retries,
        "lock_acquires": report.lock_acquires,
    })
}

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let out: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/BENCH_snapshot.json".into());

    let mut ycsb = YcsbConfig::read_heavy();
    ycsb.keys = 400;
    println!(
        "Lock-free snapshot reads — distributed YCSB read-heavy + social feed, {clients} clients x {txns} txns\n"
    );

    let (mut snap, snap_report) = run_variant(Workload::Ycsb(ycsb), true, clients, txns);
    snap.label = "ycsb-b snapshot".into();
    print_row(&snap, None);
    let (mut lock, lock_report) = run_variant(Workload::Ycsb(ycsb), false, clients, txns);
    lock.label = "ycsb-b locking (ablation)".into();
    print_row(&lock, Some(snap.tps()));

    println!(
        "  readonly p50 {:.3} ms (snapshot) vs {:.3} ms (locking); p99 {:.3} ms vs {:.3} ms",
        snap_report.readonly.p50_latency_ns as f64 / 1e6,
        lock_report.readonly.p50_latency_ns as f64 / 1e6,
        snap_report.readonly.p99_latency_ns as f64 / 1e6,
        lock_report.readonly.p99_latency_ns as f64 / 1e6,
    );
    println!(
        "  snapshot path: {} reads served, {} stale rejects, {} in-doubt rejects, {} client retries",
        snap_report.snapshot_reads,
        snap_report.stale_rejects,
        snap_report.indoubt_rejects,
        snap_report.client_retries,
    );

    let social = SocialConfig::feed();
    let (mut social_snap, social_snap_report) =
        run_variant(Workload::Social(social), true, clients, txns);
    social_snap.label = "social snapshot".into();
    print_row(&social_snap, None);
    let (mut social_lock, social_lock_report) =
        run_variant(Workload::Social(social), false, clients, txns);
    social_lock.label = "social locking (ablation)".into();
    print_row(&social_lock, Some(social_snap.tps()));

    let report = serde_json::json!({
        "bench": "snapshot_reads",
        "workloads": "ycsb read-heavy (80%R) + social feed, 3 nodes, treaty_full",
        "clients": clients,
        "txns_per_client": txns,
        "rows": [
            row_json("ycsb_snapshot", &snap, &snap_report),
            row_json("ycsb_locking_ablation", &lock, &lock_report),
            row_json("social_snapshot", &social_snap, &social_snap_report),
            row_json("social_locking_ablation", &social_lock, &social_lock_report),
        ],
        "snapshot_faster_p50": snap_report.readonly.p50_latency_ns < lock_report.readonly.p50_latency_ns,
        "snapshot_faster_p99": snap_report.readonly.p99_latency_ns < lock_report.readonly.p99_latency_ns,
    });
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("results directory");
        }
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write BENCH_snapshot.json");
    println!("-> {}", out.display());

    assert!(
        snap_report.snapshot_reads > 0,
        "snapshot mode must actually serve lock-free reads"
    );
    assert!(
        snap_report.readonly.p50_latency_ns < lock_report.readonly.p50_latency_ns
            && snap_report.readonly.p99_latency_ns < lock_report.readonly.p99_latency_ns,
        "snapshot reads must strictly beat the locking ablation on readonly p50 and p99 \
         (p50 {} vs {}, p99 {} vs {})",
        snap_report.readonly.p50_latency_ns,
        lock_report.readonly.p50_latency_ns,
        snap_report.readonly.p99_latency_ns,
        lock_report.readonly.p99_latency_ns,
    );
}
