//! Pipelined-commit ablation (DESIGN.md §11): the same distributed YCSB
//! write-heavy workload, measured with the pipelined commit path (async
//! phase-2 dispatch + background flush/compaction, the default) and with
//! both ablations on (`--sync-decisions --inline-maintenance`, the
//! pre-pipelining behaviour).
//!
//! Writes a machine-readable summary to `results/BENCH_pipeline.json`
//! (override with `--out FILE`). Both runs are deterministic, so the
//! artifact is byte-identical across invocations.

use treaty_bench::{print_row, run_experiment, RunConfig};
use treaty_sim::{BenchStats, SecurityProfile};
use treaty_workload::YcsbConfig;

fn run_variant(
    sync_decisions: bool,
    inline_maintenance: bool,
    clients: usize,
    txns: usize,
) -> BenchStats {
    let mut ycsb = YcsbConfig::write_heavy();
    ycsb.keys = 400;
    let mut cfg = RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, clients);
    cfg.txns_per_client = txns;
    cfg.sync_decisions = sync_decisions;
    cfg.inline_maintenance = inline_maintenance;
    run_experiment(cfg)
}

fn row_json(name: &str, s: &BenchStats) -> serde_json::Value {
    serde_json::json!({
        "variant": name,
        "clients": s.clients,
        "committed": s.committed,
        "aborted": s.aborted,
        "duration_ns": s.duration_ns,
        "tps": s.tps(),
        "mean_latency_ns": s.mean_latency_ns,
        "p50_latency_ns": s.p50_latency_ns,
        "p99_latency_ns": s.p99_latency_ns,
    })
}

fn main() {
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    let out: std::path::PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| "results/BENCH_pipeline.json".into());

    println!(
        "Pipelined commit path — distributed YCSB write-heavy, {clients} clients x {txns} txns\n"
    );

    let mut pipelined = run_variant(false, false, clients, txns);
    pipelined.label = "pipelined (default)".into();
    print_row(&pipelined, None);

    let mut ablated = run_variant(true, true, clients, txns);
    ablated.label = "sync + inline (ablation)".into();
    print_row(&ablated, Some(pipelined.tps()));

    println!(
        "\np50 {:.3} ms -> {:.3} ms, p99 {:.3} ms -> {:.3} ms (ablation -> pipelined)",
        ablated.p50_latency_ns as f64 / 1e6,
        pipelined.p50_latency_ns as f64 / 1e6,
        ablated.p99_latency_ns as f64 / 1e6,
        pipelined.p99_latency_ns as f64 / 1e6,
    );

    let report = serde_json::json!({
        "bench": "pipelined_commit_path",
        "workload": "ycsb write-heavy, 3 nodes, treaty_full",
        "clients": clients,
        "txns_per_client": txns,
        "rows": [
            row_json("pipelined", &pipelined),
            row_json("sync_inline_ablation", &ablated),
        ],
        "pipelined_faster_p50": pipelined.p50_latency_ns < ablated.p50_latency_ns,
        "pipelined_faster_p99": pipelined.p99_latency_ns < ablated.p99_latency_ns,
    });
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("results directory");
        }
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write BENCH_pipeline.json");
    println!("-> {}", out.display());

    assert!(
        pipelined.p50_latency_ns < ablated.p50_latency_ns
            && pipelined.p99_latency_ns < ablated.p99_latency_ns,
        "pipelined commit path must beat the sync/inline ablation on p50 and p99"
    );
}
