//! Fig. 3: distributed transactions under TPC-C with 10 and 100
//! warehouses, four systems, 3 nodes (§VIII-C).
//!
//! Paper result: 8-11x slowdown at 10W (DS-RocksDB ~780 tps, heavy W-W
//! conflicts), 4-6x at 100W (DS-RocksDB ~1200 tps).

use treaty_bench::{print_row, run_experiment, RunConfig};
use treaty_sim::SecurityProfile;
use treaty_workload::TpccConfig;

fn main() {
    let warehouses: u32 = std::env::args()
        .skip_while(|a| a != "--warehouses")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let clients: usize = std::env::args()
        .skip_while(|a| a != "--clients")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(if warehouses >= 100 { 60 } else { 16 });
    let txns: usize = std::env::args()
        .skip_while(|a| a != "--txns")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);

    let tpcc = if warehouses >= 100 {
        TpccConfig::paper_100w()
    } else {
        TpccConfig {
            warehouses,
            ..TpccConfig::paper_10w()
        }
    };
    println!(
        "Fig. 3 — distributed TPC-C, {warehouses} warehouses, {clients} clients x {txns} txns"
    );
    let mut baseline = None;
    for profile in SecurityProfile::distributed_lineup() {
        let clients = if profile.stabilization {
            clients * 3 / 2
        } else {
            clients
        };
        let mut cfg = RunConfig::distributed_tpcc(profile, tpcc, clients);
        cfg.txns_per_client = txns;
        let mut stats = run_experiment(cfg);
        if profile == SecurityProfile::rocksdb() {
            stats.label = "DS-RocksDB (baseline)".into();
        }
        print_row(&stats, baseline);
        if baseline.is_none() {
            baseline = Some(stats.tps());
        }
    }
    println!("\npaper: 10W 8-11x slowdown; 100W 4-6x slowdown vs DS-RocksDB");
}
