//! Fig. 7: single-node *optimistic* transactions under TPC-C and YCSB,
//! six system variants (§VIII-D).
//!
//! Paper result: Treaty w/ Enc w/ Stab ~5x (TPC-C) and ~4x (YCSB) slower
//! than RocksDB; stabilization adds ~10% latency but no throughput loss.

use treaty_store::TxnMode;

#[path = "fig6_single_pessimistic.rs"]
#[allow(dead_code)] // fig6's `main` is unused when included as a module
mod pessimistic;

fn main() {
    pessimistic::run(TxnMode::Optimistic, "Fig. 7 — single-node optimistic txns");
    println!("\npaper: w/ Enc w/ Stab ~5x (TPC-C), ~4x (YCSB) vs RocksDB");
}
