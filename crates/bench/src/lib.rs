//! Benchmark harnesses regenerating every table and figure of the Treaty
//! paper (§VIII). See `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! All numbers are *virtual time* from the deterministic simulation; the
//! claims under reproduction are the ratios between system variants, not
//! absolute testbed throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use treaty_core::messages::ObsSnapshotReply;
use treaty_core::{Cluster, ClusterOptions, DistTxn};
use treaty_sched::block_on;
use treaty_sim::runtime::{self, join, spawn};
use treaty_sim::{BenchStats, CostModel, Histogram, Nanos, SecurityProfile, TeeMode, Transport};
use treaty_store::{EngineConfig, TxnMode};
use treaty_workload::ycsb::KEY_SPACE_END;
use treaty_workload::{
    KvTxn, PoissonArrivals, ScaleConfig, ScaleGenerator, SocialConfig, SocialGenerator, SocialTxn,
    TpccConfig, TpccGenerator, YcsbConfig, YcsbGenerator, YcsbOp, YcsbOpKind,
};

/// Adapter: a distributed client transaction as a workload target.
pub struct DistKv<'a, 'b> {
    txn: &'a mut DistTxn<'b>,
}

impl KvTxn for DistKv<'_, '_> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.txn.get(key).map_err(|e| e.to_string())
    }
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.txn.put(key, value).map_err(|e| e.to_string())
    }
    fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, String> {
        self.txn.scan(start, end, limit).map_err(|e| e.to_string())
    }
}

/// Workload selection for the generic runners.
#[derive(Debug, Clone)]
pub enum Workload {
    /// YCSB with the given config.
    Ycsb(YcsbConfig),
    /// TPC-C with the given config.
    Tpcc(TpccConfig),
    /// Read-mostly social feed with the given config.
    Social(SocialConfig),
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// System variant.
    pub profile: SecurityProfile,
    /// Cluster size (3 for the distributed experiments, 1 for §VIII-D).
    pub nodes: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Concurrency control.
    pub txn_mode: TxnMode,
    /// Workload.
    pub workload: Workload,
    /// Determinism seed.
    pub seed: u64,
    /// `false` = storage-less 2PC (§VIII-B).
    pub durable: bool,
    /// Trusted block cache on/off (the read-acceleration ablation knob;
    /// `false` runs with `block_cache_bytes = 0`).
    pub block_cache: bool,
    /// `true` delivers phase-2 decisions inline before the client ack
    /// (the `--sync-decisions` ablation of the pipelined commit path).
    pub sync_decisions: bool,
    /// `true` runs SSTable builds and compaction inline on the
    /// group-commit leader (the `--inline-maintenance` ablation).
    pub inline_maintenance: bool,
    /// `true` routes pure-read transactions through the lock-free
    /// snapshot-read path (`--read-snapshot`); `false` runs them through
    /// regular 2PC — the locking-read ablation. Only the snapshot-aware
    /// runner ([`run_snapshot_experiment`]) honours this.
    pub read_snapshot: bool,
}

impl RunConfig {
    /// Distributed YCSB (Fig. 5 axes).
    pub fn distributed_ycsb(profile: SecurityProfile, ycsb: YcsbConfig, clients: usize) -> Self {
        RunConfig {
            profile,
            nodes: 3,
            clients,
            txns_per_client: 20,
            txn_mode: TxnMode::Pessimistic,
            workload: Workload::Ycsb(ycsb),
            seed: 42,
            durable: true,
            block_cache: true,
            sync_decisions: false,
            inline_maintenance: false,
            read_snapshot: false,
        }
    }

    /// Distributed TPC-C (Fig. 3 axes).
    pub fn distributed_tpcc(profile: SecurityProfile, tpcc: TpccConfig, clients: usize) -> Self {
        RunConfig {
            workload: Workload::Tpcc(tpcc),
            ..Self::distributed_ycsb(profile, YcsbConfig::balanced(), clients)
        }
    }

    /// Single-node (Figs. 6 and 7 axes).
    pub fn single_node(
        profile: SecurityProfile,
        mode: TxnMode,
        workload: Workload,
        clients: usize,
    ) -> Self {
        RunConfig {
            profile,
            nodes: 1,
            clients,
            txns_per_client: 20,
            txn_mode: mode,
            workload,
            seed: 42,
            durable: true,
            block_cache: true,
            sync_decisions: false,
            inline_maintenance: false,
            read_snapshot: false,
        }
    }

    /// Storage-less 2PC (Fig. 4 axes).
    pub fn protocol_only(profile: SecurityProfile, clients: usize) -> Self {
        RunConfig {
            durable: false,
            txns_per_client: 10,
            ..Self::distributed_ycsb(profile, YcsbConfig::balanced(), clients)
        }
    }
}

/// Pre-loads initial rows directly into the owning stores (outside the
/// measured window), in batched transactions.
fn preload(cluster: &Cluster, rows: Vec<(Vec<u8>, Vec<u8>)>) {
    use treaty_store::EngineTxn as _;
    let map = cluster.shard_map().clone();
    let endpoints = cluster.node_endpoints();
    let mut per_node: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); endpoints.len()];
    for (k, v) in rows {
        let owner = map.owner(&k);
        let idx = endpoints
            .iter()
            .position(|e| *e == owner)
            .expect("owner exists");
        per_node[idx].push((k, v));
    }
    for (idx, rows) in per_node.into_iter().enumerate() {
        let store = match cluster.store(idx) {
            Some(s) => s.clone(),
            None => continue,
        };
        for chunk in rows.chunks(512) {
            let mut txn = store.begin_mode(TxnMode::Pessimistic);
            for (k, v) in chunk {
                txn.put(k, v).expect("preload put");
            }
            txn.commit().expect("preload commit");
        }
    }
}

/// Read-acceleration counters aggregated across the cluster's stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelReport {
    /// Point-read block fetches served from the trusted block cache.
    pub block_cache_hits: u64,
    /// Point-read block fetches that went to storage.
    pub block_cache_misses: u64,
    /// Lookups short-circuited by per-table Bloom filters.
    pub bloom_negatives: u64,
    /// Lookups the filters let through although the key was absent.
    pub bloom_false_positives: u64,
    /// Point lookups rejected by SSTable fence keys (key outside the
    /// table's `[min, max]` span) without touching a block.
    pub fence_gap_rejects: u64,
    /// Range scans served by the authenticated merge iterator.
    pub scans: u64,
}

impl AccelReport {
    /// Block-cache hit rate over all point-read block fetches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.block_cache_hits + self.block_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.block_cache_hits as f64 / total as f64
        }
    }
}

/// Deterministic observability artifacts from a traced run.
///
/// Everything in here derives from the virtual clock and the per-`Sim`
/// trace sink, so two runs with the same [`RunConfig`] produce
/// byte-identical reports.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Chrome `trace_event` JSON — load in Perfetto or `chrome://tracing`.
    pub chrome_json: String,
    /// Virtual-time phase-breakdown table (the Fig. 4 decomposition).
    pub phase_breakdown: String,
    /// Rendered metrics-registry snapshot (counters, gauges, histograms).
    pub metrics: String,
}

impl TraceReport {
    /// Writes the Chrome trace to `path` and the breakdown/metrics text
    /// reports to sidecar files (`<path>.breakdown.txt`, `<path>.metrics.txt`).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.chrome_json)?;
        let mut breakdown = path.as_os_str().to_owned();
        breakdown.push(".breakdown.txt");
        std::fs::write(&breakdown, &self.phase_breakdown)?;
        let mut metrics = path.as_os_str().to_owned();
        metrics.push(".metrics.txt");
        std::fs::write(&metrics, &self.metrics)
    }
}

/// Runs one closed-loop experiment and returns its stats.
///
/// # Panics
///
/// Panics if the cluster fails to boot or the simulation errors.
pub fn run_experiment(cfg: RunConfig) -> BenchStats {
    run_experiment_detailed(cfg).0
}

/// Like [`run_experiment`], additionally returning the read-acceleration
/// counters (block-cache hit rate, Bloom-filter effectiveness) summed over
/// the cluster's stores.
///
/// # Panics
///
/// Panics if the cluster fails to boot or the simulation errors.
pub fn run_experiment_detailed(cfg: RunConfig) -> (BenchStats, AccelReport) {
    let (stats, accel, _) = run_experiment_inner(cfg, false);
    (stats, accel)
}

/// Like [`run_experiment_detailed`], but with the deterministic tracing hub
/// installed for the whole run: additionally returns the Chrome trace,
/// phase breakdown and metrics snapshot.
///
/// # Panics
///
/// Panics if the cluster fails to boot or the simulation errors.
pub fn run_experiment_traced(cfg: RunConfig) -> (BenchStats, AccelReport, TraceReport) {
    let (stats, accel, trace) = run_experiment_inner(cfg, true);
    (stats, accel, trace.expect("tracing was enabled"))
}

fn run_experiment_inner(
    cfg: RunConfig,
    trace: bool,
) -> (BenchStats, AccelReport, Option<TraceReport>) {
    let label = cfg.profile.label().to_string();
    #[allow(clippy::type_complexity)]
    let out: Arc<Mutex<Option<(BenchStats, AccelReport, Option<TraceReport>)>>> =
        Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let dir = tempfile::tempdir().expect("bench tempdir");
    let path = dir.path().to_path_buf();

    block_on(move || {
        // Install the observability hub first, from the root fiber, so every
        // fiber the cluster spawns inherits it.
        let obs = if trace {
            let obs = treaty_obs::Obs::with_default_cap();
            treaty_sim::obs::install(&obs);
            Some(obs)
        } else {
            None
        };
        let mut options = ClusterOptions::new(cfg.profile, path);
        options.nodes = cfg.nodes;
        options.txn_mode = cfg.txn_mode;
        options.durable = cfg.durable;
        options.seed = cfg.seed;
        options.engine_config = EngineConfig::default();
        if !cfg.block_cache {
            options.engine_config.block_cache_bytes = 0;
        }
        options.sync_decisions = cfg.sync_decisions;
        options.engine_config.inline_maintenance = cfg.inline_maintenance;
        let cluster = Arc::new(Cluster::start(options).expect("cluster boots"));

        // Load phase (unmeasured).
        if cfg.durable {
            match &cfg.workload {
                Workload::Ycsb(ycsb) => {
                    let mut seeder = YcsbGenerator::new(*ycsb, cfg.seed);
                    let rows: Vec<_> = YcsbGenerator::all_keys(ycsb)
                        .map(|k| {
                            let v = seeder.next_value();
                            (k, v)
                        })
                        .collect();
                    preload(&cluster, rows);
                }
                Workload::Tpcc(tpcc) => {
                    preload(&cluster, TpccGenerator::initial_rows(tpcc));
                }
                Workload::Social(social) => {
                    let rows: Vec<_> = SocialGenerator::all_keys(social)
                        .map(|k| (k, vec![b'i'; social.value_size]))
                        .collect();
                    preload(&cluster, rows);
                }
            }
        }

        // Measured window.
        let t0 = runtime::now();
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Mutex::new(Histogram::new()));
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let cluster = Arc::clone(&cluster);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let hist = Arc::clone(&hist);
            let cfg = cfg.clone();
            handles.push(spawn(move || {
                runtime::set_tag("bench-client");
                let client = cluster.client();
                let coordinator = 1 + (c % cfg.nodes) as u32;
                let mut ycsb = match &cfg.workload {
                    Workload::Ycsb(y) => Some(YcsbGenerator::new(*y, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut tpcc = match &cfg.workload {
                    Workload::Tpcc(t) => Some(TpccGenerator::new(*t, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut social = match &cfg.workload {
                    Workload::Social(s) => {
                        Some(SocialGenerator::new(*s, cfg.seed ^ (c as u64 + 1)))
                    }
                    _ => None,
                };
                for _ in 0..cfg.txns_per_client {
                    let start = runtime::now();
                    let mut txn = client.begin(coordinator);
                    let body = {
                        let mut kv = DistKv { txn: &mut txn };
                        match (&mut ycsb, &mut tpcc, &mut social) {
                            (Some(g), _, _) => g.run_txn(&mut kv),
                            (_, Some(g), _) => g.run_txn(&mut kv).map(|_| ()),
                            (_, _, Some(g)) => g.run_txn(&mut kv),
                            _ => unreachable!(),
                        }
                    };
                    let ok = body.is_ok() && txn.commit().is_ok();
                    let elapsed = runtime::now() - start;
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                        hist.lock().record(elapsed);
                        treaty_sim::obs::hist_record("client.txn_latency_ns", elapsed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            join(h);
        }
        let duration = runtime::now() - t0;
        let stats = BenchStats::from_histogram(
            label,
            cfg.clients,
            committed.load(Ordering::Relaxed),
            aborted.load(Ordering::Relaxed),
            duration.max(1),
            &mut hist.lock(),
        );
        let mut accel = AccelReport::default();
        for idx in 0..cfg.nodes {
            if let Some(store) = cluster.store(idx) {
                let es = store.stats();
                accel.block_cache_hits += es.block_cache_hits;
                accel.block_cache_misses += es.block_cache_misses;
                accel.bloom_negatives += es.bloom_negatives;
                accel.bloom_false_positives += es.bloom_false_positives;
                accel.fence_gap_rejects += es.fence_gap_rejects;
                accel.scans += es.scans;
            }
        }
        let trace_report = obs.as_ref().map(|obs| {
            absorb_cluster_stats(obs, &cluster, cfg.nodes);
            let events = obs.events();
            TraceReport {
                chrome_json: treaty_obs::export::chrome_trace_json(&events),
                phase_breakdown: treaty_obs::export::phase_breakdown(&events),
                metrics: obs.metrics().snapshot().render(),
            }
        });
        *out2.lock() = Some((stats, accel, trace_report));
    });

    let result = out.lock().take().expect("experiment produced stats");
    result
}

/// Mirrors the legacy per-subsystem counter structs ([`treaty_core`]'s
/// `NodeStats`, the engine's `EngineStats`, the fabric's `FabricStats`)
/// into the metrics registry, so one snapshot carries every counter the
/// stack exposes.
fn absorb_cluster_stats(obs: &Arc<treaty_obs::Obs>, cluster: &Cluster, nodes: usize) {
    let m = obs.metrics();
    let mut node_totals = (0u64, 0u64, 0u64, 0u64);
    let mut engine = treaty_store::EngineStats::default();
    for idx in 0..nodes {
        let ns = cluster.node(idx).stats();
        node_totals.0 += ns.committed;
        node_totals.1 += ns.aborted;
        node_totals.2 += ns.participant_ops;
        node_totals.3 += ns.decision_retries;
        if let Some(store) = cluster.store(idx) {
            let es = store.stats();
            engine.commits += es.commits;
            engine.aborts += es.aborts;
            engine.gets += es.gets;
            engine.flushes += es.flushes;
            engine.compactions += es.compactions;
            engine.files_deleted += es.files_deleted;
            engine.group_commits += es.group_commits;
            engine.grouped_txns += es.grouped_txns;
            engine.block_cache_hits += es.block_cache_hits;
            engine.block_cache_misses += es.block_cache_misses;
            engine.bloom_negatives += es.bloom_negatives;
            engine.bloom_false_positives += es.bloom_false_positives;
            engine.fence_gap_rejects += es.fence_gap_rejects;
            engine.scans += es.scans;
        }
    }
    m.gauge_set("core.nodes.committed", node_totals.0);
    m.gauge_set("core.nodes.aborted", node_totals.1);
    m.gauge_set("core.nodes.participant_ops", node_totals.2);
    m.gauge_set("core.nodes.decision_retries", node_totals.3);
    m.gauge_set("store.commits", engine.commits);
    m.gauge_set("store.aborts", engine.aborts);
    m.gauge_set("store.gets", engine.gets);
    m.gauge_set("store.flushes", engine.flushes);
    m.gauge_set("store.compactions", engine.compactions);
    m.gauge_set("store.files_deleted", engine.files_deleted);
    m.gauge_set("store.group_commits", engine.group_commits);
    m.gauge_set("store.grouped_txns", engine.grouped_txns);
    m.gauge_set("store.block_cache.hits", engine.block_cache_hits);
    m.gauge_set("store.block_cache.misses", engine.block_cache_misses);
    m.gauge_set("store.bloom.negatives", engine.bloom_negatives);
    m.gauge_set("store.bloom.false_positives", engine.bloom_false_positives);
    m.gauge_set("store.fence_gap_rejects", engine.fence_gap_rejects);
    m.gauge_set("store.scans", engine.scans);
    let fs = cluster.fabric().stats();
    m.gauge_set("fabric.sent", fs.sent);
    m.gauge_set("fabric.delivered", fs.delivered);
    m.gauge_set("fabric.dropped_adversary", fs.dropped_adversary);
    m.gauge_set("fabric.dropped_mtu", fs.dropped_mtu);
    m.gauge_set("fabric.dropped_unreachable", fs.dropped_unreachable);
    m.gauge_set("fabric.tampered", fs.tampered);
    m.gauge_set("fabric.duplicated", fs.duplicated);
    m.gauge_set("obs.dropped_events", obs.dropped());
}

// ---- snapshot reads: lock-free read-only transactions ------------------------

/// Outcome of a snapshot-aware run ([`run_snapshot_experiment`]): the
/// pure-read sub-population's latency stats plus the snapshot-path
/// counters, all drawn from the metrics registry.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Latency stats over pure-read transactions only.
    pub readonly: BenchStats,
    /// Server-side lock-free snapshot reads served.
    pub snapshot_reads: u64,
    /// Server-side lock-free snapshot range scans served.
    pub snapshot_scans: u64,
    /// Snapshot reads rejected because the requested timestamp outran the
    /// shard's stable read timestamp.
    pub stale_rejects: u64,
    /// Snapshot reads rejected because a key overlapped an in-doubt
    /// prepared transaction.
    pub indoubt_rejects: u64,
    /// Client-side whole-transaction snapshot retries.
    pub client_retries: u64,
    /// Lock-table acquisitions during the measured window (excludes the
    /// preload phase). Zero when every transaction was a snapshot read.
    pub lock_acquires: u64,
}

/// Runs a closed-loop experiment that *classifies* transactions: pure-read
/// transactions take the lock-free snapshot path when
/// [`RunConfig::read_snapshot`] is set, or regular 2PC when it is not (the
/// locking-read ablation); mixed transactions always run 2PC. Returns the
/// overall stats plus the pure-read sub-population's stats and the
/// snapshot counters.
///
/// Both modes draw identical transaction streams from the same seed, so
/// the two variants read exactly the same keys in the same order — the
/// only difference is the read path.
///
/// # Panics
///
/// Panics if the cluster fails to boot or the simulation errors.
pub fn run_snapshot_experiment(cfg: RunConfig) -> (BenchStats, SnapshotReport) {
    let label = cfg.profile.label().to_string();
    let mode = if cfg.read_snapshot {
        "snapshot"
    } else {
        "locking"
    };
    #[allow(clippy::type_complexity)]
    let out: Arc<Mutex<Option<(BenchStats, SnapshotReport)>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let dir = tempfile::tempdir().expect("bench tempdir");
    let path = dir.path().to_path_buf();

    block_on(move || {
        // The counters live in the metrics registry, so the hub is always
        // installed for this runner.
        let obs = treaty_obs::Obs::with_default_cap();
        treaty_sim::obs::install(&obs);
        let mut options = ClusterOptions::new(cfg.profile, path);
        options.nodes = cfg.nodes;
        options.txn_mode = cfg.txn_mode;
        options.durable = cfg.durable;
        options.seed = cfg.seed;
        options.engine_config = EngineConfig::default();
        if !cfg.block_cache {
            options.engine_config.block_cache_bytes = 0;
        }
        options.sync_decisions = cfg.sync_decisions;
        options.engine_config.inline_maintenance = cfg.inline_maintenance;
        let cluster = Arc::new(Cluster::start(options).expect("cluster boots"));

        // Load phase (unmeasured).
        if cfg.durable {
            match &cfg.workload {
                Workload::Ycsb(ycsb) => {
                    let mut seeder = YcsbGenerator::new(*ycsb, cfg.seed);
                    let rows: Vec<_> = YcsbGenerator::all_keys(ycsb)
                        .map(|k| (k, seeder.next_value()))
                        .collect();
                    preload(&cluster, rows);
                }
                Workload::Tpcc(tpcc) => {
                    preload(&cluster, TpccGenerator::initial_rows(tpcc));
                }
                Workload::Social(social) => {
                    let rows: Vec<_> = SocialGenerator::all_keys(social)
                        .map(|k| (k, vec![b'i'; social.value_size]))
                        .collect();
                    preload(&cluster, rows);
                }
            }
        }
        // Preload commits acquire locks too; the report covers only the
        // measured window.
        let lock_baseline = obs.metrics().counter("store.lock_acquire");

        // Measured window.
        let t0 = runtime::now();
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let ro_committed = Arc::new(AtomicU64::new(0));
        let ro_aborted = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Mutex::new(Histogram::new()));
        let ro_hist = Arc::new(Mutex::new(Histogram::new()));
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let cluster = Arc::clone(&cluster);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let ro_committed = Arc::clone(&ro_committed);
            let ro_aborted = Arc::clone(&ro_aborted);
            let hist = Arc::clone(&hist);
            let ro_hist = Arc::clone(&ro_hist);
            let cfg = cfg.clone();
            handles.push(spawn(move || {
                runtime::set_tag("bench-client");
                let client = cluster.client();
                let coordinator = 1 + (c % cfg.nodes) as u32;
                let mut ycsb = match &cfg.workload {
                    Workload::Ycsb(y) => Some(YcsbGenerator::new(*y, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut tpcc = match &cfg.workload {
                    Workload::Tpcc(t) => Some(TpccGenerator::new(*t, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut social = match &cfg.workload {
                    Workload::Social(s) => {
                        Some(SocialGenerator::new(*s, cfg.seed ^ (c as u64 + 1)))
                    }
                    _ => None,
                };
                for _ in 0..cfg.txns_per_client {
                    // Classify the next transaction: `Some(ops)` = pure
                    // read (point gets and/or range scans), `None` = runs
                    // the regular mixed path below.
                    let read_set: Option<Vec<YcsbOp>> = match (&mut ycsb, &mut social) {
                        (Some(g), _) => {
                            let ops = g.next_txn();
                            if ops.iter().all(|op| {
                                matches!(op.kind, YcsbOpKind::Read | YcsbOpKind::Scan { .. })
                            }) {
                                Some(ops)
                            } else {
                                // Mixed: run it inline, drawing values in
                                // the same order as `run_txn` would.
                                let start = runtime::now();
                                let mut txn = client.begin(coordinator);
                                let mut body = Ok(());
                                for op in ops {
                                    let r = match op.kind {
                                        YcsbOpKind::Read => txn.get(&op.key).map(|_| ()),
                                        YcsbOpKind::Update | YcsbOpKind::Insert => {
                                            let v = g.next_value();
                                            txn.put(&op.key, &v)
                                        }
                                        YcsbOpKind::Scan { len } => txn
                                            .scan(&op.key, KEY_SPACE_END, len as usize)
                                            .map(|_| ()),
                                    };
                                    if r.is_err() {
                                        body = r;
                                        break;
                                    }
                                }
                                let ok = body.is_ok() && txn.commit().is_ok();
                                record_txn(&committed, &aborted, &hist, start, ok);
                                continue;
                            }
                        }
                        (_, Some(g)) => match g.next_txn() {
                            SocialTxn::LoadFeed { keys } => Some(
                                keys.into_iter()
                                    .map(|key| YcsbOp {
                                        key,
                                        kind: YcsbOpKind::Read,
                                    })
                                    .collect(),
                            ),
                            SocialTxn::Post { key, value } => {
                                let start = runtime::now();
                                let mut txn = client.begin(coordinator);
                                let ok = txn.put(&key, &value).is_ok() && txn.commit().is_ok();
                                record_txn(&committed, &aborted, &hist, start, ok);
                                continue;
                            }
                        },
                        _ => None,
                    };
                    let start = runtime::now();
                    let ok = match read_set {
                        Some(ops) if cfg.read_snapshot => snapshot_readonly_txn(&client, &ops),
                        Some(ops) => {
                            // Locking ablation: identical reads through 2PC.
                            let mut txn = client.begin(coordinator);
                            let mut body = Ok(());
                            for op in &ops {
                                let r = match op.kind {
                                    YcsbOpKind::Scan { len } => txn
                                        .scan(&op.key, KEY_SPACE_END, len as usize)
                                        .map(|_| ()),
                                    _ => txn.get(&op.key).map(|_| ()),
                                };
                                if let Err(e) = r {
                                    body = Err(e);
                                    break;
                                }
                            }
                            body.is_ok() && txn.commit().is_ok()
                        }
                        None => {
                            // TPC-C (no pure-read classification).
                            let mut txn = client.begin(coordinator);
                            let body = {
                                let mut kv = DistKv { txn: &mut txn };
                                match &mut tpcc {
                                    Some(g) => g.run_txn(&mut kv).map(|_| ()),
                                    None => unreachable!(),
                                }
                            };
                            let ok = body.is_ok() && txn.commit().is_ok();
                            record_txn(&committed, &aborted, &hist, start, ok);
                            continue;
                        }
                    };
                    let elapsed = runtime::now() - start;
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                        ro_committed.fetch_add(1, Ordering::Relaxed);
                        hist.lock().record(elapsed);
                        ro_hist.lock().record(elapsed);
                        treaty_sim::obs::hist_record("client.readonly_latency_ns", elapsed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                        ro_aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            join(h);
        }
        let duration = runtime::now() - t0;
        let stats = BenchStats::from_histogram(
            format!("{label} ({mode})"),
            cfg.clients,
            committed.load(Ordering::Relaxed),
            aborted.load(Ordering::Relaxed),
            duration.max(1),
            &mut hist.lock(),
        );
        let readonly = BenchStats::from_histogram(
            format!("{label} readonly ({mode})"),
            cfg.clients,
            ro_committed.load(Ordering::Relaxed),
            ro_aborted.load(Ordering::Relaxed),
            duration.max(1),
            &mut ro_hist.lock(),
        );
        let m = obs.metrics();
        let report = SnapshotReport {
            readonly,
            snapshot_reads: m.counter("core.snapshot_reads"),
            snapshot_scans: m.counter("core.snapshot_scans"),
            stale_rejects: m.counter("core.snapshot_stale_reject"),
            indoubt_rejects: m.counter("core.snapshot_indoubt_reject"),
            client_retries: m.counter("client.snapshot_retries"),
            lock_acquires: m
                .counter("store.lock_acquire")
                .saturating_sub(lock_baseline),
        };
        *out2.lock() = Some((stats, report));
    });

    let result = out.lock().take().expect("experiment produced stats");
    result
}

/// Runs one pure-read transaction (point gets and range scans) on the
/// lock-free snapshot path, retrying with a fresh snapshot on
/// [`treaty_core::TreatyError::SnapshotRetry`] — the same policy as
/// `TreatyClient::snapshot_read`, but spanning gets *and* scans in one
/// consistent snapshot.
fn snapshot_readonly_txn(client: &treaty_core::TreatyClient, ops: &[YcsbOp]) -> bool {
    const ATTEMPTS: u32 = 8;
    for attempt in 0..ATTEMPTS {
        let outcome = (|| {
            let mut txn = client.begin_read_only()?;
            for op in ops {
                match op.kind {
                    YcsbOpKind::Scan { len } => {
                        txn.scan(&op.key, KEY_SPACE_END, len as usize)?;
                    }
                    _ => {
                        txn.get(&op.key)?;
                    }
                }
            }
            txn.finish()
        })();
        match outcome {
            Ok(()) => return true,
            Err(treaty_core::TreatyError::SnapshotRetry(_)) => {
                treaty_sim::obs::counter_add("client.snapshot_retries", 1);
                if treaty_sim::runtime::in_fiber() {
                    treaty_sim::runtime::sleep((u64::from(attempt) + 1) * treaty_sim::MILLIS / 4);
                }
            }
            Err(_) => return false,
        }
    }
    false
}

/// Shared bookkeeping for one finished transaction in the snapshot runner.
fn record_txn(
    committed: &AtomicU64,
    aborted: &AtomicU64,
    hist: &Mutex<Histogram>,
    start: Nanos,
    ok: bool,
) {
    let elapsed = runtime::now() - start;
    if ok {
        committed.fetch_add(1, Ordering::Relaxed);
        hist.lock().record(elapsed);
        treaty_sim::obs::hist_record("client.txn_latency_ns", elapsed);
    } else {
        aborted.fetch_add(1, Ordering::Relaxed);
    }
}

// ---- Fig. 8: network bandwidth -----------------------------------------------

/// The seven systems of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSystem {
    /// iPerf over kernel UDP.
    IperfUdp(TeeMode),
    /// iPerf over kernel TCP.
    IperfTcp(TeeMode),
    /// eRPC over DPDK, no security.
    Erpc(TeeMode),
    /// Treaty's full secure networking (eRPC + SCONE + secure messages).
    TreatyNetworking,
}

impl NetSystem {
    /// Paper legend label.
    pub fn label(&self) -> &'static str {
        match self {
            NetSystem::IperfUdp(TeeMode::Native) => "iPerf UDP",
            NetSystem::IperfUdp(TeeMode::Scone) => "iPerf UDP (Scone)",
            NetSystem::IperfTcp(TeeMode::Native) => "iPerf TCP",
            NetSystem::IperfTcp(TeeMode::Scone) => "iPerf TCP (Scone)",
            NetSystem::Erpc(TeeMode::Native) => "eRPC",
            NetSystem::Erpc(TeeMode::Scone) => "eRPC (Scone)",
            NetSystem::TreatyNetworking => "Treaty networking",
        }
    }

    /// All seven, in paper order.
    pub fn lineup() -> [NetSystem; 7] {
        [
            NetSystem::IperfUdp(TeeMode::Native),
            NetSystem::IperfUdp(TeeMode::Scone),
            NetSystem::IperfTcp(TeeMode::Native),
            NetSystem::IperfTcp(TeeMode::Scone),
            NetSystem::Erpc(TeeMode::Native),
            NetSystem::Erpc(TeeMode::Scone),
            NetSystem::TreatyNetworking,
        ]
    }

    fn params(&self) -> (Transport, TeeMode, treaty_crypto::WireCrypto) {
        use treaty_crypto::WireCrypto;
        match self {
            NetSystem::IperfUdp(t) => (Transport::KernelUdp, *t, WireCrypto::Plain),
            NetSystem::IperfTcp(t) => (Transport::KernelTcp, *t, WireCrypto::Plain),
            NetSystem::Erpc(t) => (Transport::Dpdk, *t, WireCrypto::Plain),
            NetSystem::TreatyNetworking => (Transport::Dpdk, TeeMode::Scone, WireCrypto::Full),
        }
    }
}

/// Streams `messages` one-way messages of `msg_bytes` and returns the
/// goodput in Gbit/s (0.0 when everything is dropped, as for UDP > MTU).
pub fn run_network(system: NetSystem, msg_bytes: usize, messages: u64) -> f64 {
    use treaty_crypto::{KeyHierarchy, MsgKind, TxMeta};
    use treaty_net::{EndpointConfig, Fabric, Rpc, RpcConfig};

    let (transport, tee, crypto) = system.params();
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);
    block_on(move || {
        let fabric = Fabric::new(CostModel::default(), 7);
        let key = KeyHierarchy::for_testing().network;
        let net_cfg = EndpointConfig {
            transport,
            tee,
            link_gbps: 40,
        };

        let received_bytes = Arc::new(AtomicU64::new(0));
        let received_msgs = Arc::new(AtomicU64::new(0));
        let last_arrival = Arc::new(AtomicU64::new(0));

        let server = Rpc::new(
            &fabric,
            1,
            RpcConfig {
                endpoint: net_cfg,
                crypto,
                key,
                cores: None,
                timeout: treaty_net::DEFAULT_RPC_TIMEOUT,
            },
        );
        {
            let received_bytes = Arc::clone(&received_bytes);
            let received_msgs = Arc::clone(&received_msgs);
            let last_arrival = Arc::clone(&last_arrival);
            server.register_handler(
                0x55,
                false,
                Arc::new(move |_, _, payload| {
                    received_bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    received_msgs.fetch_add(1, Ordering::Relaxed);
                    last_arrival.store(runtime::now(), Ordering::Relaxed);
                    None
                }),
            );
        }
        server.start();

        let client = Rpc::new(
            &fabric,
            2,
            RpcConfig {
                endpoint: net_cfg,
                crypto,
                key,
                cores: None,
                timeout: treaty_net::DEFAULT_RPC_TIMEOUT,
            },
        );

        let t0 = runtime::now();
        let payload = vec![0xA5u8; msg_bytes];
        for i in 0..messages {
            let meta = TxMeta {
                node_id: 2,
                tx_id: 1,
                op_id: i,
                kind: MsgKind::Data,
            };
            client.send_oneway(1, 0x55, &meta, &payload);
        }
        // Drain: wait until deliveries go quiet.
        let mut stable = 0;
        let mut last_seen = 0;
        while stable < 5 {
            runtime::sleep(treaty_sim::MILLIS);
            let seen = received_msgs.load(Ordering::Relaxed);
            if seen == messages {
                break;
            }
            if seen == last_seen {
                stable += 1;
            } else {
                stable = 0;
                last_seen = seen;
            }
        }
        let bytes = received_bytes.load(Ordering::Relaxed);
        let end = last_arrival.load(Ordering::Relaxed).max(t0 + 1);
        let duration = (end - t0) as f64;
        *out2.lock() = bytes as f64 * 8.0 / duration; // bits per ns == Gbit/s
    });
    let gbps = *out.lock();
    gbps
}

// ---- Table I: recovery -------------------------------------------------------

/// Builds a log of `entries` records of `entry_bytes` each, then measures
/// the virtual time to replay and verify it. Returns `(virtual_ns,
/// log_file_bytes)`.
pub fn run_recovery(profile: SecurityProfile, entries: usize, entry_bytes: usize) -> (Nanos, u64) {
    use treaty_store::env::Env;
    use treaty_store::log;

    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let out2 = Arc::clone(&out);
    let dir = tempfile::tempdir().expect("tempdir");
    let path = dir.path().to_path_buf();
    block_on(move || {
        let env = Env::for_testing(profile, &path);
        let file = path.join("wal-recovery");
        let writer =
            log::LogWriter::open(Arc::clone(&env), "wal-recovery", &file, 0).expect("open");
        // Build phase (unmeasured): batched appends.
        let record = vec![0x42u8; entry_bytes];
        let batch: Vec<Vec<u8>> = (0..1000).map(|_| record.clone()).collect();
        let mut remaining = entries;
        while remaining > 0 {
            let n = remaining.min(1000);
            writer.append_batch(&batch[..n]).expect("append");
            remaining -= n;
        }
        let log_bytes = std::fs::metadata(&file).expect("meta").len();

        // Measured: replay + verification (what recovery does).
        let t0 = runtime::now();
        let replay = log::replay(&env, "wal-recovery", &file, 0).expect("replay");
        assert_eq!(replay.records.len(), entries);
        let elapsed = runtime::now() - t0;
        *out2.lock() = (elapsed, log_bytes);
    });
    let r = *out.lock();
    r
}

// ---- trace artifacts ---------------------------------------------------------

/// Parses the `--trace-out FILE` flag shared by the bench binaries.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    std::env::args()
        .skip_while(|a| a != "--trace-out")
        .nth(1)
        .map(Into::into)
}

/// Runs `cfg` with the tracing hub installed and writes the Chrome trace
/// plus the breakdown/metrics sidecars to `path`, printing the text
/// reports. The run is deterministic: the same `cfg` always produces
/// byte-identical artifacts.
///
/// # Panics
///
/// Panics if the experiment fails or the artifacts cannot be written.
pub fn write_trace_artifact(path: &std::path::Path, cfg: RunConfig) {
    let (stats, _accel, trace) = run_experiment_traced(cfg);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("trace output directory");
        }
    }
    trace.write_to(path).expect("write trace artifacts");
    println!(
        "\ntrace: {} committed / {} aborted txns -> {}",
        stats.committed,
        stats.aborted,
        path.display()
    );
    println!("\n{}", trace.phase_breakdown);
    println!("{}", trace.metrics);
}

// ---- tail-latency attribution + treaty-top (DESIGN.md §14) -------------------

/// Width of one windowed time-series bucket in the attribution runner.
pub const SERIES_WINDOW: Nanos = 5 * treaty_sim::MILLIS;

/// Outcome of [`run_attribution_experiment`]: the critical-path
/// attribution report, the usual trace artifacts, the windowed time-series
/// rendering, one live `OBS_SNAPSHOT` reply per node (polled over the
/// fabric after the measured window), the rendered `treaty-top` dashboard,
/// and any flight-recorder dumps written along the way.
///
/// Everything except `flight_dumps` paths derives from the virtual clock,
/// so two runs with the same config are byte-identical.
#[derive(Debug, Clone)]
pub struct AttributionRun {
    /// Overall run stats.
    pub stats: BenchStats,
    /// Per-transaction critical-path attribution.
    pub report: treaty_obs::AttributionReport,
    /// Chrome trace + phase breakdown + metrics snapshot.
    pub trace: TraceReport,
    /// Rendered windowed time series (virtual-time buckets).
    pub series: String,
    /// One `OBS_SNAPSHOT` reply per node, in endpoint order.
    pub snapshots: Vec<ObsSnapshotReply>,
    /// Rendered `treaty-top` dashboard over `snapshots`.
    pub top: String,
    /// Committed transactions whose measured latency exceeded the SLO.
    pub slo_breaches: u64,
    /// Flight-recorder dump files under the flight directory, sorted.
    pub flight_dumps: Vec<std::path::PathBuf>,
}

/// Renders the `treaty-top` live-cluster dashboard from one round of
/// `OBS_SNAPSHOT` replies: MVCC frontier, queue depths, backpressure,
/// prepared-table occupancy and cache hit rate per node. Integer-only
/// (hit rate in hundredths of a percent), so the rendering is
/// deterministic.
pub fn treaty_top(snapshots: &[ObsSnapshotReply]) -> String {
    use std::fmt::Write as _;
    let now = snapshots.iter().map(|r| r.ts).max().unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "treaty-top — {} nodes @ {} ns (virtual)",
        snapshots.len(),
        now
    );
    let _ = writeln!(
        s,
        "{:>4} {:>12} {:>5} {:>5} {:>4} {:>8} {:>8} {:>7} {:>9} {:>8} {:>7}",
        "node",
        "stable_ts",
        "decq",
        "flush",
        "bp",
        "prepared",
        "commit",
        "abort",
        "part_ops",
        "retries",
        "cache%"
    );
    for r in snapshots {
        let fetches = r.block_cache_hits + r.block_cache_misses;
        let hit_bp = if fetches == 0 {
            0
        } else {
            r.block_cache_hits * 10_000 / fetches
        };
        let bp = match r.backpressure {
            0 => "ok",
            1 => "slow",
            _ => "stop",
        };
        let _ = writeln!(
            s,
            "{:>4} {:>12} {:>5} {:>5} {:>4} {:>8} {:>8} {:>7} {:>9} {:>8} {:>4}.{:02}",
            r.node,
            r.stable_ts,
            r.decision_queue_depth,
            r.flush_backlog,
            bp,
            r.prepared_txns,
            r.committed,
            r.aborted,
            r.participant_ops,
            r.decision_retries,
            hit_bp / 100,
            hit_bp % 100,
        );
    }
    s
}

/// Runs `cfg` with the full observability stack armed: tracing hub,
/// windowed time series, and (when `flight_dir` is given) the
/// flight recorder. Committed transactions slower than `slo_ns` trigger an
/// `slo.breach` flight dump; a `run.complete` checkpoint dump is always
/// written at the end of an armed run so the artifact exists even on a
/// clean run. After the measured window every node is polled live over
/// the fabric with `OBS_SNAPSHOT` and the replies rendered as
/// `treaty-top`.
///
/// # Panics
///
/// Panics if the cluster fails to boot, a node fails to answer the
/// introspection RPC, or the simulation errors.
pub fn run_attribution_experiment(
    cfg: RunConfig,
    slo_ns: Option<Nanos>,
    flight_dir: Option<std::path::PathBuf>,
) -> AttributionRun {
    let label = cfg.profile.label().to_string();
    let out: Arc<Mutex<Option<AttributionRun>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let dir = tempfile::tempdir().expect("bench tempdir");
    let path = dir.path().to_path_buf();

    block_on(move || {
        let obs = treaty_obs::Obs::with_default_cap();
        obs.metrics().enable_series(SERIES_WINDOW, 4096);
        if let Some(dir) = &flight_dir {
            std::fs::create_dir_all(dir).expect("flight directory");
            obs.configure_flight(dir, 512);
        }
        treaty_sim::obs::install(&obs);
        let mut options = ClusterOptions::new(cfg.profile, path);
        options.nodes = cfg.nodes;
        options.txn_mode = cfg.txn_mode;
        options.durable = cfg.durable;
        options.seed = cfg.seed;
        options.engine_config = EngineConfig::default();
        if !cfg.block_cache {
            options.engine_config.block_cache_bytes = 0;
        }
        options.sync_decisions = cfg.sync_decisions;
        options.engine_config.inline_maintenance = cfg.inline_maintenance;
        let cluster = Arc::new(Cluster::start(options).expect("cluster boots"));

        // Load phase (unmeasured).
        if cfg.durable {
            match &cfg.workload {
                Workload::Ycsb(ycsb) => {
                    let mut seeder = YcsbGenerator::new(*ycsb, cfg.seed);
                    let rows: Vec<_> = YcsbGenerator::all_keys(ycsb)
                        .map(|k| (k, seeder.next_value()))
                        .collect();
                    preload(&cluster, rows);
                }
                Workload::Tpcc(tpcc) => {
                    preload(&cluster, TpccGenerator::initial_rows(tpcc));
                }
                Workload::Social(social) => {
                    let rows: Vec<_> = SocialGenerator::all_keys(social)
                        .map(|k| (k, vec![b'i'; social.value_size]))
                        .collect();
                    preload(&cluster, rows);
                }
            }
        }

        // Measured window.
        let t0 = runtime::now();
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let breaches = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Mutex::new(Histogram::new()));
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let cluster = Arc::clone(&cluster);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let breaches = Arc::clone(&breaches);
            let hist = Arc::clone(&hist);
            let cfg = cfg.clone();
            handles.push(spawn(move || {
                runtime::set_tag("bench-client");
                let client = cluster.client();
                let coordinator = 1 + (c % cfg.nodes) as u32;
                let mut ycsb = match &cfg.workload {
                    Workload::Ycsb(y) => Some(YcsbGenerator::new(*y, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut tpcc = match &cfg.workload {
                    Workload::Tpcc(t) => Some(TpccGenerator::new(*t, cfg.seed ^ (c as u64 + 1))),
                    _ => None,
                };
                let mut social = match &cfg.workload {
                    Workload::Social(s) => {
                        Some(SocialGenerator::new(*s, cfg.seed ^ (c as u64 + 1)))
                    }
                    _ => None,
                };
                for _ in 0..cfg.txns_per_client {
                    let start = runtime::now();
                    let mut txn = client.begin(coordinator);
                    let body = {
                        let mut kv = DistKv { txn: &mut txn };
                        match (&mut ycsb, &mut tpcc, &mut social) {
                            (Some(g), _, _) => g.run_txn(&mut kv),
                            (_, Some(g), _) => g.run_txn(&mut kv).map(|_| ()),
                            (_, _, Some(g)) => g.run_txn(&mut kv),
                            _ => unreachable!(),
                        }
                    };
                    let ok = body.is_ok() && txn.commit().is_ok();
                    let elapsed = runtime::now() - start;
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                        hist.lock().record(elapsed);
                        treaty_sim::obs::hist_record("client.txn_latency_ns", elapsed);
                        if slo_ns.is_some_and(|slo| elapsed > slo) {
                            breaches.fetch_add(1, Ordering::Relaxed);
                            treaty_sim::obs::counter_add("client.slo_breaches", 1);
                            treaty_sim::obs::flight_dump(
                                "slo.breach",
                                "committed transaction exceeded the latency SLO",
                            );
                        }
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            join(h);
        }
        let duration = runtime::now() - t0;

        // Live introspection: every node answers OBS_SNAPSHOT over the
        // fabric (this is the treaty-top poll, not a local peek).
        let client = cluster.client();
        let mut snapshots = Vec::new();
        for ep in cluster.node_endpoints() {
            snapshots.push(client.obs_snapshot(ep).expect("OBS_SNAPSHOT reply"));
        }

        // End-of-run checkpoint, so an armed recorder always leaves at
        // least one dump even when nothing breached.
        treaty_sim::obs::flight_dump("run.complete", "end-of-run checkpoint");

        let stats = BenchStats::from_histogram(
            label,
            cfg.clients,
            committed.load(Ordering::Relaxed),
            aborted.load(Ordering::Relaxed),
            duration.max(1),
            &mut hist.lock(),
        );
        absorb_cluster_stats(&obs, &cluster, cfg.nodes);
        let events = obs.events();
        let dropped = obs.dropped();
        let report = treaty_obs::attribute(&events, dropped);
        let trace = TraceReport {
            chrome_json: treaty_obs::chrome_trace_json_with_meta(&events, dropped),
            phase_breakdown: treaty_obs::export::phase_breakdown_with_drops(&events, dropped),
            metrics: obs.metrics().snapshot().render(),
        };
        let series = obs
            .metrics()
            .series_snapshot()
            .map(|s| s.render())
            .unwrap_or_default();
        let mut flight_dumps = Vec::new();
        if let Some(dir) = &flight_dir {
            if let Ok(rd) = std::fs::read_dir(dir) {
                flight_dumps.extend(rd.flatten().map(|e| e.path()));
            }
            flight_dumps.sort();
        }
        let top = treaty_top(&snapshots);
        *out2.lock() = Some(AttributionRun {
            stats,
            report,
            trace,
            series,
            snapshots,
            top,
            slo_breaches: breaches.load(Ordering::Relaxed),
            flight_dumps,
        });
    });

    let result = out.lock().take().expect("attribution run produced a report");
    result
}

// ---- open-loop scale harness (DESIGN.md §16, ROADMAP item 5) -----------------

/// One point of the open-loop scale sweep: a fixed offered rate against a
/// fixed cluster size, with deferred-write batching on or off.
#[derive(Debug, Clone)]
pub struct ScaleRunConfig {
    /// System variant.
    pub profile: SecurityProfile,
    /// Cluster size.
    pub nodes: usize,
    /// Offered arrival rate in transactions per second of virtual time.
    pub offered_tps: f64,
    /// Total transactions the arrival process injects.
    pub arrivals: usize,
    /// Deferred-write batching on the client ([`DistTxn::set_batching`]).
    pub batching: bool,
    /// Multi-tenant zipfian workload shape.
    pub scale: ScaleConfig,
    /// Determinism seed.
    pub seed: u64,
}

impl ScaleRunConfig {
    /// A sweep point with the default workload shape.
    pub fn point(nodes: usize, offered_tps: f64, arrivals: usize, batching: bool) -> Self {
        ScaleRunConfig {
            profile: SecurityProfile::treaty_full(),
            nodes,
            offered_tps,
            arrivals,
            batching,
            scale: ScaleConfig::default(),
            seed: 42,
        }
    }
}

/// Measured outcome of one [`run_scale_experiment`] point.
///
/// Latencies are *open-loop*: measured from each transaction's intended
/// Poisson arrival time, so queueing delay under overload lands in p99
/// instead of silently throttling the offered rate.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Cluster size.
    pub nodes: usize,
    /// Whether deferred-write batching was on.
    pub batching: bool,
    /// Offered arrival rate (tps).
    pub offered_tps: f64,
    /// Achieved commit rate (tps) over the whole run including drain.
    pub achieved_tps: f64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Open-loop median latency.
    pub p50_ns: Nanos,
    /// Open-loop 99th-percentile latency.
    pub p99_ns: Nanos,
    /// Open-loop mean latency.
    pub mean_ns: Nanos,
    /// Virtual duration from first arrival to last completion.
    pub duration_ns: Nanos,
    /// Fabric messages sent during the measured window — the wire cost the
    /// coalesced fan-out amortises.
    pub messages_sent: u64,
}

impl ScalePoint {
    /// Achieved/offered ratio; the saturation knee is the last sweep rate
    /// where this stays ≥ 0.9.
    pub fn saturation(&self) -> f64 {
        if self.offered_tps <= 0.0 {
            return 0.0;
        }
        self.achieved_tps / self.offered_tps
    }
}

/// Runs one open-loop scale point: a Poisson arrival process injects
/// `cfg.arrivals` transactions at `cfg.offered_tps` regardless of how fast
/// earlier ones complete; each transaction runs in its own fiber against a
/// round-robin coordinator. Latency is measured from the intended arrival
/// time (queueing included), which is what makes the harness open-loop.
///
/// Fully deterministic per config: arrivals, workload, and the simulated
/// cluster all derive from `cfg.seed`.
///
/// # Panics
///
/// Panics if the cluster fails to boot or the simulation errors.
pub fn run_scale_experiment(cfg: ScaleRunConfig) -> ScalePoint {
    let out: Arc<Mutex<Option<ScalePoint>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let dir = tempfile::tempdir().expect("bench tempdir");
    let path = dir.path().to_path_buf();

    block_on(move || {
        let mut options = ClusterOptions::new(cfg.profile, path);
        options.nodes = cfg.nodes;
        options.txn_mode = TxnMode::Pessimistic;
        options.seed = cfg.seed;
        options.engine_config = EngineConfig::default();
        let cluster = Arc::new(Cluster::start(options).expect("cluster boots"));

        // Load phase (unmeasured): the hot head of every tenant's key
        // space, so zipfian reads hit existing rows.
        preload(&cluster, treaty_workload::scale::hot_rows(&cfg.scale, 64));

        let sent_baseline = cluster.fabric().stats().sent;
        let t0 = runtime::now();
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let hist = Arc::new(Mutex::new(Histogram::new()));
        let mut arrivals = PoissonArrivals::new(cfg.offered_tps, cfg.seed ^ 0x5ca1e);
        let mut handles = Vec::new();
        let mut next = t0;
        for i in 0..cfg.arrivals {
            next += arrivals.next_gap();
            let now = runtime::now();
            if next > now {
                runtime::sleep(next - now);
            }
            let intended = next;
            let cluster = Arc::clone(&cluster);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let hist = Arc::clone(&hist);
            let cfg = cfg.clone();
            handles.push(spawn(move || {
                runtime::set_tag("scale-client");
                let client = cluster.client();
                let coordinator = 1 + (i % cfg.nodes) as u32;
                let mut gen = ScaleGenerator::new(cfg.scale.clone(), cfg.seed ^ (i as u64 + 1));
                let mut txn = client.begin(coordinator);
                txn.set_batching(cfg.batching);
                let body = {
                    let mut kv = DistKv { txn: &mut txn };
                    gen.run_txn(&mut kv)
                };
                let ok = body.is_ok() && txn.commit().is_ok();
                // Open-loop latency: completion minus *intended* arrival.
                let elapsed = runtime::now() - intended;
                if ok {
                    committed.fetch_add(1, Ordering::Relaxed);
                    hist.lock().record(elapsed);
                } else {
                    aborted.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            join(h);
        }
        let duration = (runtime::now() - t0).max(1);
        let committed = committed.load(Ordering::Relaxed);
        let messages_sent = cluster.fabric().stats().sent - sent_baseline;
        let mut hist = hist.lock();
        *out2.lock() = Some(ScalePoint {
            nodes: cfg.nodes,
            batching: cfg.batching,
            offered_tps: cfg.offered_tps,
            achieved_tps: committed as f64 * 1e9 / duration as f64,
            committed,
            aborted: aborted.load(Ordering::Relaxed),
            p50_ns: hist.quantile(0.50),
            p99_ns: hist.quantile(0.99),
            mean_ns: hist.mean(),
            duration_ns: duration,
            messages_sent,
        });
    });

    let result = out.lock().take().expect("scale run produced a point");
    result
}

// ---- reporting helpers ---------------------------------------------------------

/// Formats a slowdown factor like the paper's figures.
pub fn slowdown(baseline_tps: f64, tps: f64) -> f64 {
    if tps <= 0.0 {
        f64::INFINITY
    } else {
        baseline_tps / tps
    }
}

/// Prints the read-acceleration line shown under a stats row.
pub fn print_accel(a: &AccelReport) {
    println!(
        "      block cache {:>7} hits / {:>7} misses ({:>5.1}% hit rate)   bloom {:>7} filtered, {:>5} false positives, {:>5} fence-gap rejects   scans {:>6}",
        a.block_cache_hits,
        a.block_cache_misses,
        a.hit_rate() * 100.0,
        a.bloom_negatives,
        a.bloom_false_positives,
        a.fence_gap_rejects,
        a.scans,
    );
}

/// Prints one stats row.
pub fn print_row(stats: &BenchStats, baseline_tps: Option<f64>) {
    let tps = stats.tps();
    let slow = baseline_tps.map(|b| slowdown(b, tps));
    println!(
        "  {:<26} {:>10.0} tps  {:>8.2} ms mean  {:>8.2} ms p99  {:>6.1}% aborts{}",
        stats.label,
        tps,
        stats.mean_latency_ns as f64 / 1e6,
        stats.p99_latency_ns as f64 / 1e6,
        stats.abort_rate() * 100.0,
        match slow {
            Some(s) => format!("  {s:>5.2}x slower than baseline"),
            None => "  (baseline)".to_string(),
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_only_smoke() {
        let stats = run_experiment(RunConfig {
            clients: 4,
            txns_per_client: 3,
            ..RunConfig::protocol_only(SecurityProfile::rocksdb(), 4)
        });
        assert!(stats.committed > 0);
        assert!(stats.tps() > 0.0);
    }

    #[test]
    fn distributed_ycsb_smoke() {
        let mut ycsb = YcsbConfig::balanced();
        ycsb.keys = 200;
        let stats = run_experiment(RunConfig {
            clients: 4,
            txns_per_client: 3,
            ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 4)
        });
        assert!(stats.committed > 0);
    }

    #[test]
    fn single_node_tpcc_smoke() {
        let stats = run_experiment(RunConfig {
            clients: 2,
            txns_per_client: 3,
            ..RunConfig::single_node(
                SecurityProfile::native_treaty(),
                TxnMode::Pessimistic,
                Workload::Tpcc(TpccConfig::tiny()),
                2,
            )
        });
        assert!(stats.committed > 0);
    }

    #[test]
    fn snapshot_runner_smoke() {
        let mut ycsb = YcsbConfig::read_heavy();
        ycsb.keys = 200;
        let mut cfg = RunConfig {
            clients: 4,
            txns_per_client: 4,
            ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 4)
        };
        cfg.read_snapshot = true;
        let (stats, report) = run_snapshot_experiment(cfg);
        assert!(stats.committed > 0);
        // 80 %R x 10 ops leaves ~10 % pure-read transactions; with 16 txns
        // drawn the run should see at least one.
        assert!(
            report.readonly.committed + report.readonly.aborted > 0,
            "expected some pure-read transactions"
        );
        assert!(report.snapshot_reads > 0);
    }

    #[test]
    fn ycsb_e_locking_smoke() {
        let mut ycsb = YcsbConfig::ycsb_e();
        ycsb.keys = 150;
        let cfg = RunConfig {
            clients: 3,
            txns_per_client: 3,
            ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 3)
        };
        let (stats, report) = run_snapshot_experiment(cfg);
        assert!(stats.committed > 0);
        // Locking mode: scans go through 2PC with next-key locks, never
        // the lock-free snapshot path.
        assert_eq!(report.snapshot_scans, 0);
        assert!(
            report.lock_acquires > 0,
            "locking-mode scans must take locks"
        );
    }

    #[test]
    fn ycsb_e_snapshot_smoke() {
        let mut ycsb = YcsbConfig::ycsb_e();
        ycsb.keys = 150;
        let mut cfg = RunConfig {
            clients: 3,
            txns_per_client: 3,
            ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 3)
        };
        cfg.read_snapshot = true;
        let (stats, report) = run_snapshot_experiment(cfg);
        assert!(stats.committed > 0);
        // 95 % of YCSB-E transactions are pure scans; they must ride the
        // snapshot path and register server-side.
        assert!(
            report.readonly.committed > 0,
            "scan transactions must commit on the snapshot path"
        );
        assert!(report.snapshot_scans > 0, "server must serve snapshot scans");
    }

    #[test]
    fn social_workload_smoke() {
        let mut cfg = RunConfig {
            clients: 3,
            txns_per_client: 4,
            ..RunConfig::distributed_ycsb(
                SecurityProfile::treaty_full(),
                YcsbConfig::read_heavy(),
                3,
            )
        };
        cfg.workload = Workload::Social(SocialConfig::feed());
        cfg.read_snapshot = true;
        let (stats, report) = run_snapshot_experiment(cfg);
        assert!(stats.committed > 0);
        assert!(report.readonly.committed > 0, "feed loads must commit");
    }

    #[test]
    fn attribution_runner_smoke() {
        let mut ycsb = YcsbConfig::balanced();
        ycsb.keys = 200;
        let cfg = RunConfig {
            clients: 4,
            txns_per_client: 3,
            ..RunConfig::distributed_ycsb(SecurityProfile::treaty_full(), ycsb, 4)
        };
        let dir = tempfile::tempdir().unwrap();
        // SLO of 1 ns: every commit breaches, exercising the dump path.
        let run = run_attribution_experiment(cfg, Some(1), Some(dir.path().to_path_buf()));
        assert!(run.stats.committed > 0);
        assert_eq!(
            run.report.txns.len() as u64,
            run.stats.committed,
            "one attribution per committed transaction"
        );
        assert!(
            run.report.min_coverage_bp() >= 9_500,
            "attribution must explain >= 95% of every committed txn \
             (min {} bp)",
            run.report.min_coverage_bp()
        );
        assert!(run.report.p99_dominant().is_some());
        assert_eq!(run.snapshots.len(), 3, "every node answers OBS_SNAPSHOT");
        let committed: u64 = run.snapshots.iter().map(|r| r.committed).sum();
        assert_eq!(
            committed, run.stats.committed,
            "live coordinator counts must add up to the run total"
        );
        assert_eq!(run.slo_breaches, run.stats.committed);
        assert!(
            !run.flight_dumps.is_empty(),
            "breaches + end-of-run checkpoint must leave dumps"
        );
        assert!(run.top.contains("treaty-top"));
        assert!(run.series.contains("window"), "series rendering present");
    }

    #[test]
    fn scale_runner_smoke_batching_cuts_messages() {
        let scale = ScaleConfig {
            tenants: 2,
            keys_per_tenant: 500,
            write_pct: 100,
            ..ScaleConfig::default()
        };
        let mut cfg = ScaleRunConfig::point(3, 5_000.0, 12, true);
        cfg.scale = scale;
        let batched = run_scale_experiment(cfg.clone());
        cfg.batching = false;
        let unbatched = run_scale_experiment(cfg);
        assert!(batched.committed > 0, "batched run commits");
        assert!(unbatched.committed > 0, "unbatched run commits");
        // Pure-write transactions: batching ships one coalesced payload per
        // shard instead of one round trip per op, so it must use strictly
        // fewer fabric messages for the same transaction stream.
        assert!(
            batched.messages_sent < unbatched.messages_sent,
            "batched {} vs unbatched {} messages",
            batched.messages_sent,
            unbatched.messages_sent
        );
    }

    #[test]
    fn scale_runner_is_deterministic() {
        let mut cfg = ScaleRunConfig::point(3, 5_000.0, 8, true);
        cfg.scale.keys_per_tenant = 200;
        let a = run_scale_experiment(cfg.clone());
        let b = run_scale_experiment(cfg);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.p50_ns, b.p50_ns);
        assert_eq!(a.p99_ns, b.p99_ns);
        assert_eq!(a.duration_ns, b.duration_ns);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn network_bench_udp_drops_large() {
        let g = run_network(NetSystem::IperfUdp(TeeMode::Native), 4096, 50);
        assert_eq!(g, 0.0, "UDP above MTU must deliver nothing");
        let g = run_network(NetSystem::IperfUdp(TeeMode::Native), 1024, 50);
        assert!(g > 0.0);
    }

    #[test]
    fn network_bench_scone_slower_than_native_tcp() {
        let native = run_network(NetSystem::IperfTcp(TeeMode::Native), 4096, 100);
        let scone = run_network(NetSystem::IperfTcp(TeeMode::Scone), 4096, 100);
        assert!(native > scone, "native {native} vs scone {scone}");
    }

    #[test]
    fn recovery_bench_encrypted_slower() {
        let (native, _) = run_recovery(SecurityProfile::rocksdb(), 2000, 100);
        let (enc, _) = run_recovery(SecurityProfile::treaty_full(), 2000, 100);
        assert!(enc > native, "encrypted recovery must cost more");
    }
}
