//! Workload generators for the Treaty evaluation (§VIII-A): YCSB and
//! TPC-C, deterministic per seed.
//!
//! Both workloads target the abstract [`KvTxn`] interface so the same
//! generator drives single-node engine transactions and distributed
//! client transactions.

pub mod scale;
pub mod social;
pub mod tpcc;
pub mod ycsb;

pub use scale::{PoissonArrivals, ScaleConfig, ScaleGenerator};
pub use social::{SocialConfig, SocialGenerator, SocialTxn};
pub use tpcc::{TpccConfig, TpccGenerator, TpccTxn};
pub use ycsb::{Distribution, YcsbConfig, YcsbGenerator, YcsbOp, YcsbOpKind};

/// The transaction interface workloads run against.
///
/// Implemented by adapters over `treaty_store::EngineTxn` (single node) and
/// `treaty_core::DistTxn` (distributed) in the benchmark harness.
pub trait KvTxn {
    /// Reads a key.
    ///
    /// # Errors
    ///
    /// A human-readable reason; any error aborts the workload transaction.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String>;

    /// Writes a key.
    ///
    /// # Errors
    ///
    /// A human-readable reason; any error aborts the workload transaction.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), String>;

    /// Range-scans `[start, end)`, up to `limit` pairs (`0` = unbounded).
    /// Defaulted so point-only adapters and mocks keep compiling; harnesses
    /// running scan workloads (YCSB-E) override it.
    ///
    /// # Errors
    ///
    /// A human-readable reason; any error aborts the workload transaction.
    fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, String> {
        let _ = (start, end, limit);
        Err("scan unsupported by this transaction adapter".into())
    }
}
