//! YCSB-style key-value workloads.
//!
//! The paper's configurations: 10 operations per transaction, 1000 B
//! values, uniform distribution over 10 k keys for the single-node runs
//! (§VIII-D); read-heavy (80 %R) and write-heavy (20 %R) mixes for the
//! distributed runs (§VIII-C); 50/50 for the 2PC-only run (§VIII-B).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Key-popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the key space.
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99).
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
}

/// YCSB workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Percentage of reads (rest are updates).
    pub read_pct: u8,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Number of distinct keys.
    pub keys: u64,
    /// Key-popularity distribution.
    pub distribution: Distribution,
    /// Percentage of operations that are range scans (YCSB-E). Scans are
    /// drawn before the read/update split: a roll under `scan_pct` scans,
    /// one under `scan_pct + insert_pct` inserts, the rest read/update
    /// per `read_pct`.
    #[serde(default)]
    pub scan_pct: u8,
    /// Percentage of operations that insert fresh keys (YCSB-E).
    #[serde(default)]
    pub insert_pct: u8,
    /// Scan lengths are uniform in `1..=max_scan_len` (YCSB default 100).
    #[serde(default = "default_max_scan_len")]
    pub max_scan_len: u64,
}

fn default_max_scan_len() -> u64 {
    100
}

impl YcsbConfig {
    /// §VIII-D base config: 10 ops/txn, 1000 B values, uniform, 10 k keys.
    pub fn paper_base(read_pct: u8) -> Self {
        YcsbConfig {
            read_pct,
            ops_per_txn: 10,
            value_size: 1000,
            keys: 10_000,
            distribution: Distribution::Uniform,
            scan_pct: 0,
            insert_pct: 0,
            max_scan_len: default_max_scan_len(),
        }
    }

    /// Read-heavy (80 %R).
    pub fn read_heavy() -> Self {
        Self::paper_base(80)
    }

    /// Write-heavy (20 %R).
    pub fn write_heavy() -> Self {
        Self::paper_base(20)
    }

    /// The 2PC-only benchmark's 50/50 mix (§VIII-B).
    pub fn balanced() -> Self {
        Self::paper_base(50)
    }

    /// Standard YCSB-B (95 %R): the read-mostly mix the snapshot-read
    /// path (`--read-snapshot`, DESIGN.md §12) is built for.
    pub fn ycsb_b() -> Self {
        Self::paper_base(95)
    }

    /// Standard YCSB-C (100 %R): every transaction is read-only, so with
    /// `--read-snapshot` the lock table goes completely silent.
    pub fn ycsb_c() -> Self {
        Self::paper_base(100)
    }

    /// Standard YCSB-E (95 % scan / 5 % insert, zipfian start keys): the
    /// short-ranges workload the authenticated merge iterator serves —
    /// locking scans next-key-lock their spans; `--read-snapshot` scans go
    /// lock-free through the MVCC read path.
    pub fn ycsb_e() -> Self {
        YcsbConfig {
            scan_pct: 95,
            insert_pct: 5,
            distribution: Distribution::Zipfian { theta: 0.99 },
            ..Self::paper_base(0)
        }
    }
}

/// A single operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YcsbOp {
    /// Target key.
    pub key: Vec<u8>,
    /// Read or update.
    pub kind: YcsbOpKind,
}

/// Operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOpKind {
    /// Point read.
    Read,
    /// Full-value update.
    Update,
    /// Fresh-key insert (YCSB-E): the key lands above the loaded space.
    Insert,
    /// Range scan of `len` keys starting at the op's key (YCSB-E).
    Scan {
        /// Number of keys to scan.
        len: u64,
    },
}

/// Exclusive upper bound of the YCSB key space: every generated key is
/// `user<digits>` and `'~' > '9'`, so scans bounded here cover the tail of
/// the key space and stop at the length limit instead.
pub const KEY_SPACE_END: &[u8] = b"user~";

/// Standard YCSB zipfian generator (Gray et al.), deterministic.
#[derive(Debug, Clone)]
pub(crate) struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    pub(crate) fn new(n: u64, theta: f64) -> Self {
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; sampled approximation above that keeps
        // generator construction O(1)-ish for huge key spaces.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let exact: f64 = (1..=10_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            exact + (n as f64 / 1e7).ln() * (1e7_f64).powf(-theta) * 1e7 / (1.0 - theta)
        }
    }

    pub(crate) fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

/// Deterministic YCSB transaction stream.
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    rng: ChaCha8Rng,
    zipf: Option<Zipf>,
}

impl YcsbGenerator {
    /// Creates a generator; distinct seeds give independent client streams.
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        let zipf = match cfg.distribution {
            Distribution::Uniform => None,
            Distribution::Zipfian { theta } => Some(Zipf::new(cfg.keys, theta)),
        };
        YcsbGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    fn next_key(&mut self) -> Vec<u8> {
        let idx = match &self.zipf {
            None => self.rng.gen_range(0..self.cfg.keys),
            Some(z) => z.sample(&mut self.rng),
        };
        format!("user{idx:010}").into_bytes()
    }

    /// The operations of the next transaction.
    pub fn next_txn(&mut self) -> Vec<YcsbOp> {
        (0..self.cfg.ops_per_txn)
            .map(|_| {
                let roll = self.rng.gen_range(0..100u8);
                if roll < self.cfg.scan_pct {
                    let len = self.rng.gen_range(1..=self.cfg.max_scan_len.max(1));
                    return YcsbOp {
                        key: self.next_key(),
                        kind: YcsbOpKind::Scan { len },
                    };
                }
                if roll < self.cfg.scan_pct.saturating_add(self.cfg.insert_pct) {
                    // Fresh keys land uniformly above the loaded space;
                    // re-inserting one is an idempotent upsert, like
                    // YCSB's recycled insert key space.
                    let idx = self.cfg.keys + self.rng.gen_range(0..self.cfg.keys.max(1));
                    return YcsbOp {
                        key: format!("user{idx:010}").into_bytes(),
                        kind: YcsbOpKind::Insert,
                    };
                }
                let kind = if self.rng.gen_range(0..100u8) < self.cfg.read_pct {
                    YcsbOpKind::Read
                } else {
                    YcsbOpKind::Update
                };
                YcsbOp {
                    key: self.next_key(),
                    kind,
                }
            })
            .collect()
    }

    /// A fresh value of the configured size (compressible filler, like
    /// YCSB's field data).
    pub fn next_value(&mut self) -> Vec<u8> {
        let tag: u64 = self.rng.gen();
        let mut v = vec![b'x'; self.cfg.value_size];
        let tag_bytes = tag.to_le_bytes();
        let n = tag_bytes.len().min(v.len());
        v[..n].copy_from_slice(&tag_bytes[..n]);
        v
    }

    /// Runs one generated transaction against `txn`. Returns `Err` with the
    /// failing operation's reason (the caller counts it as an abort).
    ///
    /// # Errors
    ///
    /// Propagates the first failing operation.
    pub fn run_txn(&mut self, txn: &mut impl crate::KvTxn) -> Result<(), String> {
        let ops = self.next_txn();
        for op in ops {
            match op.kind {
                YcsbOpKind::Read => {
                    txn.get(&op.key)?;
                }
                YcsbOpKind::Update | YcsbOpKind::Insert => {
                    let v = self.next_value();
                    txn.put(&op.key, &v)?;
                }
                YcsbOpKind::Scan { len } => {
                    txn.scan(&op.key, KEY_SPACE_END, len as usize)?;
                }
            }
        }
        Ok(())
    }

    /// All keys of the key space (for pre-loading).
    pub fn all_keys(cfg: &YcsbConfig) -> impl Iterator<Item = Vec<u8>> {
        let n = cfg.keys;
        (0..n).map(|i| format!("user{i:010}").into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = YcsbGenerator::new(YcsbConfig::read_heavy(), 7);
        let mut b = YcsbGenerator::new(YcsbConfig::read_heavy(), 7);
        for _ in 0..10 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
        let mut c = YcsbGenerator::new(YcsbConfig::read_heavy(), 8);
        assert_ne!(a.next_txn(), c.next_txn());
    }

    #[test]
    fn read_ratio_approximately_holds() {
        let mut g = YcsbGenerator::new(YcsbConfig::read_heavy(), 1);
        let mut reads = 0;
        let mut total = 0;
        for _ in 0..500 {
            for op in g.next_txn() {
                total += 1;
                if op.kind == YcsbOpKind::Read {
                    reads += 1;
                }
            }
        }
        let pct = reads * 100 / total;
        assert!((75..=85).contains(&pct), "read pct {pct}");
    }

    #[test]
    fn keys_within_space() {
        let cfg = YcsbConfig {
            keys: 100,
            ..YcsbConfig::balanced()
        };
        let mut g = YcsbGenerator::new(cfg, 3);
        for _ in 0..200 {
            for op in g.next_txn() {
                let s = String::from_utf8(op.key).unwrap();
                let idx: u64 = s.strip_prefix("user").unwrap().parse().unwrap();
                assert!(idx < 100);
            }
        }
    }

    #[test]
    fn zipfian_skews_popularity() {
        let cfg = YcsbConfig {
            keys: 1000,
            distribution: Distribution::Zipfian { theta: 0.99 },
            ..YcsbConfig::balanced()
        };
        let mut g = YcsbGenerator::new(cfg, 5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            for op in g.next_txn() {
                *counts.entry(op.key).or_insert(0u32) += 1;
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        let total: u32 = freqs.iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.3,
            "zipfian should concentrate mass: top10 {top10}/{total}"
        );
    }

    #[test]
    fn values_have_configured_size() {
        let mut g = YcsbGenerator::new(YcsbConfig::balanced(), 1);
        assert_eq!(g.next_value().len(), 1000);
    }

    #[test]
    fn all_keys_enumerates_key_space() {
        let cfg = YcsbConfig {
            keys: 5,
            ..YcsbConfig::balanced()
        };
        let keys: Vec<_> = YcsbGenerator::all_keys(&cfg).collect();
        assert_eq!(keys.len(), 5);
        assert_eq!(keys[0], b"user0000000000".to_vec());
    }

    #[test]
    fn ycsb_e_mix_and_determinism() {
        let mut a = YcsbGenerator::new(YcsbConfig::ycsb_e(), 11);
        let mut b = YcsbGenerator::new(YcsbConfig::ycsb_e(), 11);
        let (mut scans, mut inserts, mut total) = (0u32, 0u32, 0u32);
        for _ in 0..500 {
            let txn = a.next_txn();
            assert_eq!(txn, b.next_txn());
            for op in txn {
                total += 1;
                match op.kind {
                    YcsbOpKind::Scan { len } => {
                        scans += 1;
                        assert!((1..=a.cfg.max_scan_len).contains(&len));
                        assert!(op.key.as_slice() < KEY_SPACE_END);
                    }
                    YcsbOpKind::Insert => {
                        inserts += 1;
                        // Inserts land above the loaded space, below the
                        // scan bound.
                        let s = String::from_utf8(op.key.clone()).unwrap();
                        let idx: u64 = s.strip_prefix("user").unwrap().parse().unwrap();
                        assert!((a.cfg.keys..2 * a.cfg.keys).contains(&idx));
                        assert!(op.key.as_slice() < KEY_SPACE_END);
                    }
                    _ => panic!("ycsb-e generates only scans and inserts"),
                }
            }
        }
        let scan_pct = scans * 100 / total;
        assert!(
            (90..=99).contains(&scan_pct),
            "scan pct {scan_pct} ({scans} scans, {inserts} inserts)"
        );
        assert!(inserts > 0);
    }

    #[test]
    fn run_txn_drives_scans_through_kv_txn() {
        struct Mock {
            scans: u32,
            puts: u32,
        }
        impl crate::KvTxn for Mock {
            fn get(&mut self, _: &[u8]) -> Result<Option<Vec<u8>>, String> {
                Ok(None)
            }
            fn put(&mut self, _: &[u8], _: &[u8]) -> Result<(), String> {
                self.puts += 1;
                Ok(())
            }
            fn scan(
                &mut self,
                start: &[u8],
                end: &[u8],
                limit: usize,
            ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, String> {
                assert!(start < end);
                assert!(limit >= 1);
                self.scans += 1;
                Ok(Vec::new())
            }
        }
        let mut g = YcsbGenerator::new(YcsbConfig::ycsb_e(), 4);
        let mut m = Mock { scans: 0, puts: 0 };
        for _ in 0..20 {
            g.run_txn(&mut m).unwrap();
        }
        assert!(m.scans > 0, "ycsb-e must scan");
        assert_eq!((m.scans + m.puts) as usize, 200);
    }

    #[test]
    fn run_txn_against_mock() {
        struct Mock(u32, u32);
        impl crate::KvTxn for Mock {
            fn get(&mut self, _: &[u8]) -> Result<Option<Vec<u8>>, String> {
                self.0 += 1;
                Ok(None)
            }
            fn put(&mut self, _: &[u8], _: &[u8]) -> Result<(), String> {
                self.1 += 1;
                Ok(())
            }
        }
        let mut g = YcsbGenerator::new(YcsbConfig::balanced(), 2);
        let mut m = Mock(0, 0);
        g.run_txn(&mut m).unwrap();
        assert_eq!((m.0 + m.1) as usize, 10);
    }
}
