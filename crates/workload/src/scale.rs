//! Open-loop scale workload (ROADMAP item 5): multi-tenant key spaces
//! with zipfian hot keys per tenant, plus the deterministic Poisson
//! arrival process the open-loop bench driver schedules transactions
//! with.
//!
//! Closed-loop clients hide saturation: a slow server slows its clients
//! down, so offered load collapses exactly when the system is most
//! interesting. The open-loop driver instead fixes the *arrival* rate —
//! transactions arrive on a Poisson process whether or not earlier ones
//! finished — and measures latency from the intended arrival time, so
//! queueing delay shows up in p99 instead of silently throttling the
//! workload.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::ycsb::Zipf;
use crate::KvTxn;

/// Configuration of the multi-tenant scale workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Independent tenants; each owns a disjoint key prefix.
    pub tenants: u32,
    /// Keys per tenant key space.
    pub keys_per_tenant: u64,
    /// Zipfian skew within a tenant (YCSB default 0.99). Low indices are
    /// hot: index 0 is every tenant's hottest key.
    pub theta: f64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Percentage of operations that are writes (the scale harness is
    /// write-heavy by default: deferred-write batching is what it
    /// measures).
    pub write_pct: u8,
    /// Value size in bytes.
    pub value_size: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            tenants: 4,
            keys_per_tenant: 10_000,
            theta: 0.99,
            ops_per_txn: 8,
            write_pct: 80,
            value_size: 100,
        }
    }
}

/// The key of `(tenant, idx)`: tenant-prefixed so tenants partition the
/// key space (`t007/user0000000042`).
pub fn tenant_key(tenant: u32, idx: u64) -> Vec<u8> {
    format!("t{tenant:03}/user{idx:010}").into_bytes()
}

/// The hottest `per_tenant` rows of every tenant, for preloading. Zipfian
/// popularity concentrates on the low indices, so preloading a prefix of
/// each tenant's key space covers nearly all read traffic.
pub fn hot_rows(cfg: &ScaleConfig, per_tenant: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let per_tenant = per_tenant.min(cfg.keys_per_tenant);
    let mut rows = Vec::with_capacity((cfg.tenants as u64 * per_tenant) as usize);
    for tenant in 0..cfg.tenants {
        for idx in 0..per_tenant {
            rows.push((tenant_key(tenant, idx), vec![b'0'; cfg.value_size]));
        }
    }
    rows
}

/// Deterministic generator of scale-workload transactions; distinct seeds
/// give independent streams.
#[derive(Debug, Clone)]
pub struct ScaleGenerator {
    cfg: ScaleConfig,
    rng: ChaCha8Rng,
    zipf: Zipf,
}

impl ScaleGenerator {
    /// Creates a generator.
    pub fn new(cfg: ScaleConfig, seed: u64) -> Self {
        let zipf = Zipf::new(cfg.keys_per_tenant.max(1), cfg.theta);
        ScaleGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// A workload value: mostly filler with a random tag so successive
    /// writes are distinguishable.
    pub fn next_value(&mut self) -> Vec<u8> {
        let tag: u64 = self.rng.gen();
        let mut v = vec![b'x'; self.cfg.value_size.max(8)];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        v
    }

    /// Runs one transaction against `txn`: picks a tenant uniformly, then
    /// `ops_per_txn` zipfian-hot operations inside that tenant's key
    /// space, `write_pct`% of them blind writes.
    ///
    /// # Errors
    ///
    /// Propagates the first operation error (the transaction aborts).
    pub fn run_txn(&mut self, txn: &mut impl KvTxn) -> Result<(), String> {
        let tenant = self.rng.gen_range(0..self.cfg.tenants.max(1));
        for _ in 0..self.cfg.ops_per_txn {
            let idx = self.zipf.sample(&mut self.rng);
            let key = tenant_key(tenant, idx);
            if self.rng.gen_range(0..100u8) < self.cfg.write_pct {
                let value = self.next_value();
                txn.put(&key, &value)?;
            } else {
                txn.get(&key)?;
            }
        }
        Ok(())
    }
}

/// Deterministic Poisson arrival process: exponential inter-arrival gaps
/// around a fixed offered rate, independent of how fast transactions
/// complete (the open-loop property).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: ChaCha8Rng,
    mean_gap_ns: f64,
}

impl PoissonArrivals {
    /// An arrival process offering `offered_tps` transactions per second.
    ///
    /// # Panics
    ///
    /// Panics if `offered_tps` is not strictly positive.
    pub fn new(offered_tps: f64, seed: u64) -> Self {
        assert!(offered_tps > 0.0, "offered rate must be positive");
        PoissonArrivals {
            rng: ChaCha8Rng::seed_from_u64(seed),
            mean_gap_ns: 1e9 / offered_tps,
        }
    }

    /// Nanoseconds until the next arrival (exponentially distributed).
    pub fn next_gap(&mut self) -> u64 {
        // 1 - u ∈ (0, 1]: ln never sees zero.
        let u: f64 = self.rng.gen();
        let gap = -self.mean_gap_ns * (1.0 - u).ln();
        // Clamp to [1ns, 100×mean]: the exponential tail is unbounded but
        // a single pathological gap would distort a finite run.
        gap.clamp(1.0, self.mean_gap_ns * 100.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapTxn(HashMap<Vec<u8>, Vec<u8>>);

    impl KvTxn for MapTxn {
        fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
            Ok(self.0.get(key).cloned())
        }
        fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.0.insert(key.to_vec(), value.to_vec());
            Ok(())
        }
    }

    #[test]
    fn keys_are_tenant_prefixed_and_sortable() {
        assert_eq!(tenant_key(7, 42), b"t007/user0000000042".to_vec());
        assert!(tenant_key(1, 999) < tenant_key(2, 0));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = ScaleConfig::default();
        let mut a = ScaleGenerator::new(cfg.clone(), 7);
        let mut b = ScaleGenerator::new(cfg, 7);
        let mut ta = MapTxn(HashMap::new());
        let mut tb = MapTxn(HashMap::new());
        for _ in 0..20 {
            a.run_txn(&mut ta).unwrap();
            b.run_txn(&mut tb).unwrap();
        }
        assert_eq!(ta.0, tb.0);
        assert!(!ta.0.is_empty());
    }

    #[test]
    fn txns_stay_inside_one_tenant() {
        let cfg = ScaleConfig {
            tenants: 8,
            ops_per_txn: 16,
            write_pct: 100,
            ..ScaleConfig::default()
        };
        let mut g = ScaleGenerator::new(cfg, 3);
        for _ in 0..10 {
            let mut t = MapTxn(HashMap::new());
            g.run_txn(&mut t).unwrap();
            let prefixes: std::collections::HashSet<Vec<u8>> =
                t.0.keys().map(|k| k[..4].to_vec()).collect();
            assert_eq!(prefixes.len(), 1, "one tenant per transaction");
        }
    }

    #[test]
    fn zipfian_concentrates_on_low_indices() {
        let cfg = ScaleConfig {
            tenants: 1,
            write_pct: 100,
            ..ScaleConfig::default()
        };
        let mut g = ScaleGenerator::new(cfg, 11);
        let mut t = MapTxn(HashMap::new());
        for _ in 0..200 {
            g.run_txn(&mut t).unwrap();
        }
        // 1600 zipfian ops over 10k keys must revisit the hot head: far
        // fewer distinct keys than ops.
        assert!(t.0.len() < 800, "distinct keys: {}", t.0.len());
        assert!(t.0.contains_key(&tenant_key(0, 0)), "hottest key touched");
    }

    #[test]
    fn poisson_gaps_average_the_offered_rate() {
        let mut p = PoissonArrivals::new(10_000.0, 5); // mean gap 100µs
        let n = 4096u64;
        let total: u64 = (0..n).map(|_| p.next_gap()).sum();
        let mean = total / n;
        assert!(
            (50_000..200_000).contains(&mean),
            "mean gap {mean}ns should be near 100µs"
        );
        // Deterministic per seed.
        let mut q = PoissonArrivals::new(10_000.0, 5);
        let again: u64 = (0..n).map(|_| q.next_gap()).sum();
        assert_eq!(total, again);
    }
}
