//! TPC-C over a key-value schema.
//!
//! All five transaction profiles with the standard mix (NewOrder 45 %,
//! Payment 43 %, OrderStatus 4 %, Delivery 4 %, StockLevel 4 %), scaled
//! down in rows-per-table (documented on [`TpccConfig`]) but not in
//! structure: the contention pattern the paper leans on — Payment's
//! warehouse-row hotspot and NewOrder's district `next_o_id` counter — is
//! preserved exactly.
//!
//! Rows are serde-encoded structs under prefixed keys:
//!
//! ```text
//! w:{w}                warehouse        d:{w}:{d}            district
//! c:{w}:{d}:{c}        customer         i:{i}                item
//! s:{w}:{i}            stock            o:{w}:{d}:{o}        order
//! ol:{w}:{d}:{o}:{n}   order line
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::KvTxn;

/// TPC-C sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpccConfig {
    /// Number of warehouses (the paper runs 10 and 100).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (spec: 3000; scaled down to keep load times
    /// reasonable — contention is per-row, so the hotspots are unchanged).
    pub customers_per_district: u32,
    /// Items in the catalogue (spec: 100_000; scaled down likewise).
    pub items: u32,
}

impl TpccConfig {
    /// The paper's 10-warehouse configuration (scaled rows).
    pub fn paper_10w() -> Self {
        TpccConfig {
            warehouses: 10,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 200,
        }
    }

    /// The paper's 100-warehouse configuration (scaled rows).
    pub fn paper_100w() -> Self {
        TpccConfig {
            warehouses: 100,
            ..Self::paper_10w()
        }
    }

    /// A tiny config for tests.
    pub fn tiny() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 20,
        }
    }
}

// ---- row types --------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Warehouse {
    ytd: i64,
    name: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct District {
    ytd: i64,
    next_o_id: u32,
    /// Oldest undelivered order (Delivery's queue pointer).
    next_deliv_o_id: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Customer {
    balance: i64,
    ytd_payment: i64,
    payment_cnt: u32,
    delivery_cnt: u32,
    last_order: u32,
    data: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Item {
    price: i64,
    name: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stock {
    quantity: i32,
    ytd: i64,
    order_cnt: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Order {
    c_id: u32,
    ol_cnt: u32,
    carrier_id: Option<u32>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct OrderLine {
    i_id: u32,
    qty: u32,
    amount: i64,
}

// ---- keys ---------------------------------------------------------------------

fn k_warehouse(w: u32) -> Vec<u8> {
    format!("w:{w}").into_bytes()
}
fn k_district(w: u32, d: u32) -> Vec<u8> {
    format!("d:{w}:{d}").into_bytes()
}
fn k_customer(w: u32, d: u32, c: u32) -> Vec<u8> {
    format!("c:{w}:{d}:{c}").into_bytes()
}
fn k_item(i: u32) -> Vec<u8> {
    format!("i:{i}").into_bytes()
}
fn k_stock(w: u32, i: u32) -> Vec<u8> {
    format!("s:{w}:{i}").into_bytes()
}
fn k_order(w: u32, d: u32, o: u32) -> Vec<u8> {
    format!("o:{w}:{d}:{o}").into_bytes()
}
fn k_order_line(w: u32, d: u32, o: u32, n: u32) -> Vec<u8> {
    format!("ol:{w}:{d}:{o}:{n}").into_bytes()
}

fn enc<T: Serialize>(v: &T) -> Vec<u8> {
    serde_json::to_vec(v).expect("row serializes")
}

fn dec<T: for<'de> Deserialize<'de>>(b: &[u8]) -> Result<T, String> {
    serde_json::from_slice(b).map_err(|e| format!("row decode: {e}"))
}

fn read_row<T: for<'de> Deserialize<'de>>(txn: &mut impl KvTxn, key: &[u8]) -> Result<T, String> {
    match txn.get(key)? {
        Some(b) => dec(&b),
        None => Err(format!("missing row {:?}", String::from_utf8_lossy(key))),
    }
}

// ---- transactions ---------------------------------------------------------------

/// One generated TPC-C transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpccTxn {
    /// ~45 %: order `items` for customer `(w, d, c)`.
    NewOrder {
        /// Home warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Customer.
        c: u32,
        /// `(item, supply warehouse, quantity)` triplets.
        items: Vec<(u32, u32, u32)>,
    },
    /// ~43 %: payment by customer `(w, d, c)` of `amount`.
    Payment {
        /// Home warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Customer.
        c: u32,
        /// Cents.
        amount: i64,
    },
    /// ~4 %: read a customer's last order.
    OrderStatus {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Customer.
        c: u32,
    },
    /// ~4 %: deliver the oldest undelivered order of one district.
    Delivery {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Carrier.
        carrier: u32,
    },
    /// ~4 %: count low-stock items among a district's recent orders.
    StockLevel {
        /// Warehouse.
        w: u32,
        /// District.
        d: u32,
        /// Threshold.
        threshold: i32,
    },
}

/// Deterministic TPC-C transaction stream.
#[derive(Debug, Clone)]
pub struct TpccGenerator {
    cfg: TpccConfig,
    rng: ChaCha8Rng,
}

impl TpccGenerator {
    /// Creates a generator; distinct seeds give independent terminals.
    pub fn new(cfg: TpccConfig, seed: u64) -> Self {
        TpccGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    /// The initial database: every row of every table.
    pub fn initial_rows(cfg: &TpccConfig) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut rows = Vec::new();
        for i in 0..cfg.items {
            rows.push((
                k_item(i),
                enc(&Item {
                    price: 100 + (i as i64 * 7) % 9900,
                    name: format!("item-{i}"),
                }),
            ));
        }
        for w in 0..cfg.warehouses {
            rows.push((
                k_warehouse(w),
                enc(&Warehouse {
                    ytd: 0,
                    name: format!("wh-{w}"),
                }),
            ));
            for i in 0..cfg.items {
                rows.push((
                    k_stock(w, i),
                    enc(&Stock {
                        quantity: 50,
                        ytd: 0,
                        order_cnt: 0,
                    }),
                ));
            }
            for d in 0..cfg.districts_per_warehouse {
                rows.push((
                    k_district(w, d),
                    enc(&District {
                        ytd: 0,
                        next_o_id: 1,
                        next_deliv_o_id: 1,
                    }),
                ));
                for c in 0..cfg.customers_per_district {
                    rows.push((
                        k_customer(w, d, c),
                        enc(&Customer {
                            balance: -1000,
                            ytd_payment: 1000,
                            payment_cnt: 1,
                            delivery_cnt: 0,
                            last_order: 0,
                            data: "x".repeat(100),
                        }),
                    ));
                }
            }
        }
        rows
    }

    /// Generates the next transaction with the standard mix.
    pub fn next_txn(&mut self) -> TpccTxn {
        let cfg = self.cfg;
        let w = self.rng.gen_range(0..cfg.warehouses);
        let d = self.rng.gen_range(0..cfg.districts_per_warehouse);
        let c = self.rng.gen_range(0..cfg.customers_per_district);
        match self.rng.gen_range(0..100u32) {
            0..=44 => {
                let n = self.rng.gen_range(5..=15);
                let items = (0..n)
                    .map(|_| {
                        let i = self.rng.gen_range(0..cfg.items);
                        // 1% remote warehouse, per spec (drives distribution).
                        let supply = if cfg.warehouses > 1 && self.rng.gen_range(0..100) == 0 {
                            (w + 1 + self.rng.gen_range(0..cfg.warehouses - 1)) % cfg.warehouses
                        } else {
                            w
                        };
                        (i, supply, self.rng.gen_range(1..=10))
                    })
                    .collect();
                TpccTxn::NewOrder { w, d, c, items }
            }
            45..=87 => TpccTxn::Payment {
                w,
                d,
                c,
                amount: self.rng.gen_range(100..500_000),
            },
            88..=91 => TpccTxn::OrderStatus { w, d, c },
            92..=95 => TpccTxn::Delivery {
                w,
                d,
                carrier: self.rng.gen_range(1..=10),
            },
            _ => TpccTxn::StockLevel {
                w,
                d,
                threshold: self.rng.gen_range(10..=20),
            },
        }
    }

    /// Executes `txn` against the KV interface. Business logic only —
    /// begin/commit is the caller's job.
    ///
    /// # Errors
    ///
    /// Propagates operation failures (aborts).
    pub fn execute(txn_desc: &TpccTxn, api: &mut impl KvTxn) -> Result<(), String> {
        match txn_desc {
            TpccTxn::NewOrder { w, d, c, items } => {
                let _wh: Warehouse = read_row(api, &k_warehouse(*w))?;
                let mut district: District = read_row(api, &k_district(*w, *d))?;
                let o_id = district.next_o_id;
                district.next_o_id += 1;
                api.put(&k_district(*w, *d), &enc(&district))?;
                let mut customer: Customer = read_row(api, &k_customer(*w, *d, *c))?;
                customer.last_order = o_id;
                api.put(&k_customer(*w, *d, *c), &enc(&customer))?;
                api.put(
                    &k_order(*w, *d, o_id),
                    &enc(&Order {
                        c_id: *c,
                        ol_cnt: items.len() as u32,
                        carrier_id: None,
                    }),
                )?;
                for (n, (i, supply, qty)) in items.iter().enumerate() {
                    let item: Item = read_row(api, &k_item(*i))?;
                    let mut stock: Stock = read_row(api, &k_stock(*supply, *i))?;
                    stock.quantity -= *qty as i32;
                    if stock.quantity < 10 {
                        stock.quantity += 91;
                    }
                    stock.ytd += *qty as i64;
                    stock.order_cnt += 1;
                    api.put(&k_stock(*supply, *i), &enc(&stock))?;
                    api.put(
                        &k_order_line(*w, *d, o_id, n as u32),
                        &enc(&OrderLine {
                            i_id: *i,
                            qty: *qty,
                            amount: item.price * *qty as i64,
                        }),
                    )?;
                }
                Ok(())
            }
            TpccTxn::Payment { w, d, c, amount } => {
                let mut wh: Warehouse = read_row(api, &k_warehouse(*w))?;
                wh.ytd += amount;
                api.put(&k_warehouse(*w), &enc(&wh))?;
                let mut district: District = read_row(api, &k_district(*w, *d))?;
                district.ytd += amount;
                api.put(&k_district(*w, *d), &enc(&district))?;
                let mut customer: Customer = read_row(api, &k_customer(*w, *d, *c))?;
                customer.balance -= amount;
                customer.ytd_payment += amount;
                customer.payment_cnt += 1;
                api.put(&k_customer(*w, *d, *c), &enc(&customer))?;
                Ok(())
            }
            TpccTxn::OrderStatus { w, d, c } => {
                let customer: Customer = read_row(api, &k_customer(*w, *d, *c))?;
                if customer.last_order > 0 {
                    if let Some(bytes) = api.get(&k_order(*w, *d, customer.last_order))? {
                        let order: Order = dec(&bytes)?;
                        for n in 0..order.ol_cnt {
                            let _ = api.get(&k_order_line(*w, *d, customer.last_order, n))?;
                        }
                    }
                }
                Ok(())
            }
            TpccTxn::Delivery { w, d, carrier } => {
                let mut district: District = read_row(api, &k_district(*w, *d))?;
                if district.next_deliv_o_id >= district.next_o_id {
                    return Ok(()); // nothing to deliver
                }
                let o_id = district.next_deliv_o_id;
                district.next_deliv_o_id += 1;
                api.put(&k_district(*w, *d), &enc(&district))?;
                if let Some(bytes) = api.get(&k_order(*w, *d, o_id))? {
                    let mut order: Order = dec(&bytes)?;
                    order.carrier_id = Some(*carrier);
                    let mut total = 0i64;
                    for n in 0..order.ol_cnt {
                        if let Some(olb) = api.get(&k_order_line(*w, *d, o_id, n))? {
                            let ol: OrderLine = dec(&olb)?;
                            total += ol.amount;
                        }
                    }
                    api.put(&k_order(*w, *d, o_id), &enc(&order))?;
                    let mut customer: Customer = read_row(api, &k_customer(*w, *d, order.c_id))?;
                    customer.balance += total;
                    customer.delivery_cnt += 1;
                    api.put(&k_customer(*w, *d, order.c_id), &enc(&customer))?;
                }
                Ok(())
            }
            TpccTxn::StockLevel { w, d, threshold } => {
                let district: District = read_row(api, &k_district(*w, *d))?;
                // Inspect the stock of items in the last up-to-5 orders.
                let from = district.next_o_id.saturating_sub(5).max(1);
                let mut low = 0;
                for o in from..district.next_o_id {
                    if let Some(ob) = api.get(&k_order(*w, *d, o))? {
                        let order: Order = dec(&ob)?;
                        for n in 0..order.ol_cnt.min(5) {
                            if let Some(olb) = api.get(&k_order_line(*w, *d, o, n))? {
                                let ol: OrderLine = dec(&olb)?;
                                if let Some(sb) = api.get(&k_stock(*w, ol.i_id))? {
                                    let stock: Stock = dec(&sb)?;
                                    if stock.quantity < *threshold {
                                        low += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                let _ = low;
                Ok(())
            }
        }
    }

    /// Generates and executes the next transaction.
    ///
    /// # Errors
    ///
    /// Propagates operation failures (aborts).
    pub fn run_txn(&mut self, api: &mut impl KvTxn) -> Result<TpccTxn, String> {
        let txn = self.next_txn();
        Self::execute(&txn, api)?;
        Ok(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Serial in-memory KV for validating the business logic.
    #[derive(Default)]
    struct MemKv {
        data: HashMap<Vec<u8>, Vec<u8>>,
    }
    impl KvTxn for MemKv {
        fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
            Ok(self.data.get(key).cloned())
        }
        fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.data.insert(key.to_vec(), value.to_vec());
            Ok(())
        }
    }

    fn loaded(cfg: &TpccConfig) -> MemKv {
        let mut kv = MemKv::default();
        for (k, v) in TpccGenerator::initial_rows(cfg) {
            kv.data.insert(k, v);
        }
        kv
    }

    #[test]
    fn initial_rows_cover_all_tables() {
        let cfg = TpccConfig::tiny();
        let kv = loaded(&cfg);
        assert!(kv.data.contains_key(&k_warehouse(0)));
        assert!(kv.data.contains_key(&k_district(1, 1)));
        assert!(kv.data.contains_key(&k_customer(0, 0, 4)));
        assert!(kv.data.contains_key(&k_item(19)));
        assert!(kv.data.contains_key(&k_stock(1, 19)));
        let expected = cfg.items
            + cfg.warehouses
                * (1 + cfg.items + cfg.districts_per_warehouse * (1 + cfg.customers_per_district));
        assert_eq!(kv.data.len() as u32, expected);
    }

    #[test]
    fn mix_is_roughly_standard() {
        let mut g = TpccGenerator::new(TpccConfig::tiny(), 1);
        let mut counts = [0u32; 5];
        for _ in 0..2000 {
            match g.next_txn() {
                TpccTxn::NewOrder { .. } => counts[0] += 1,
                TpccTxn::Payment { .. } => counts[1] += 1,
                TpccTxn::OrderStatus { .. } => counts[2] += 1,
                TpccTxn::Delivery { .. } => counts[3] += 1,
                TpccTxn::StockLevel { .. } => counts[4] += 1,
            }
        }
        assert!(
            (40..=50).contains(&(counts[0] / 20)),
            "new-order {counts:?}"
        );
        assert!((38..=48).contains(&(counts[1] / 20)), "payment {counts:?}");
        for c in &counts[2..] {
            assert!((1..=8).contains(&(c / 20)), "{counts:?}");
        }
    }

    #[test]
    fn thousand_txns_keep_database_consistent() {
        let cfg = TpccConfig::tiny();
        let mut kv = loaded(&cfg);
        let mut g = TpccGenerator::new(cfg, 2);
        let mut payments: i64 = 0;
        for _ in 0..1000 {
            if let TpccTxn::Payment { amount, .. } = g.run_txn(&mut kv).map(|t| t).unwrap() {
                payments += amount;
            }
        }
        // Sum of warehouse YTDs equals the sum of processed payments.
        let mut ytd = 0;
        for w in 0..cfg.warehouses {
            let wh: Warehouse = dec(&kv.data[&k_warehouse(w)]).unwrap();
            ytd += wh.ytd;
        }
        assert_eq!(ytd, payments, "payment money leaked");
        // Orders exist and district counters moved.
        let d: District = dec(&kv.data[&k_district(0, 0)]).unwrap();
        assert!(d.next_o_id > 1);
        assert!(d.next_deliv_o_id <= d.next_o_id);
    }

    #[test]
    fn new_order_creates_order_and_lines() {
        let cfg = TpccConfig::tiny();
        let mut kv = loaded(&cfg);
        let txn = TpccTxn::NewOrder {
            w: 0,
            d: 0,
            c: 0,
            items: vec![(1, 0, 2), (2, 0, 3)],
        };
        TpccGenerator::execute(&txn, &mut kv).unwrap();
        let d: District = dec(&kv.data[&k_district(0, 0)]).unwrap();
        assert_eq!(d.next_o_id, 2);
        let o: Order = dec(&kv.data[&k_order(0, 0, 1)]).unwrap();
        assert_eq!(o.ol_cnt, 2);
        assert!(kv.data.contains_key(&k_order_line(0, 0, 1, 1)));
        let s: Stock = dec(&kv.data[&k_stock(0, 1)]).unwrap();
        assert_eq!(s.quantity, 48);
    }

    #[test]
    fn delivery_pays_customer() {
        let cfg = TpccConfig::tiny();
        let mut kv = loaded(&cfg);
        let order = TpccTxn::NewOrder {
            w: 0,
            d: 0,
            c: 3,
            items: vec![(1, 0, 2)],
        };
        TpccGenerator::execute(&order, &mut kv).unwrap();
        let before: Customer = dec(&kv.data[&k_customer(0, 0, 3)]).unwrap();
        let deliver = TpccTxn::Delivery {
            w: 0,
            d: 0,
            carrier: 4,
        };
        TpccGenerator::execute(&deliver, &mut kv).unwrap();
        let after: Customer = dec(&kv.data[&k_customer(0, 0, 3)]).unwrap();
        assert!(after.balance > before.balance);
        assert_eq!(after.delivery_cnt, before.delivery_cnt + 1);
        let o: Order = dec(&kv.data[&k_order(0, 0, 1)]).unwrap();
        assert_eq!(o.carrier_id, Some(4));
    }

    #[test]
    fn delivery_on_empty_district_is_noop() {
        let cfg = TpccConfig::tiny();
        let mut kv = loaded(&cfg);
        TpccGenerator::execute(
            &TpccTxn::Delivery {
                w: 1,
                d: 1,
                carrier: 1,
            },
            &mut kv,
        )
        .unwrap();
        let d: District = dec(&kv.data[&k_district(1, 1)]).unwrap();
        assert_eq!(d.next_deliv_o_id, 1);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TpccGenerator::new(TpccConfig::paper_10w(), 9);
        let mut b = TpccGenerator::new(TpccConfig::paper_10w(), 9);
        for _ in 0..20 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }
}
