//! A read-mostly social-feed workload.
//!
//! Models the canonical "timeline read" pattern that motivates lock-free
//! snapshot reads: each user follows a fixed, seed-deterministic set of
//! other users; the dominant transaction reads the profile row of every
//! followed user in one shot (a pure-read, naturally multi-shard
//! transaction), and a small fraction of transactions post — updating the
//! poster's own profile row. Reads outnumber writes roughly 20:1 by
//! default, so the benefit of taking read-only transactions off the 2PC
//! lock table shows up directly in the tail latency of feed loads.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Social-feed workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocialConfig {
    /// Number of users (= number of profile rows).
    pub users: u64,
    /// How many users each user follows.
    pub follows_per_user: usize,
    /// Percentage of transactions that post (write); the rest load feeds
    /// (pure reads).
    pub post_pct: u8,
    /// Profile-row value size in bytes.
    pub value_size: usize,
}

impl SocialConfig {
    /// Default feed mix: 1000 users, 8 follows each, 5 % posts, 256 B rows.
    pub fn feed() -> Self {
        SocialConfig {
            users: 1000,
            follows_per_user: 8,
            post_pct: 5,
            value_size: 256,
        }
    }
}

/// One social-feed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocialTxn {
    /// Load the feed: read every followed user's profile row. Pure read —
    /// eligible for the lock-free snapshot path.
    LoadFeed {
        /// Profile keys of the followed users.
        keys: Vec<Vec<u8>>,
    },
    /// Post: rewrite the posting user's own profile row.
    Post {
        /// The poster's profile key.
        key: Vec<u8>,
        /// The new row.
        value: Vec<u8>,
    },
}

/// Deterministic social-feed transaction stream.
///
/// The follow graph is derived from the config alone (not the per-client
/// seed), so every client — and every run at the same config — sees the
/// same graph while drawing independent transaction streams.
#[derive(Debug, Clone)]
pub struct SocialGenerator {
    cfg: SocialConfig,
    rng: ChaCha8Rng,
}

/// Profile-row key for `user` (same keyspace shape as the YCSB workloads).
fn profile_key(user: u64) -> Vec<u8> {
    format!("feed{user:010}").into_bytes()
}

impl SocialGenerator {
    /// Creates a generator; distinct seeds give independent client streams.
    pub fn new(cfg: SocialConfig, seed: u64) -> Self {
        SocialGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SocialConfig {
        &self.cfg
    }

    /// The users `user` follows — a fixed function of the config.
    pub fn follows(cfg: &SocialConfig, user: u64) -> Vec<u64> {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5050_11A1 ^ user);
        let mut out = Vec::with_capacity(cfg.follows_per_user);
        while out.len() < cfg.follows_per_user.min(cfg.users as usize - 1) {
            let f = rng.gen_range(0..cfg.users);
            if f != user && !out.contains(&f) {
                out.push(f);
            }
        }
        out
    }

    /// The next transaction.
    pub fn next_txn(&mut self) -> SocialTxn {
        let user = self.rng.gen_range(0..self.cfg.users);
        if self.rng.gen_range(0..100u8) < self.cfg.post_pct {
            let tag: u64 = self.rng.gen();
            let mut value = vec![b'p'; self.cfg.value_size];
            let tag_bytes = tag.to_le_bytes();
            let n = tag_bytes.len().min(value.len());
            value[..n].copy_from_slice(&tag_bytes[..n]);
            SocialTxn::Post {
                key: profile_key(user),
                value,
            }
        } else {
            SocialTxn::LoadFeed {
                keys: Self::follows(&self.cfg, user)
                    .into_iter()
                    .map(profile_key)
                    .collect(),
            }
        }
    }

    /// Runs one generated transaction against `txn`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing operation.
    pub fn run_txn(&mut self, txn: &mut impl crate::KvTxn) -> Result<(), String> {
        match self.next_txn() {
            SocialTxn::LoadFeed { keys } => {
                for key in keys {
                    txn.get(&key)?;
                }
                Ok(())
            }
            SocialTxn::Post { key, value } => txn.put(&key, &value),
        }
    }

    /// All profile keys (for pre-loading).
    pub fn all_keys(cfg: &SocialConfig) -> impl Iterator<Item = Vec<u8>> {
        (0..cfg.users).map(profile_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SocialGenerator::new(SocialConfig::feed(), 7);
        let mut b = SocialGenerator::new(SocialConfig::feed(), 7);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn follow_graph_is_config_stable() {
        let cfg = SocialConfig::feed();
        let f1 = SocialGenerator::follows(&cfg, 42);
        let f2 = SocialGenerator::follows(&cfg, 42);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), cfg.follows_per_user);
        assert!(!f1.contains(&42), "no self-follow");
    }

    #[test]
    fn mostly_reads() {
        let mut g = SocialGenerator::new(SocialConfig::feed(), 3);
        let mut posts = 0;
        for _ in 0..1000 {
            if matches!(g.next_txn(), SocialTxn::Post { .. }) {
                posts += 1;
            }
        }
        assert!((10..=100).contains(&posts), "post count {posts}");
    }

    #[test]
    fn feed_reads_are_pure() {
        struct Mock {
            gets: u32,
            puts: u32,
        }
        impl crate::KvTxn for Mock {
            fn get(&mut self, _: &[u8]) -> Result<Option<Vec<u8>>, String> {
                self.gets += 1;
                Ok(None)
            }
            fn put(&mut self, _: &[u8], _: &[u8]) -> Result<(), String> {
                self.puts += 1;
                Ok(())
            }
        }
        let mut g = SocialGenerator::new(SocialConfig::feed(), 2);
        let mut m = Mock { gets: 0, puts: 0 };
        for _ in 0..200 {
            match g.next_txn() {
                SocialTxn::LoadFeed { keys } => {
                    assert_eq!(keys.len(), 8);
                    let puts_before = m.puts;
                    for k in keys {
                        m.get(&k).unwrap();
                    }
                    assert_eq!(m.puts, puts_before, "feed loads never write");
                }
                SocialTxn::Post { key, value } => {
                    m.put(&key, &value).unwrap();
                }
            }
        }
        assert!(m.gets > 0 && m.puts < m.gets);
    }

    #[test]
    fn all_keys_enumerates_profiles() {
        let cfg = SocialConfig {
            users: 4,
            ..SocialConfig::feed()
        };
        let keys: Vec<_> = SocialGenerator::all_keys(&cfg).collect();
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0], b"feed0000000000".to_vec());
    }
}
