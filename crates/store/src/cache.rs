//! The EPC-aware trusted block cache.
//!
//! An LRU over *decrypted* SSTable block record-vectors, keyed by
//! `(file_id, block_no)`. Entries live in enclave memory: a hit serves
//! plaintext records without touching untrusted storage and without a
//! decrypt, paying only an in-enclave memory access (MEE-priced, and
//! EPC-paging-priced if the enclave is overcommitted). The cache registers
//! every resident byte with the [`Enclave`]'s EPC residency tracking, and
//! eviction is driven both by its own LRU capacity and by EPC pressure:
//! when the enclave's total working set exceeds the EPC, the cache sheds
//! entries first — cached blocks are the only enclave-resident state that
//! can be dropped without losing correctness (they can always be re-read
//! and re-verified from storage).
//!
//! Safety argument: SSTables are immutable and their block contents are
//! verified (AES-GCM tag or HMAC pinned by the sealed footer) on the miss
//! path before insertion, so a cached vector is exactly the verified
//! plaintext of an immutable block — no freshness hazard exists. Retired
//! files' entries are invalidated at compaction/GC so dead tables stop
//! occupying EPC; file ids are never reused, so a stale entry could never
//! alias a live table's blocks even before invalidation.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use treaty_tee::Enclave;

use crate::sstable::SsRecord;

/// Counters for the read-acceleration layer that live outside the cache
/// proper (Bloom filters work even with the cache disabled).
#[derive(Debug, Default)]
pub struct ReadAccelStats {
    pub(crate) bloom_negatives: AtomicU64,
    pub(crate) bloom_false_positives: AtomicU64,
    pub(crate) fence_gap_rejects: AtomicU64,
}

impl ReadAccelStats {
    /// Point lookups short-circuited by a Bloom filter (no block I/O).
    pub fn bloom_negatives(&self) -> u64 {
        self.bloom_negatives.load(Ordering::Relaxed)
    }

    /// Lookups a filter let through although the key was absent — counted
    /// only when a block was actually read and found not to hold the key.
    pub fn bloom_false_positives(&self) -> u64 {
        self.bloom_false_positives.load(Ordering::Relaxed)
    }

    /// Lookups rejected by the fence keys alone (`candidate_blocks`
    /// returned the empty gap range): zero block I/O, and — unlike a
    /// Bloom false positive — no statement about the filter at all.
    pub fn fence_gap_rejects(&self) -> u64 {
        self.fence_gap_rejects.load(Ordering::Relaxed)
    }
}

/// Approximate in-enclave footprint of a decoded block.
pub(crate) fn approx_records_bytes(records: &[SsRecord]) -> u64 {
    records
        .iter()
        .map(|r| (r.key.len() + r.value.as_ref().map(|v| v.len()).unwrap_or(0) + 48) as u64)
        .sum()
}

struct Entry {
    records: Arc<Vec<SsRecord>>,
    bytes: u64,
    stamp: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(u64, u32), Entry>,
    /// LRU order: stamp -> key. Stamps are unique (monotonic clock).
    lru: BTreeMap<u64, (u64, u32)>,
    bytes: u64,
    clock: u64,
}

/// The shared trusted block cache. One per node environment.
pub struct BlockCache {
    enclave: Arc<Enclave>,
    capacity_bytes: u64,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .finish_non_exhaustive()
    }
}

impl BlockCache {
    /// Creates a cache of `capacity_bytes` charging residency to `enclave`.
    pub fn new(enclave: Arc<Enclave>, capacity_bytes: u64) -> Self {
        BlockCache {
            enclave,
            capacity_bytes,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Creates a shared cache, or `None` when `capacity_bytes` is zero
    /// (the ablation / cache-off configuration).
    pub fn new_shared(enclave: Arc<Enclave>, capacity_bytes: u64) -> Option<Arc<Self>> {
        if capacity_bytes == 0 {
            None
        } else {
            Some(Arc::new(Self::new(enclave, capacity_bytes)))
        }
    }

    /// Looks up a block, refreshing its LRU position.
    pub fn get(&self, file_id: u64, block_no: u32) -> Option<Arc<Vec<SsRecord>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(&(file_id, block_no)) {
            Some(entry) => {
                let old = entry.stamp;
                entry.stamp = stamp;
                let records = Arc::clone(&entry.records);
                inner.lru.remove(&old);
                inner.lru.insert(stamp, (file_id, block_no));
                self.hits.fetch_add(1, Ordering::Relaxed);
                treaty_sim::obs::counter_add("store.block_cache.hit", 1);
                Some(records)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                treaty_sim::obs::counter_add("store.block_cache.miss", 1);
                None
            }
        }
    }

    /// Inserts a verified, decrypted block. Oversized blocks are not
    /// cached; duplicate inserts (racing readers) are no-ops.
    pub fn insert(&self, file_id: u64, block_no: u32, records: Arc<Vec<SsRecord>>) {
        let bytes = approx_records_bytes(&records);
        if bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&(file_id, block_no)) {
            return;
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            (file_id, block_no),
            Entry {
                records,
                bytes,
                stamp,
            },
        );
        inner.lru.insert(stamp, (file_id, block_no));
        inner.bytes += bytes;
        self.enclave.alloc_trusted(bytes);
        self.evict_locked(&mut inner);
    }

    /// Evicts LRU entries while over the LRU capacity *or* while the
    /// enclave as a whole is over its EPC budget (EPC pressure): cached
    /// blocks are droppable state, so they yield EPC to everything else.
    fn evict_locked(&self, inner: &mut CacheInner) {
        while inner.bytes > 0
            && (inner.bytes > self.capacity_bytes
                || self.enclave.resident_bytes() > self.enclave.epc_capacity())
        {
            let (&stamp, &key) = match inner.lru.iter().next() {
                Some(kv) => kv,
                None => break,
            };
            inner.lru.remove(&stamp);
            if let Some(entry) = inner.map.remove(&key) {
                inner.bytes -= entry.bytes;
                self.enclave.free_trusted(entry.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every cached block of `file_id` (the table was retired by
    /// compaction/GC), releasing its EPC residency.
    pub fn invalidate_file(&self, file_id: u64) {
        let mut inner = self.inner.lock();
        let dead: Vec<(u64, u32)> = inner
            .map
            .keys()
            .filter(|k| k.0 == file_id)
            .copied()
            .collect();
        for key in dead {
            if let Some(entry) = inner.map.remove(&key) {
                inner.lru.remove(&entry.stamp);
                inner.bytes -= entry.bytes;
                self.enclave.free_trusted(entry.bytes);
            }
        }
    }

    /// File ids with at least one resident block (test introspection).
    pub fn resident_file_ids(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut ids: Vec<u64> = inner.map.keys().map(|k| k.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Bytes currently cached (all charged to the enclave's EPC tracker).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Configured LRU capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Cache hits served from enclave memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to storage.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by capacity or EPC pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treaty_sim::TeeMode;

    fn records(key: &[u8], value_len: usize) -> Arc<Vec<SsRecord>> {
        Arc::new(vec![SsRecord {
            key: key.to_vec(),
            seq: 1,
            value: Some(vec![0u8; value_len]),
        }])
    }

    fn cache(capacity: u64) -> (Arc<Enclave>, BlockCache) {
        let enclave = Arc::new(Enclave::new(TeeMode::Scone));
        (Arc::clone(&enclave), BlockCache::new(enclave, capacity))
    }

    #[test]
    fn hit_miss_and_counters() {
        let (_e, c) = cache(1 << 20);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, records(b"k", 100));
        let r = c.get(1, 0).expect("cached");
        assert_eq!(r[0].key, b"k");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn residency_is_charged_to_the_enclave() {
        let (enclave, c) = cache(1 << 20);
        let before = enclave.resident_bytes();
        c.insert(1, 0, records(b"k", 1000));
        assert!(enclave.resident_bytes() > before);
        assert_eq!(enclave.resident_bytes() - before, c.resident_bytes());
        c.invalidate_file(1);
        assert_eq!(enclave.resident_bytes(), before);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn lru_capacity_evicts_oldest_first() {
        let (_e, c) = cache(3000);
        c.insert(1, 0, records(b"a", 1000));
        c.insert(1, 1, records(b"b", 1000));
        // Touch block 0 so block 1 is the LRU victim.
        assert!(c.get(1, 0).is_some());
        c.insert(1, 2, records(b"c", 1000));
        assert!(c.evictions() >= 1);
        assert!(c.get(1, 0).is_some(), "recently used entry must survive");
        assert!(c.get(1, 1).is_none(), "LRU entry must be evicted");
    }

    #[test]
    fn epc_pressure_shrinks_the_cache() {
        let enclave = Arc::new(Enclave::with_epc(TeeMode::Scone, 4096));
        let c = BlockCache::new(Arc::clone(&enclave), 1 << 20);
        // Something else fills the EPC past its budget...
        enclave.alloc_trusted(8192);
        // ...so an insert is immediately shed again despite LRU headroom.
        c.insert(1, 0, records(b"k", 1000));
        assert_eq!(
            c.resident_bytes(),
            0,
            "EPC pressure must win over LRU capacity"
        );
        assert!(c.evictions() >= 1);
    }

    #[test]
    fn invalidate_is_per_file() {
        let (_e, c) = cache(1 << 20);
        c.insert(1, 0, records(b"a", 10));
        c.insert(2, 0, records(b"b", 10));
        c.invalidate_file(1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
        assert_eq!(c.resident_file_ids(), vec![2]);
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let (enclave, c) = cache(100);
        c.insert(1, 0, records(b"k", 4096));
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(enclave.resident_bytes(), 0);
    }
}
