//! SSTables: immutable sorted runs of encrypted blocks with a footer of
//! block hashes (the SPEICHER data model, §V-A/§VII-B).
//!
//! File layout:
//!
//! ```text
//! ┌─────────┬─────────┬───┬──────────────┬────────────┬─────────┐
//! │ block 0 │ block 1 │ … │ meta (sealed)│ meta_len 8B│ magic 8B│
//! └─────────┴─────────┴───┴──────────────┴────────────┴─────────┘
//! ```
//!
//! Each block holds sorted `(key, seq, value?)` records. Under encryption
//! a block is AES-GCM sealed with a nonce derived from `(file_id,
//! block_no)`; under authentication-only each block's HMAC lives in the
//! meta footer. The meta footer itself is sealed the same way, and its
//! digests are loaded *into the enclave* at open so every subsequent block
//! read can be verified against trusted state.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use treaty_crypto::{aead_open, aead_seal, hash};
use treaty_tee::HostBytes;

use crate::bloom::BloomFilter;
use crate::cache::approx_records_bytes;
use crate::env::Env;
use crate::memtable::{SeqNum, UserKey};
use crate::{Result, StoreError};

const MAGIC: u64 = 0x5452_4541_5459_5354; // "TREATYST"
const META_BLOCK_NO: u32 = u32::MAX;

/// Metadata for one block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Byte offset of the stored (possibly sealed) block.
    pub offset: u64,
    /// Stored length in bytes.
    pub len: u32,
    /// First user key in the block.
    pub first_key: UserKey,
    /// Last user key in the block (a key's version run may straddle block
    /// boundaries; lookups must scan every block whose range covers it).
    pub last_key: UserKey,
    /// HMAC of the stored bytes (authentication-only mode; zeros when the
    /// GCM tag already covers the block).
    pub digest: [u8; 32],
}

/// Footer metadata of an SSTable, held in the enclave after open.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsTableMeta {
    /// Unique file id (drives block nonces; never reused per key).
    pub file_id: u64,
    /// Per-block metadata in key order.
    pub blocks: Vec<BlockMeta>,
    /// Smallest user key in the table.
    pub min_key: UserKey,
    /// Largest user key in the table.
    pub max_key: UserKey,
    /// Highest sequence number stored.
    pub max_seq: SeqNum,
    /// Number of records.
    pub entries: u64,
    /// Bloom filter over the table's distinct user keys. Serialized inside
    /// the sealed footer, so it is covered by the same integrity protection
    /// as the block digests: tampered filter bits are detected at open.
    /// `None` for tables built with filters disabled (and for pre-filter
    /// tables, via serde default).
    #[serde(default)]
    pub filter: Option<BloomFilter>,
}

fn block_nonce(file_id: u64, block_no: u32) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&file_id.to_le_bytes());
    n[8..].copy_from_slice(&block_no.to_le_bytes());
    n
}

fn block_aad(file_id: u64, block_no: u32) -> Vec<u8> {
    let mut aad = Vec::with_capacity(12);
    aad.extend_from_slice(&file_id.to_le_bytes());
    aad.extend_from_slice(&block_no.to_le_bytes());
    aad
}

/// Protects one block for untrusted storage, returning the stored bytes
/// (as boundary-typed [`HostBytes`]) plus the footer HMAC digest used in
/// authentication-only mode.
fn protect_block(env: &Env, file_id: u64, block_no: u32, plain: &[u8]) -> (HostBytes, [u8; 32]) {
    env.charge_crypto(plain.len());
    env.charge_hash(plain.len());
    let stored = if env.profile.encryption {
        HostBytes::from_ciphertext(aead_seal(
            &env.keys.storage,
            &block_nonce(file_id, block_no),
            &block_aad(file_id, block_no),
            plain,
        ))
    } else {
        // LINT-DECLASSIFY: unencrypted profiles store cleartext blocks by
        // design; integrity comes from the footer HMAC the enclave pins at
        // open (the "w/o Enc" ablation) or from nothing (native baseline).
        HostBytes::declassified(
            plain.to_vec(),
            "sstable block under a no-encryption profile",
        )
    };
    let digest = if env.profile.authentication && !env.profile.encryption {
        let mut buf = block_aad(file_id, block_no);
        buf.extend_from_slice(stored.as_slice());
        hash::hmac_sign(&env.keys.storage, &buf).0
    } else {
        [0u8; 32]
    };
    (stored, digest)
}

fn open_block(
    env: &Env,
    file_id: u64,
    block_no: u32,
    stored: &[u8],
    digest: &[u8; 32],
) -> Result<Vec<u8>> {
    env.charge_crypto(stored.len());
    env.charge_hash(stored.len());
    if env.profile.encryption {
        aead_open(
            &env.keys.storage,
            &block_nonce(file_id, block_no),
            &block_aad(file_id, block_no),
            stored,
        )
        .map_err(|_| {
            StoreError::Integrity(format!(
                "sstable {file_id} block {block_no} failed decryption — storage tampered"
            ))
        })
    } else {
        if env.profile.authentication {
            let mut buf = block_aad(file_id, block_no);
            buf.extend_from_slice(stored);
            let want = hash::hmac_sign(&env.keys.storage, &buf);
            if want.0 != *digest {
                return Err(StoreError::Integrity(format!(
                    "sstable {file_id} block {block_no} failed authentication"
                )));
            }
        }
        Ok(stored.to_vec())
    }
}

/// One record inside a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsRecord {
    /// User key.
    pub key: UserKey,
    /// Version.
    pub seq: SeqNum,
    /// `None` is a tombstone.
    pub value: Option<Vec<u8>>,
}

fn encode_records(records: &[SsRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&(r.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&r.key);
        out.extend_from_slice(&r.seq.to_le_bytes());
        match &r.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    out
}

fn decode_records(mut buf: &[u8]) -> Result<Vec<SsRecord>> {
    let mut out = Vec::new();
    let bad = || StoreError::Integrity("malformed sstable block".into());
    while !buf.is_empty() {
        if buf.len() < 4 {
            return Err(bad());
        }
        let klen = u32::from_le_bytes(buf[..4].try_into().map_err(|_| bad())?) as usize;
        buf = &buf[4..];
        if buf.len() < klen + 13 {
            return Err(bad());
        }
        let key = buf[..klen].to_vec();
        let seq = u64::from_le_bytes(buf[klen..klen + 8].try_into().map_err(|_| bad())?);
        let kind = buf[klen + 8];
        let vlen =
            u32::from_le_bytes(buf[klen + 9..klen + 13].try_into().map_err(|_| bad())?) as usize;
        buf = &buf[klen + 13..];
        if buf.len() < vlen {
            return Err(bad());
        }
        let value = if kind == 1 {
            Some(buf[..vlen].to_vec())
        } else {
            None
        };
        buf = &buf[vlen..];
        out.push(SsRecord { key, seq, value });
    }
    Ok(out)
}

/// Builds an SSTable from sorted entries (user key asc, seq desc within a
/// key). Returns its metadata.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on write failure.
///
/// # Panics
///
/// Panics if `entries` is empty — flushing nothing is an engine bug.
pub fn build(
    env: &Env,
    path: &Path,
    file_id: u64,
    entries: &[(UserKey, SeqNum, Option<Vec<u8>>)],
) -> Result<SsTableMeta> {
    assert!(!entries.is_empty(), "cannot build an empty sstable");
    let mut file = File::create(path)?;
    let mut blocks = Vec::new();
    let mut offset = 0u64;
    let mut pending: Vec<SsRecord> = Vec::new();
    let mut pending_bytes = 0usize;
    let mut max_seq = 0;
    let mut total = 0u64;

    let flush_block = |pending: &mut Vec<SsRecord>,
                       file: &mut File,
                       offset: &mut u64,
                       blocks: &mut Vec<BlockMeta>|
     -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let block_no = blocks.len() as u32;
        let plain = encode_records(pending);
        let (stored, digest) = protect_block(env, file_id, block_no, &plain);
        file.write_all(stored.as_slice())?;
        blocks.push(BlockMeta {
            offset: *offset,
            len: stored.len() as u32,
            first_key: pending[0].key.clone(),
            last_key: pending[pending.len() - 1].key.clone(),
            digest,
        });
        *offset += stored.len() as u64;
        pending.clear();
        Ok(())
    };

    for (key, seq, value) in entries {
        max_seq = max_seq.max(*seq);
        total += 1;
        pending_bytes += key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + 17;
        pending.push(SsRecord {
            key: key.clone(),
            seq: *seq,
            value: value.clone(),
        });
        if pending_bytes >= env.config.block_bytes {
            flush_block(&mut pending, &mut file, &mut offset, &mut blocks)?;
            pending_bytes = 0;
        }
    }
    flush_block(&mut pending, &mut file, &mut offset, &mut blocks)?;

    // Entries arrive sorted by user key, so distinct keys are runs; one
    // filter insertion per run. Sized by distinct-key count, not record
    // count, so hot multi-version keys don't inflate the filter.
    let filter = if env.config.bloom_bits_per_key > 0 {
        let distinct = entries.windows(2).filter(|w| w[0].0 != w[1].0).count() + 1;
        let mut f = BloomFilter::new(distinct, env.config.bloom_bits_per_key);
        let mut prev: Option<&UserKey> = None;
        for (key, _, _) in entries {
            if prev != Some(key) {
                f.insert(key);
                prev = Some(key);
            }
        }
        // Building the filter is one hash pass over the keys.
        env.charge_cpu(entries.len() as u64 * env.costs.bloom_probe_ns / 4);
        Some(f)
    } else {
        None
    };

    let meta = SsTableMeta {
        file_id,
        blocks,
        min_key: entries[0].0.clone(),
        max_key: entries[entries.len() - 1].0.clone(),
        max_seq,
        entries: total,
        filter,
    };

    // A typed error instead of a panic: builds run on the commit path's
    // background maintenance, which must never unwind (L002).
    let meta_plain = serde_json::to_vec(&meta)
        .map_err(|e| StoreError::Io(format!("sstable meta does not serialize: {e}")))?;
    let (meta_stored, meta_digest) = protect_block(env, file_id, META_BLOCK_NO, &meta_plain);
    file.write_all(meta_stored.as_slice())?;
    file.write_all(&meta_digest)?;
    file.write_all(&(meta_stored.len() as u64).to_le_bytes())?;
    file.write_all(&MAGIC.to_le_bytes())?;
    file.sync_data()?;

    // Writing the table costs one sequential SSD write of its full size.
    env.charge_ssd_append((offset as usize) + meta_stored.len() + 48);
    Ok(meta)
}

/// An open, verifiable SSTable.
pub struct SsTable {
    env: Arc<Env>,
    path: PathBuf,
    meta: SsTableMeta,
    /// On-disk size, captured once at open so level-size checks on the
    /// commit path never issue a host `metadata` syscall per table.
    disk_bytes: u64,
}

impl std::fmt::Debug for SsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTable")
            .field("file_id", &self.meta.file_id)
            .field("entries", &self.meta.entries)
            .finish_non_exhaustive()
    }
}

impl SsTable {
    /// Opens an SSTable, verifying and loading its meta footer into the
    /// enclave.
    ///
    /// # Errors
    ///
    /// [`StoreError::Integrity`] if the footer is malformed or fails
    /// verification; [`StoreError::Io`] on read failure.
    pub fn open(env: Arc<Env>, path: &Path) -> Result<Self> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 48 {
            return Err(StoreError::Integrity("sstable too short".into()));
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))?;
        file.read_exact(&mut tail)?;
        let footer_err = || StoreError::Integrity("sstable footer malformed".into());
        let meta_len = u64::from_le_bytes(tail[..8].try_into().map_err(|_| footer_err())?);
        let magic = u64::from_le_bytes(tail[8..].try_into().map_err(|_| footer_err())?);
        if magic != MAGIC {
            return Err(StoreError::Integrity("bad sstable magic".into()));
        }
        if meta_len + 48 > file_len {
            return Err(StoreError::Integrity("bad sstable meta length".into()));
        }
        let mut meta_stored = vec![0u8; meta_len as usize];
        let mut meta_digest = [0u8; 32];
        file.seek(SeekFrom::End(-16 - 32 - meta_len as i64))?;
        file.read_exact(&mut meta_stored)?;
        file.read_exact(&mut meta_digest)?;
        env.charge_storage_read(meta_len as usize);

        // We do not know file_id until the meta decodes; the nonce/aad use
        // it, so it is carried redundantly: try decode via self-describing
        // plain JSON first is unsafe; instead file_id is recoverable from
        // the path by convention, but we verify cryptographically below.
        let file_id = file_id_from_path(path)?;
        let meta_plain = open_block(&env, file_id, META_BLOCK_NO, &meta_stored, &meta_digest)?;
        let meta: SsTableMeta = serde_json::from_slice(&meta_plain)
            .map_err(|_| StoreError::Integrity("sstable meta does not parse".into()))?;
        if meta.file_id != file_id {
            return Err(StoreError::Integrity(
                "sstable meta/file id mismatch".into(),
            ));
        }
        // Footer digests and the Bloom filter now live in trusted memory.
        env.enclave.alloc_trusted(trusted_footprint(&meta));
        Ok(SsTable {
            env,
            path: path.to_path_buf(),
            meta,
            disk_bytes: file_len,
        })
    }

    /// The table's metadata.
    pub fn meta(&self) -> &SsTableMeta {
        &self.meta
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk file size in bytes, as measured at open.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Number of data blocks.
    pub(crate) fn block_count(&self) -> usize {
        self.meta.blocks.len()
    }

    /// Reads one verified block for a streaming scan (compaction input).
    /// Bypasses the block cache like [`SsTable::scan_all`]: inputs are
    /// about to be retired, so caching them would only evict hot entries.
    pub(crate) fn scan_block(&self, block_no: usize) -> Result<Arc<Vec<SsRecord>>> {
        self.read_block_uncached(block_no)
    }

    /// True if `key` falls inside this table's key range.
    pub fn covers(&self, key: &[u8]) -> bool {
        self.meta.min_key.as_slice() <= key && key <= self.meta.max_key.as_slice()
    }

    /// Reads one block for the point-read path, via the trusted block
    /// cache when one is configured. A hit returns the already-verified
    /// plaintext records for an in-enclave charge; a miss pays the full
    /// storage-read + decrypt path and populates the cache.
    fn read_block(&self, block_no: usize) -> Result<Arc<Vec<SsRecord>>> {
        let Some(cache) = &self.env.block_cache else {
            return self.read_block_uncached(block_no);
        };
        if let Some(records) = cache.get(self.meta.file_id, block_no as u32) {
            self.env
                .charge_cache_hit(approx_records_bytes(&records) as usize);
            return Ok(records);
        }
        let records = self.read_block_uncached(block_no)?;
        cache.insert(self.meta.file_id, block_no as u32, Arc::clone(&records));
        Ok(records)
    }

    /// Reads and verifies one block directly from untrusted storage.
    fn read_block_uncached(&self, block_no: usize) -> Result<Arc<Vec<SsRecord>>> {
        let bm = &self.meta.blocks[block_no];
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(bm.offset))?;
        let mut stored = vec![0u8; bm.len as usize];
        file.read_exact(&mut stored)?;
        self.env.charge_storage_read(stored.len());
        let plain = open_block(
            &self.env,
            self.meta.file_id,
            block_no as u32,
            &stored,
            &bm.digest,
        )?;
        Ok(Arc::new(decode_records(&plain)?))
    }

    /// Index range of blocks whose `[first_key, last_key]` span covers
    /// `key`. A key's version run is contiguous, so this is a contiguous
    /// range.
    fn candidate_blocks(&self, key: &[u8]) -> std::ops::Range<usize> {
        let blocks = &self.meta.blocks;
        // Last block whose first_key <= key.
        let end_anchor = blocks.partition_point(|b| b.first_key.as_slice() <= key);
        if end_anchor == 0 {
            return 0..0;
        }
        let mut start = end_anchor - 1;
        // The run may have started in earlier blocks that end at `key`.
        while start > 0 && blocks[start - 1].last_key.as_slice() >= key {
            start -= 1;
        }
        if blocks[start].last_key.as_slice() < key {
            return 0..0; // gap: key falls between blocks
        }
        start..end_anchor
    }

    /// True if `key` falls in this table's range *and* passes its Bloom
    /// filter: the cheap, no-I/O precondition for probing it. A false
    /// return is definitive (no block read needed); filter negatives are
    /// counted in the environment's read stats.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if !self.covers(key) {
            return false;
        }
        match &self.meta.filter {
            None => true,
            Some(f) => {
                self.env.charge_bloom_probe();
                if f.may_contain(key) {
                    true
                } else {
                    self.env
                        .read_stats
                        .bloom_negatives
                        .fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Runs `visit` over every stored version of `key` in this table,
    /// gated by the range check and the Bloom filter. Counts a filter
    /// false positive when the filter let the key through but no block
    /// actually held it.
    pub(crate) fn probe_key<F: FnMut(&SsRecord)>(&self, key: &[u8], mut visit: F) -> Result<()> {
        if !self.may_contain(key) {
            return Ok(());
        }
        let mut seen = false;
        for b in self.candidate_blocks(key) {
            for r in self.read_block(b)?.iter() {
                if r.key.as_slice() == key {
                    seen = true;
                    visit(r);
                }
            }
        }
        if !seen && self.meta.filter.is_some() {
            self.env
                .read_stats
                .bloom_false_positives
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Looks up the newest version of `key` visible at `snapshot`.
    /// `None` = this table holds no visible version; `Some(None)` =
    /// tombstone.
    ///
    /// # Errors
    ///
    /// Propagates integrity/IO failures from block reads.
    pub fn get(&self, key: &[u8], snapshot: SeqNum) -> Result<Option<Option<Vec<u8>>>> {
        let mut best: Option<(SeqNum, Option<Vec<u8>>)> = None;
        self.probe_key(key, |r| {
            if r.seq <= snapshot && best.as_ref().map(|(s, _)| r.seq > *s).unwrap_or(true) {
                best = Some((r.seq, r.value.clone()));
            }
        })?;
        Ok(best.map(|(_, v)| v))
    }

    /// The newest sequence number for `key` in this table, if any.
    ///
    /// # Errors
    ///
    /// Propagates integrity/IO failures from block reads.
    pub fn latest_seq_of(&self, key: &[u8]) -> Result<Option<SeqNum>> {
        let mut best: Option<SeqNum> = None;
        self.probe_key(key, |r| {
            if best.map(|b| r.seq > b).unwrap_or(true) {
                best = Some(r.seq);
            }
        })?;
        Ok(best)
    }

    /// Reads every record, in order (compaction input). Bypasses the block
    /// cache entirely: compaction inputs are about to be retired, so
    /// populating the cache with them would only evict hot entries.
    ///
    /// # Errors
    ///
    /// Propagates integrity/IO failures from block reads.
    pub fn scan_all(&self) -> Result<Vec<SsRecord>> {
        let mut out = Vec::with_capacity(self.meta.entries as usize);
        for b in 0..self.meta.blocks.len() {
            out.extend(self.read_block_uncached(b)?.iter().cloned());
        }
        Ok(out)
    }

    /// Releases the enclave accounting for the footer (call when the table
    /// is retired).
    pub fn release(&self) {
        self.env.enclave.free_trusted(trusted_footprint(&self.meta));
    }
}

/// Enclave-resident bytes pinned by an open table: the block digests plus
/// the Bloom filter.
fn trusted_footprint(meta: &SsTableMeta) -> u64 {
    (meta.blocks.len() * 64) as u64
        + meta
            .filter
            .as_ref()
            .map(|f| f.approx_bytes() as u64)
            .unwrap_or(0)
}

/// Extracts the numeric file id from an `sst-NNNNNN.sst` path.
fn file_id_from_path(path: &Path) -> Result<u64> {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.strip_prefix("sst-"))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StoreError::Integrity("sstable path does not carry a file id".into()))
}

/// The conventional file name for an SSTable id.
pub fn file_name(file_id: u64) -> String {
    format!("sst-{file_id:06}.sst")
}

#[cfg(test)]
mod tests {
    use super::*;
    use treaty_sim::SecurityProfile;

    fn entries(n: u64) -> Vec<(UserKey, SeqNum, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let key = format!("key-{i:05}").into_bytes();
                if i % 7 == 3 {
                    (key, i + 1, None) // tombstone
                } else {
                    (
                        key,
                        i + 1,
                        Some(format!("value-{i}-{}", "x".repeat(50)).into_bytes()),
                    )
                }
            })
            .collect()
    }

    fn build_one(
        profile: SecurityProfile,
        n: u64,
    ) -> Result<(tempfile::TempDir, Arc<Env>, SsTable)> {
        let dir = tempfile::tempdir()?;
        let env = Env::for_testing(profile, dir.path());
        let path = dir.path().join(file_name(1));
        build(&env, &path, 1, &entries(n))?;
        let table = SsTable::open(Arc::clone(&env), &path)?;
        Ok((dir, env, table))
    }

    #[test]
    fn build_open_get_roundtrip_all_profiles() -> Result<()> {
        for profile in SecurityProfile::single_node_lineup() {
            let (_d, _e, t) = build_one(profile, 200)?;
            assert_eq!(t.meta().entries, 200);
            assert!(
                t.meta().blocks.len() > 1,
                "{profile:?}: want multiple blocks"
            );
            let v = t.get(b"key-00011", SeqNum::MAX)?;
            assert_eq!(
                v,
                Some(Some(format!("value-11-{}", "x".repeat(50)).into_bytes()))
            );
            // Tombstone.
            assert_eq!(t.get(b"key-00003", SeqNum::MAX)?, Some(None));
            // Missing.
            assert_eq!(t.get(b"key-99999", SeqNum::MAX)?, None);
            assert_eq!(t.get(b"aaaa", SeqNum::MAX)?, None);
        }
        Ok(())
    }

    #[test]
    fn snapshot_filters_versions() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let env = Env::for_testing(SecurityProfile::treaty_full(), dir.path());
        let path = dir.path().join(file_name(2));
        let rows = vec![
            (b"k".to_vec(), 9, Some(b"v9".to_vec())),
            (b"k".to_vec(), 5, Some(b"v5".to_vec())),
            (b"k".to_vec(), 1, Some(b"v1".to_vec())),
        ];
        build(&env, &path, 2, &rows)?;
        let t = SsTable::open(env, &path)?;
        assert_eq!(t.get(b"k", SeqNum::MAX)?, Some(Some(b"v9".to_vec())));
        assert_eq!(t.get(b"k", 6)?, Some(Some(b"v5".to_vec())));
        assert_eq!(t.get(b"k", 4)?, Some(Some(b"v1".to_vec())));
        assert_eq!(t.get(b"k", 0)?, None);
        assert_eq!(t.latest_seq_of(b"k")?, Some(9));
        Ok(())
    }

    #[test]
    fn encrypted_table_hides_keys_and_values() -> Result<()> {
        let (_d, _e, t) = build_one(SecurityProfile::treaty_enc(), 50)?;
        let raw = std::fs::read(t.path())?;
        assert!(!raw.windows(9).any(|w| w == b"key-00010"));
        assert!(!raw.windows(8).any(|w| w == b"value-10"));
        Ok(())
    }

    #[test]
    fn tampered_block_detected() -> Result<()> {
        for profile in [
            SecurityProfile::treaty_no_enc(),
            SecurityProfile::treaty_enc(),
        ] {
            let (_d, _e, t) = build_one(profile, 100)?;
            let mut raw = std::fs::read(t.path())?;
            raw[10] ^= 0x01; // inside block 0
            std::fs::write(t.path(), &raw)?;
            let err = t.get(b"key-00000", SeqNum::MAX).unwrap_err();
            assert!(matches!(err, StoreError::Integrity(_)), "{profile:?}");
        }
        Ok(())
    }

    #[test]
    fn tampered_footer_detected_at_open() -> Result<()> {
        let (_d, env, t) = build_one(SecurityProfile::treaty_full(), 100)?;
        let mut raw = std::fs::read(t.path())?;
        let mid = raw.len() - 100; // inside the sealed meta
        raw[mid] ^= 0x01;
        std::fs::write(t.path(), &raw)?;
        let err = SsTable::open(env, t.path()).unwrap_err();
        assert!(matches!(err, StoreError::Integrity(_)));
        Ok(())
    }

    #[test]
    fn baseline_profile_accepts_tampering() -> Result<()> {
        let (_d, _e, t) = build_one(SecurityProfile::rocksdb(), 100)?;
        let mut raw = std::fs::read(t.path())?;
        raw[10] ^= 0x01;
        std::fs::write(t.path(), &raw)?;
        // No authentication: the corrupted data is served or misparsed,
        // but no *detection* happens. (Exactly the baseline's weakness.)
        let _ = t.get(b"key-00000", SeqNum::MAX);
        Ok(())
    }

    #[test]
    fn scan_all_returns_everything_in_order() -> Result<()> {
        let (_d, _e, t) = build_one(SecurityProfile::treaty_full(), 150)?;
        let all = t.scan_all()?;
        assert_eq!(all.len(), 150);
        let mut sorted = all.clone();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(all, sorted);
        Ok(())
    }

    #[test]
    fn covers_respects_key_range() -> Result<()> {
        let (_d, _e, t) = build_one(SecurityProfile::treaty_full(), 10)?;
        assert!(t.covers(b"key-00000"));
        assert!(t.covers(b"key-00009"));
        assert!(!t.covers(b"key-99999"));
        assert!(!t.covers(b"a"));
        Ok(())
    }

    #[test]
    fn tampered_filter_bytes_detected() -> Result<()> {
        // Authentication-only mode stores the footer as plaintext JSON
        // pinned by an HMAC, so the serialized filter is findable on disk.
        // Flipping one of its bits must fail verification at open: the
        // filter is integrity-covered exactly like the block digests.
        let (_d, env, t) = build_one(SecurityProfile::treaty_no_enc(), 100)?;
        let mut raw = std::fs::read(t.path())?;
        let pos = raw
            .windows(6)
            .position(|w| w == b"\"bits\"")
            .ok_or_else(|| {
                StoreError::Integrity("footer must hold the serialized filter".into())
            })?;
        raw[pos + 10] ^= 0x01; // inside the filter's bit array
        std::fs::write(t.path(), &raw)?;
        let err = SsTable::open(env, t.path()).unwrap_err();
        assert!(matches!(err, StoreError::Integrity(_)));
        Ok(())
    }

    #[test]
    fn bloom_negative_skips_block_reads() -> Result<()> {
        let (_d, env, t) = build_one(SecurityProfile::treaty_full(), 200)?;
        let cache = env
            .block_cache
            .as_ref()
            .ok_or_else(|| StoreError::Io("tiny config enables the cache".into()))?;
        let (h0, m0) = (cache.hits(), cache.misses());
        for i in 0..50 {
            // In the table's key range but never inserted.
            let key = format!("key-00{i:03}x").into_bytes();
            assert_eq!(t.get(&key, SeqNum::MAX)?, None);
        }
        assert!(
            env.read_stats.bloom_negatives() >= 40,
            "most absent-key probes must be filtered: {}",
            env.read_stats.bloom_negatives()
        );
        // Only Bloom false positives reach the block-read path at all.
        let blocks_read = (cache.hits() - h0) + (cache.misses() - m0);
        assert!(
            blocks_read <= 10,
            "filtered probes must not read blocks ({blocks_read} reads for 50 probes)"
        );
        Ok(())
    }

    /// Body of `cache_hit_charges_less_than_miss`, split out so the fiber
    /// closure can propagate errors instead of panicking (L002).
    fn cache_probe(path_buf: &Path) -> Result<()> {
        let env = Env::for_testing(SecurityProfile::treaty_full(), path_buf);
        let path = path_buf.join(file_name(1));
        build(&env, &path, 1, &entries(100))?;
        let t = SsTable::open(Arc::clone(&env), &path)?;
        let t0 = treaty_sim::runtime::now();
        assert!(t.get(b"key-00010", SeqNum::MAX)?.is_some());
        let miss_ns = treaty_sim::runtime::now() - t0;
        let t1 = treaty_sim::runtime::now();
        assert!(t.get(b"key-00010", SeqNum::MAX)?.is_some());
        let hit_ns = treaty_sim::runtime::now() - t1;
        let cache = env
            .block_cache
            .as_ref()
            .ok_or_else(|| StoreError::Io("tiny config enables the cache".into()))?;
        assert!(cache.hits() >= 1 && cache.misses() >= 1);
        assert!(
            hit_ns < miss_ns,
            "a cache hit ({hit_ns} ns) must charge strictly less than the miss path ({miss_ns} ns)"
        );
        Ok(())
    }

    #[test]
    fn cache_hit_charges_less_than_miss() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let path_buf = dir.path().to_path_buf();
        let res = Arc::new(parking_lot::Mutex::new(None));
        let res2 = Arc::clone(&res);
        treaty_sched::block_on(move || {
            *res2.lock() = Some(cache_probe(&path_buf));
        });
        let taken = res.lock().take();
        taken.ok_or_else(|| StoreError::Io("probe never ran".into()))?
    }

    #[test]
    fn disabling_the_cache_still_reads_correctly() -> Result<()> {
        let dir = tempfile::tempdir()?;
        let mut config = crate::env::EngineConfig::tiny();
        config.block_cache_bytes = 0;
        config.bloom_bits_per_key = 0;
        let env = Env::for_testing_with(SecurityProfile::treaty_full(), dir.path(), config);
        assert!(env.block_cache.is_none());
        let path = dir.path().join(file_name(1));
        build(&env, &path, 1, &entries(50))?;
        let t = SsTable::open(Arc::clone(&env), &path)?;
        assert!(t.meta().filter.is_none());
        let v = t.get(b"key-00011", SeqNum::MAX)?;
        assert_eq!(
            v,
            Some(Some(format!("value-11-{}", "x".repeat(50)).into_bytes()))
        );
        Ok(())
    }

    #[test]
    fn wrong_file_name_rejected() -> Result<()> {
        let (_d, env, t) = build_one(SecurityProfile::treaty_full(), 10)?;
        let renamed = t.path().with_file_name(file_name(999));
        std::fs::rename(t.path(), &renamed)?;
        // The adversary renamed sst-000001 to sst-000999 (e.g. to swap
        // tables): open must fail because the sealed meta pins the id.
        let err = SsTable::open(env, &renamed).unwrap_err();
        assert!(matches!(err, StoreError::Integrity(_)));
        Ok(())
    }
}
